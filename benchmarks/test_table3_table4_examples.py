"""Tables III & IV — showcase rewrites from separate and joint models."""

from repro.experiments import examples_tables


def test_table3_table4_example_rewrites(benchmark, context, scale, save_result):
    result = benchmark.pedantic(
        lambda: examples_tables.run(scale), rounds=1, iterations=1
    )
    save_result(result)
    # Every showcase query must produce at least one joint rewrite.
    produced = [q for q, r in result.measured.items() if r["joint"]]
    assert len(produced) >= 3, f"joint model rewrote only {produced}"
