"""Retrieval engine at catalog scale — galloping + heap vs the seed path.

Acceptance bar for the sharded retrieval engine: on a ≥50k-document
catalog the merged-tree galloping + bounded-heap path must beat the seed
set-intersect/full-sort path by ≥3x while returning *identical* top-k
lists, the sharded fan-out must merge to the exact unsharded top-k, and
the Section III-H invariant (merged-tree postings cost ≤ separate trees)
must still hold at this scale.

The worker-scaling sweep adds the GIL-breaking bar: process shard
workers must return the exact unsharded top-k at every worker count,
and — on machines with the cores to show it (the bar is cores-gated,
3x at >= 8 cores) — 8 workers must beat the thread fan-out's qps.
"""

from repro.experiments import retrieval_scale


def test_retrieval_scale(benchmark, save_result):
    result = benchmark.pedantic(lambda: retrieval_scale.run(), rounds=1, iterations=1)
    save_result(result)
    measured = result.measured

    assert measured["docs_indexed"] >= 50_000
    # Same BM25 scores on both paths: top-k lists must match exactly.
    assert measured["topk_match_rate"] == 1.0
    assert measured["speedup"] >= 3.0
    # Shard fan-out with global statistics merges to the unsharded top-k.
    assert measured["sharded_match_rate"] == 1.0
    # Section III-H: the merged tree never reads more postings.
    assert measured["merged_postings"] <= measured["separate_postings"]
    assert measured["postings_ratio"] <= 1.0
    # Incremental churn really lands in the live index.
    assert measured["docs_after_churn"] == measured["docs_indexed"] + (
        measured["churn_docs_added"] - measured["churn_docs_removed"]
    )
    assert measured["churn_probe_found"]
    # Process workers are equivalence-by-construction: identical top-k
    # at every worker count, unconditionally.
    assert measured["worker_match_rate"] == 1.0
    # The qps ratio bar only applies where the cores exist (0.0 = SKIP).
    if measured["worker_qps_bar"] > 0.0:
        assert measured["worker_scaling_ratio"] >= measured["worker_qps_bar"]
        assert measured["worker_bar_met"]
