"""Table II — hyperparameter record (paper vs scaled reproduction)."""

from repro.experiments import table2


def test_table2_hyperparameters(benchmark, scale, save_result):
    result = benchmark.pedantic(lambda: table2.run(scale), rounds=1, iterations=1)
    save_result(result)
    # The q2t model must stay deeper than the t2q model, as in the paper.
    assert (
        result.measured["query_to_title"]["transformer_layers"]
        > result.measured["title_to_query"]["transformer_layers"] - 1
    )
    assert result.paper["query_to_title"]["transformer_layers"] == 4
