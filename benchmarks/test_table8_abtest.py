"""Table VIII — simulated 10-day A/B test: UCVR, GMV, QRR deltas."""

from repro.experiments import table8


def test_table8_abtest(benchmark, context, scale, save_result):
    result = benchmark.pedantic(lambda: table8.run(scale), rounds=1, iterations=1)
    save_result(result)
    measured = result.measured
    # Sign agreement with the paper: conversions and merchandise value up,
    # reformulation rate not up.
    assert measured["UCVR"] > 0.0
    assert measured["GMV"] > 0.0
    assert measured["QRR"] <= 0.0
    # The paper calls its improvements significant; ours should be too
    # (paired bootstrap over common-random-number sessions).
    assert measured["ucvr_p_value"] < 0.05
    assert measured["gmv_p_value"] < 0.05
