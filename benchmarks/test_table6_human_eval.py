"""Table VI — simulated human evaluation: joint vs separate, joint vs rule."""

from repro.experiments import table6


def test_table6_human_eval(benchmark, context, scale, save_result):
    result = benchmark.pedantic(lambda: table6.run(scale), rounds=1, iterations=1)
    save_result(result)
    joint_vs_separate = result.measured["joint_vs_separate"]
    # Paper shape: joint training wins the pairwise comparison vs separate
    # (29% win / 22% lose); allow a slack band at simulator scale.
    assert joint_vs_separate["win"] + joint_vs_separate["tie"] >= joint_vs_separate["lose"]
    joint_vs_rule = result.measured["joint_vs_rule"]
    # Rules are conservative and stay competitive on pure relevance.
    assert joint_vs_rule["tie"] + joint_vs_rule["lose"] >= joint_vs_rule["win"]
