"""Micro-benchmarks of the hot kernels (true pytest-benchmark statistics).

These complement the per-table experiment benches with repeated-measurement
timings of the operations that dominate production cost: one training step,
one two-hop rewrite, one cached lookup, one merged-tree retrieval.
"""

import numpy as np
import pytest

from repro.core import CyclicRewriter, RewriteCache, RewriterConfig
from repro.search import SearchConfig, SearchEngine


@pytest.fixture(scope="module")
def joint_rewriter(context):
    return context.rewriter("joint")


def test_kernel_cyclic_train_step(benchmark, context):
    """One Algorithm-1 step (with cyclic loss active)."""
    from repro.models import TransformerNMT
    from repro.training import CyclicConfig, CyclicTrainer

    scale = context.scale
    marketplace = context.marketplace
    from repro.experiments.shared import make_models

    forward, backward = make_models(scale, len(marketplace.vocab))
    trainer = CyclicTrainer(
        forward, backward, marketplace.train_pairs, marketplace.vocab,
        CyclicConfig(batch_size=8, warmup_steps=0, beam_width=2, top_n=5,
                     max_title_len=12, seed=0),
    )
    benchmark(trainer.train_step)


def test_kernel_two_hop_rewrite(benchmark, context, joint_rewriter):
    """Full Figure-3 inference for one query (the paper's >100 ms path)."""
    query = context.evaluation_queries(1)[0]
    result = benchmark(lambda: joint_rewriter.rewrite(query))
    assert isinstance(result, list)


def test_kernel_cache_lookup(benchmark, context, joint_rewriter):
    """Cache-tier lookup (the paper's <5 ms path)."""
    queries = context.evaluation_queries(8)
    cache = RewriteCache()
    cache.populate(joint_rewriter, queries, k=3)
    benchmark(lambda: cache.get(queries[0]))


def test_kernel_merged_tree_retrieval(benchmark, context, joint_rewriter):
    """Merged-tree retrieval of original + 3 rewrites."""
    engine = SearchEngine(context.marketplace.catalog, SearchConfig(merge_trees=True))
    query = context.evaluation_queries(1)[0]
    rewrites = [r.text for r in joint_rewriter.rewrite(query, k=3)]
    outcome = benchmark(lambda: engine.search(query, rewrites))
    assert outcome.num_trees == 1


def test_kernel_separate_trees_retrieval(benchmark, context, joint_rewriter):
    """The naive per-query-tree retrieval the paper rejects (for contrast)."""
    engine = SearchEngine(context.marketplace.catalog, SearchConfig(merge_trees=False))
    query = context.evaluation_queries(1)[0]
    rewrites = [r.text for r in joint_rewriter.rewrite(query, k=3)]
    outcome = benchmark(lambda: engine.search(query, rewrites))
    assert outcome.num_trees >= 1
