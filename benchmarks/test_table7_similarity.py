"""Table VII — F1 / edit distance / cosine: rule-based vs separate vs joint."""

from repro.experiments import table7


def test_table7_similarity(benchmark, context, scale, save_result):
    result = benchmark.pedantic(lambda: table7.run(scale), rounds=1, iterations=1)
    save_result(result)
    rule = result.measured["rule_based"]
    separate = result.measured["separate"]
    joint = result.measured["joint"]
    # Paper shape 1: rules are lexically near-identical to the original.
    assert rule["f1"] > 2 * max(separate["f1"], joint["f1"])
    assert rule["edit_distance"] < min(separate["edit_distance"], joint["edit_distance"])
    # Paper shape 2: rules keep the highest semantic cosine; the models stay
    # semantically reasonable while being far more lexically diverse.
    assert rule["cosine"] > max(separate["cosine"], joint["cosine"])
    assert min(separate["cosine"], joint["cosine"]) > 0.15
