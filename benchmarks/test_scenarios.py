"""Scenario library — acceptance bars for ``repro.online.scenarios``.

Every registered adversarial replay arm must hold every pinned invariant
at acceptance scale, same-seed replays must fingerprint byte-identically
(three runs, not two — a stateful scenario object would typically agree
on the second run and drift on the third), batch-size choices must not
change the work accounted, and — the part that makes the gates
trustworthy — a deliberately broken config must make the isolation
invariant FAIL.  A harness that cannot fail proves nothing.
"""

from repro.experiments import scenarios as scenarios_experiment
from repro.online import SCENARIOS, ScenarioConfig, run_scenario

EXPECTED_ARMS = {
    "multi_tenant",
    "hot_key_storm",
    "churn_storm",
    "cold_restart",
    "cold_restart_persistent",
    "vocab_drift",
    "shard_failover",
    "gateway_soak",
}


def test_scenarios(benchmark, save_result, scale):
    result = benchmark.pedantic(
        scenarios_experiment.run, args=(scale,), rounds=1, iterations=1
    )
    save_result(result)
    measured = result.measured

    # The registry holds exactly the eight arms the library promises.
    assert set(SCENARIOS) == EXPECTED_ARMS
    assert measured["scenarios"] == len(EXPECTED_ARMS)

    # Every arm passes every pinned invariant at acceptance scale.
    for name in EXPECTED_ARMS:
        assert measured[f"{name}_passed"] is True, name
        assert measured[f"{name}_invariants"] >= 5, name
    assert measured["all_passed"] is True

    # The library-level guarantees the experiment re-checks inline.
    assert measured["deterministic"] is True
    assert measured["gates_catch_regressions"] is True

    # Isolation tallies are exact zeros in every arm, not just "small".
    for name in EXPECTED_ARMS:
        totals = measured[f"{name}_totals"]
        assert totals["cross_tenant_cache_hits"] == 0, name
        assert totals["cross_tenant_doc_serves"] == 0, name
        assert totals["dead_doc_hits"] == 0, name
        # Conservation: everything submitted was admitted or shed.
        assert totals["admitted"] + totals["shed"] == totals["submitted"], name


def test_same_seed_fingerprints_identical_across_three_runs():
    """Three same-seed runs of every arm produce byte-identical digests."""
    config = ScenarioConfig(seed=0)
    for name in SCENARIOS:
        prints = {run_scenario(name, config).fingerprint() for _ in range(3)}
        assert len(prints) == 1, f"{name} diverged across same-seed runs"


def test_totals_invariant_across_micro_batch_sizes():
    """Batch grouping must not change the work accounted.

    Full fingerprints legitimately differ across ``max_batch_size``
    (duplicates sharing a batch all miss together), but the admitted/
    completed/shed/churn/isolation totals may not.
    """
    baseline = None
    for batch_size in (8, 16, 32):
        config = ScenarioConfig(seed=0, max_batch_size=batch_size)
        totals = run_scenario("multi_tenant", config).totals()
        if baseline is None:
            baseline = totals
        else:
            assert totals == baseline, f"totals drifted at max_batch_size={batch_size}"
    assert baseline is not None and baseline["shed"] == 0


def test_broken_config_fails_the_isolation_gate():
    """The regression gates can actually catch a regression.

    Disabling cache namespacing shares one un-prefixed store across
    tenants; the cross-tenant-serve invariant must FAIL — and only the
    isolation bars may trip, proving the failure is attributed precisely.
    """
    outcome = run_scenario("multi_tenant", ScenarioConfig(namespace_cache=False))
    assert not outcome.passed
    failed = {result.name for result in outcome.failures()}
    assert "zero_cross_tenant_cache_serves" in failed
    # The leak is a cache-tier phenomenon: index/doc isolation, accounting
    # and scheduler bars still hold even with the shared cache.
    assert "zero_cross_tenant_doc_serves" not in failed
    assert "tenant_counters_sum_to_global" not in failed
