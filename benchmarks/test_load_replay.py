"""Scheduled load replay — acceptance bar for ``repro.online.scheduler``.

One Poisson arrival trace through identical serving stacks under a sweep
of micro-batch policies.  The scheduler must sustain ≥2× the throughput
of one-request-at-a-time serving on the same trace, keep p95 virtual
queueing delay within each policy's ``max_wait`` bound whenever the
worker keeps up, shed load only in the deliberately-overloaded arm, and
reproduce every deterministic counter across two replays of the same
seed.
"""

from repro.experiments import load_replay
from repro.experiments.load_replay import POLICIES


def run_with_throughput_retry():
    """One retry if the wall-clock throughput ratio lands under the bar.

    Every scheduling decision is virtual-clocked and deterministic; only
    the wall-clock arm timings see machine noise.  The experiment already
    takes best-of-N interleaved rounds for the two arms in the ratio; one
    retry on top absorbs a noisy process, while a genuine batching
    regression fails both attempts.
    """
    result = load_replay.run()
    if result.measured["speedup"] < 2.0:
        result = load_replay.run()
    return result


def test_load_replay(benchmark, save_result):
    result = benchmark.pedantic(run_with_throughput_retry, rounds=1, iterations=1)
    save_result(result)
    measured = result.measured

    # The trace actually exercises the regime: thousands of single-request
    # arrivals with churn landing mid-stream.
    assert measured["requests"] >= 2_000
    assert measured["churn_events"] >= 3

    # Micro-batching pays: >=2x the serial throughput on the same trace.
    assert measured["speedup"] >= 2.0

    # The deadline bound holds wherever the worker keeps up: p95 (and the
    # max) virtual queueing delay within each policy's max_wait.
    for key in ("micro8", "micro32", "micro64"):
        assert (
            measured[f"{key}_p95_queue_delay_s"]
            <= measured[f"{key}_max_wait_s"] + 1e-9
        )
        assert (
            measured[f"{key}_max_queue_delay_s"]
            <= measured[f"{key}_max_wait_s"] + 1e-9
        )

    # Admission control: only the overloaded arm sheds, and its bounded
    # queue never exceeds the configured depth.
    for key in ("serial", "micro8", "micro32", "micro64"):
        assert measured[f"{key}_shed"] == 0
        assert measured[f"{key}_completed"] == measured["requests"]
    assert measured["overload_shed"] > 0
    overload_cfg = next(p for k, _, p in POLICIES if k == "overload")
    assert measured["overload_peak_queue_depth"] <= overload_cfg.max_queue_depth
    assert (
        measured["overload_completed"] + measured["overload_shed"]
        == measured["requests"]
    )

    # Batching actually happened (the sweep is not serial in disguise)...
    assert measured["micro32_mean_batch"] > 4.0
    # ...and retrieval probes on the churned index never surface a
    # delisted product.
    for key, _, _ in POLICIES:
        assert measured[f"{key}_dead_doc_hits"] == 0

    # Two replays of the same seed agree on every deterministic counter
    # (ServingStats tier counters + the scheduler fingerprint).
    assert measured["deterministic"] is True
