"""Benchmark fixtures: one shared experiment context per session.

Each benchmark regenerates one table/figure of the paper.  The rendered
result is printed and also written to ``benchmarks/results/<id>.txt`` so a
run leaves a reviewable artifact trail (EXPERIMENTS.md points here).
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments import SMALL
from repro.experiments.shared import build_context

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def scale():
    return SMALL


@pytest.fixture(scope="session")
def context(scale):
    """Marketplace + trained separate/joint pairs, built once per session."""
    return build_context(scale)


@pytest.fixture(scope="session")
def save_result():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(result) -> None:
        text = result.render()
        (RESULTS_DIR / f"{result.experiment_id}.txt").write_text(text + "\n")
        print("\n" + text)

    return _save
