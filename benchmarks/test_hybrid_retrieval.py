"""Hybrid lexical/semantic retrieval — the vocabulary-gap acceptance bar.

Three claims must hold on a ≥50k-document catalog (see
``repro/experiments/hybrid_retrieval.py`` and docs/SEMANTIC.md):

1. **Recall** — on the vocabulary-gap query set (queries and rewrites
   built from query-side-only tokens, so every rewrite misses the
   inverted index), hybrid recall@10 is strictly above lexical-only.
2. **Speed** — the IVF probe search beats per-query brute-force dot
   products by ≥5× while agreeing with the exact top-10 at ≥0.95.
3. **Churn** — products delisted through the hybrid engine (catalog,
   inverted index, and vector index in lockstep) never surface from the
   vector tier again, even probed with their own embeddings.
"""

from repro.experiments import hybrid_retrieval


def test_hybrid_retrieval(benchmark, save_result):
    result = benchmark.pedantic(lambda: hybrid_retrieval.run(), rounds=1, iterations=1)
    save_result(result)
    measured = result.measured

    assert measured["docs_indexed"] >= 50_000

    # The gap query set is structurally out of lexical reach...
    assert measured["lexical_recall"] == 0.0
    # ...and the semantic tier actually recovers it: hybrid strictly wins.
    assert measured["hybrid_recall"] > measured["lexical_recall"]
    assert measured["hybrid_recall"] >= 0.25
    # Fusion never does worse than the better single tier here (lexical
    # contributes nothing, so hybrid == semantic ranking).
    assert measured["hybrid_recall"] >= measured["semantic_recall"] - 1e-9

    # ANN vs brute force: matched recall first, then the speed claim.
    assert measured["ann_matched_recall"] >= 0.95
    assert measured["ann_speedup"] >= 5.0

    # Churn-interleaved: removed products never surface from the vector
    # tier; a surviving fresh product is findable in both tiers.
    assert measured["churn_dead_hits"] == 0
    assert measured["churn_probe_found"]
    assert measured["docs_after_churn"] == measured["docs_indexed"] + (
        measured["churn_docs_added"] - measured["churn_docs_removed"]
    )
