"""Figure 9 — pure RNN vs hybrid (transformer encoder + RNN decoder) on q2q."""

from repro.experiments import fig9


def test_fig9_rnn_vs_hybrid(benchmark, context, scale, save_result):
    result = benchmark.pedantic(lambda: fig9.run(scale), rounds=1, iterations=1)
    save_result(result)
    hybrid = result.measured["hybrid"]
    rnn = result.measured["rnn"]
    # Paper: the hybrid is significantly better — the transformer encoder
    # is worth keeping even under serving-latency constraints.
    assert hybrid["perplexity"] < rnn["perplexity"]
    assert hybrid["accuracy"] > rnn["accuracy"]
