"""Section V — causal-LM rewriting vs the joint translation pair."""

from repro.experiments import lm_exploration


def test_lm_exploration(benchmark, context, scale, save_result):
    result = benchmark.pedantic(lambda: lm_exploration.run(scale), rounds=1, iterations=1)
    save_result(result)
    measured = result.measured
    # The LM must train and produce rewrites...
    assert measured["lm_coverage"] > 0.3
    # ... and, per the paper's reported finding, not beat the joint pair.
    assert measured["joint_relevance"] >= measured["lm_relevance"] - 0.05
