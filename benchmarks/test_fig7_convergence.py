"""Figure 7 — convergence of separate vs joint training on all metrics."""

from repro.experiments import fig7


def test_fig7_convergence(benchmark, context, scale, save_result):
    result = benchmark.pedantic(lambda: fig7.run(scale), rounds=1, iterations=1)
    save_result(result)
    measured = result.measured
    # The paper's central quantitative claim: joint training ends with a
    # better q2q translate-back log probability than separate training.
    assert (
        measured["joint_q2q_log_prob_final"]
        > measured["separate_q2q_log_prob_final"]
    )
    # ... and a lower q2q perplexity.
    assert (
        measured["joint_q2q_perplexity_final"]
        < measured["separate_q2q_perplexity_final"]
    )
    # t2q quality is not destroyed by joint training (paper: "keeps the same";
    # allow a generous band at this scale).
    assert (
        measured["joint_t2q_perplexity_final"]
        < 2.0 * measured["separate_t2q_perplexity_final"]
    )
