"""Table V — encoder/decoder latency of RNN, GRU and transformer models."""

from repro.experiments import table5


def test_table5_latency(benchmark, scale, save_result):
    result = benchmark.pedantic(
        lambda: table5.run(scale, repeats=7), rounds=1, iterations=1
    )
    save_result(result)
    measured = result.measured
    # The paper's key ordering: the transformer decoder is the slowest
    # decoder (its per-step self-attention re-reads the whole prefix).
    assert measured["decoder"]["transformer"] > measured["decoder"]["rnn"]
    assert measured["decoder"]["transformer"] > measured["decoder"]["gru"]
    # Decoders dominate encoders for every family (15 steps vs 1 pass).
    for kind in ("rnn", "gru", "transformer"):
        assert measured["decoder"][kind] > measured["encoder"][kind]
