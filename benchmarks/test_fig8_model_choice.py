"""Figure 8 — transformer vs attention-based (Bahdanau GRU) NMT."""

from repro.experiments import fig8


def test_fig8_transformer_vs_attention(benchmark, context, scale, save_result):
    result = benchmark.pedantic(lambda: fig8.run(scale), rounds=1, iterations=1)
    save_result(result)
    transformer = result.measured["transformer"]
    attention = result.measured["attention"]
    # Paper: transformer clearly better; require it on at least perplexity
    # and accuracy (log-prob is length-sensitive and noisier).
    assert transformer["perplexity"] < attention["perplexity"]
    assert transformer["accuracy"] > attention["accuracy"]
