"""Ablation benches for the design choices Section III argues for."""

from repro.experiments import ablations


def test_ablation_lambda_sweep(benchmark, context, scale, save_result):
    result = benchmark.pedantic(
        lambda: ablations.lambda_sweep(scale, lambdas=(0.0, 0.1)),
        rounds=1,
        iterations=1,
    )
    save_result(result)
    without = result.measured["lambda_0.0"]
    with_cyclic = result.measured["lambda_0.1"]
    # λ=0.1 (the paper's choice) must beat λ=0 on translate-back log prob.
    assert with_cyclic["log_prob"] > without["log_prob"]


def test_ablation_decoder_diversity(benchmark, context, scale, save_result):
    result = benchmark.pedantic(
        lambda: ablations.decoder_diversity(scale), rounds=1, iterations=1
    )
    save_result(result)
    # Section III-F: top-n sampling candidates are more diverse than beams.
    assert (
        result.measured["topn_mean_pairwise_edit"]
        >= result.measured["beam_mean_pairwise_edit"]
    )


def test_ablation_offline_metric(benchmark, context, scale, save_result):
    result = benchmark.pedantic(
        lambda: ablations.offline_metric(scale), rounds=1, iterations=1
    )
    save_result(result)
    measured = result.measured
    # §V: under the composite utility, the generative models beat the
    # lexically-conservative rule baseline (the Table VII inversion).
    assert measured["joint"]["utility"] > measured["rule_based"]["utility"]


def test_ablation_warmup_sensitivity(benchmark, context, scale, save_result):
    result = benchmark.pedantic(
        lambda: ablations.warmup_sensitivity(scale), rounds=1, iterations=1
    )
    save_result(result)
    # Both settings must at least produce finite metrics; the comparison is
    # recorded in the artifact for inspection.
    for key, metrics in result.measured.items():
        assert metrics["log_prob"] < 0.0, key
