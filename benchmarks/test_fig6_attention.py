"""Figure 6 — attention heat maps of the two translation hops."""

import numpy as np

from repro.experiments import fig6


def test_fig6_attention_heatmaps(benchmark, context, scale, save_result):
    result = benchmark.pedantic(lambda: fig6.run(scale), rounds=1, iterations=1)
    save_result(result)
    assert result.measured["title"], "forward hop produced no synthetic title"
    assert result.measured["rewrite"], "backward hop produced no rewrite"
    assert "hop 1" in result.rendered and "hop 2" in result.rendered
