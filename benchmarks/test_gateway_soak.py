"""Gateway soak — acceptance bars for the service front door.

The ``gateway_soak`` experiment boots a real asyncio HTTP gateway on an
ephemeral loopback port, replays a deterministic trace through it with
concurrent socket clients, and twins the run in process on a virtual
clock.  At acceptance scale every conformance bar must hold: per-tenant
serving counters byte-identical across the two paths, zero HTTP 500s,
schema-valid responses, and a drain receipt conserving every admitted
request.  A mid-soak drain (driven directly here, not via the
experiment) additionally pins the zero-loss property under interruption.
"""

import asyncio

from repro.experiments import gateway_soak as gateway_soak_experiment
from repro.gateway.soak import (
    SoakConfig,
    build_workload,
    item_path,
    item_payload,
    run_gateway_arm,
    run_soak,
)


def test_gateway_soak(benchmark, save_result, scale):
    result = benchmark.pedantic(
        gateway_soak_experiment.run, args=(scale,), rounds=1, iterations=1
    )
    save_result(result)
    measured = result.measured

    # The headline conformance claim: the socket path IS the replay model.
    assert measured["socket_counters_byte_identical"] is True
    assert measured["identical"] is True

    # Error containment and schema discipline over the whole soak.
    assert measured["http_500s"] == 0
    assert measured["schema_failures"] == 0
    assert measured["every_request_answered_200"] is True

    # Conservation across the graceful drain: nothing admitted vanished.
    assert measured["lost_requests"] == 0
    receipt = measured["receipt"]
    assert receipt["admitted"] == receipt["completed"] + receipt["shed"]
    assert receipt["admitted"] == measured["requests"]

    # The deterministic side of the outcome reruns byte-identically.
    assert measured["deterministic"] is True
    assert measured["all_passed"] is True


def test_drain_mid_soak_loses_nothing(scale):
    """Interrupt the soak with a drain at ~50%: conservation still exact.

    Late requests race the drain and legitimately get 503 ``draining``;
    what must never happen is an admitted request vanishing — the drain
    receipt's ``admitted == completed + shed`` is checked against the
    clients' own accounting of 200s received.
    """
    config = SoakConfig(
        seed=scale.seed, num_requests=scale.scaled(240, 120), drain_at_end=False
    )
    items, _ = build_workload(config)

    async def interrupted():
        from repro.gateway.soak import MiniClient
        from repro.gateway.app import Gateway, GatewayConfig
        from repro.gateway.ratelimit import RateLimitConfig
        from repro.gateway.soak import SOAK_SCHEDULER, build_tenant_pipeline
        from repro.online.clock import WallClock

        clock = WallClock()
        pipelines = {
            tenant: build_tenant_pipeline(config, index, clock.now)
            for index, tenant in enumerate(config.tenants)
        }
        gateway_config = GatewayConfig(
            scheduler=SOAK_SCHEDULER,
            rate_limit=RateLimitConfig(rate_per_second=1e6, burst=1_000_000),
        )
        drain_after = len(items) // 2
        served_200 = 0
        draining_503 = 0
        async with Gateway(pipelines, gateway_config, clock=clock) as gateway:
            client = MiniClient(gateway.config.host, gateway.port)
            drainer = MiniClient(gateway.config.host, gateway.port)
            receipt = None
            try:
                for position, item in enumerate(items):
                    if position == drain_after:
                        _, _, receipt = await drainer.post("/v1/drain", {})
                    status, _, _ = await client.post(
                        item_path(item), item_payload(item)
                    )
                    if status == 200:
                        served_200 += 1
                    elif status == 503:
                        draining_503 += 1
                    else:  # pragma: no cover - would fail the assertions below
                        raise AssertionError(f"unexpected status {status}")
            finally:
                await client.close()
                await drainer.close()
        return served_200, draining_503, receipt

    served_200, draining_503, receipt = asyncio.run(interrupted())
    # Everything before the drain was served; everything after got 503.
    assert served_200 + draining_503 == len(items)
    assert draining_503 > 0
    # Zero loss: the receipt accounts for every admitted request, and the
    # clients saw exactly as many 200s as the schedulers completed.
    assert receipt["admitted"] == receipt["completed"] + receipt["shed"]
    assert receipt["shed"] == 0
    assert receipt["completed"] == served_200


def test_concurrency_level_does_not_change_counters(scale):
    """1 client vs 8 clients: identical deterministic counters.

    The soak's byte-equality claim is only meaningful if the socket arm
    is insensitive to interleaving; sweeping the client count is the
    direct probe of that property.
    """
    base = SoakConfig(seed=scale.seed, num_requests=scale.scaled(240, 120))
    items, _ = build_workload(base)
    counters = []
    for clients in (1, 8):
        config = SoakConfig(
            seed=base.seed, num_requests=base.num_requests, clients=clients
        )
        serving, by_status, schema_failures, _, _ = asyncio.run(
            run_gateway_arm(config, items)
        )
        assert by_status == {"200": len(items)}
        assert schema_failures == 0
        counters.append(serving)
    assert counters[0] == counters[1]


def test_micro_batched_gateway_conserves_work(scale):
    """B=8 with a real deadline trigger: conservation, not byte equality.

    Micro-batching under wall-clock timing legitimately regroups
    requests (so cache/model splits may differ from the twin); what must
    hold is exact work conservation and zero error responses.
    """
    from repro.gateway.app import GatewayConfig
    from repro.gateway.ratelimit import RateLimitConfig
    from repro.online.scheduler import SchedulerConfig

    config = SoakConfig(
        seed=scale.seed, num_requests=scale.scaled(240, 120), drain_at_end=True
    )
    items, _ = build_workload(config)

    async def batched():
        from repro.gateway.app import Gateway
        from repro.gateway.soak import MiniClient, build_tenant_pipeline
        from repro.online.clock import WallClock

        clock = WallClock()
        pipelines = {
            tenant: build_tenant_pipeline(config, index, clock.now)
            for index, tenant in enumerate(config.tenants)
        }
        gateway_config = GatewayConfig(
            scheduler=SchedulerConfig(
                max_batch_size=8, max_wait_seconds=0.02, max_queue_depth=4096
            ),
            rate_limit=RateLimitConfig(rate_per_second=1e6, burst=1_000_000),
            pump_interval_seconds=0.002,
        )
        async with Gateway(pipelines, gateway_config, clock=clock) as gateway:
            lanes = [items[offset::4] for offset in range(4)]

            async def drive(slice_items):
                client = MiniClient(gateway.config.host, gateway.port)
                statuses = []
                try:
                    for item in slice_items:
                        status, _, _ = await client.post(
                            item_path(item), item_payload(item)
                        )
                        statuses.append(status)
                finally:
                    await client.close()
                return statuses

            results = await asyncio.gather(*(drive(lane) for lane in lanes))
            reader = MiniClient(gateway.config.host, gateway.port)
            try:
                _, _, receipt = await reader.post("/v1/drain", {})
            finally:
                await reader.close()
        return [status for lane in results for status in lane], receipt

    statuses, receipt = asyncio.run(batched())
    assert all(status == 200 for status in statuses)
    assert receipt["admitted"] == len(items)
    assert receipt["admitted"] == receipt["completed"] + receipt["shed"]
    assert receipt["shed"] == 0


def test_soak_fingerprint_stable_across_runs(scale):
    """Two full soak runs agree on the deterministic fingerprint."""
    config = SoakConfig(seed=scale.seed, num_requests=scale.scaled(240, 120))
    assert run_soak(config).fingerprint() == run_soak(config).fingerprint()
