"""Batched serving throughput: serve_batch vs the per-query loop."""

from repro.experiments import serving_batched


def test_serving_batched_throughput(benchmark, context, scale, save_result):
    result = benchmark.pedantic(
        lambda: serving_batched.run(scale), rounds=1, iterations=1
    )
    save_result(result)
    measured = result.measured
    # The tentpole claim: stacking a batch's cache misses into one decode
    # at least doubles throughput on a mixed head/tail workload.
    assert measured["speedup"] >= 2.0
    # Both tiers saw traffic.
    assert measured["batched_cache_share"] > 0.0
    assert measured["batched_model_share"] > 0.0
    # The bounded cache held its capacity under write-back load.
    assert measured["max_cache_occupancy"] <= measured["cache_capacity"]
    assert measured["cache_evictions"] > 0
    # KV-cached incremental stepping + active-row compaction beats the
    # frozen full-prefix reference decode at least 3x — at byte-identical
    # (token-for-token) rewrite outputs under the same seeds.
    assert measured["decode_outputs_identical"] is True
    assert measured["decode_speedup"] >= 3.0
    # Compaction is visible in the work accounting: the optimized path
    # steps no more rows than the keep-every-row reference.
    assert measured["decode_rows_new"] <= measured["decode_rows_reference"]
    assert measured["decode_verdict"] == "PASS"
