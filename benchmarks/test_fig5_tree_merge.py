"""Figure 5 / Section III-H — merged syntax tree vs per-query trees."""

from repro.experiments import fig5


def test_fig5_tree_merge(benchmark, context, scale, save_result):
    result = benchmark.pedantic(lambda: fig5.run(scale), rounds=1, iterations=1)
    save_result(result)
    measured = result.measured
    # The optimization must save aggregate postings accesses and tree nodes.
    assert measured["total_postings_ratio"] < 1.0
    assert measured["mean_nodes_ratio"] <= 1.0
    assert measured["queries_evaluated"] >= 5
