"""Section III-G — two-tier serving: cache coverage and latency."""

from repro.experiments import serving


def test_serving_tradeoff(benchmark, context, scale, save_result):
    result = benchmark.pedantic(lambda: serving.run(scale), rounds=1, iterations=1)
    save_result(result)
    measured = result.measured
    # Head-query caching must absorb a large share of zipf traffic.
    assert measured["cache_share"] > 0.5
    # The fallback model serves (part of) the tail.
    assert measured["model_share"] + measured["unserved_share"] > 0.0
    assert measured["mean_latency_ms"] < 1000.0
