"""Table I — dataset statistics of the (synthetic) click log."""

from repro.experiments import table1


def test_table1_dataset_stats(benchmark, context, scale, save_result):
    result = benchmark.pedantic(lambda: table1.run(scale), rounds=1, iterations=1)
    save_result(result)
    measured = result.measured
    # Structural facts the paper's models rely on must hold at any scale.
    assert measured["num_query_item_pairs"] > 100
    assert measured["avg_title_words"] > 2 * measured["avg_query_words"]
    assert measured["vocab_size"] > 100
