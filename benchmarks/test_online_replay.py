"""Online freshness under churn — acceptance bar for ``repro.online``.

Replays the same ≥10k-request, churn-interleaved traffic stream through a
no-freshness baseline and a freshness-controlled serving stack.  The
controller must cut the stale-serve rate hard (and the combined
stale-or-empty rate strictly) while keeping throughput within 10% of the
baseline, and the incrementally-churned sharded index must never surface
a delisted product in the end-to-end retrieval probes.
"""

from repro.experiments import online_replay


def run_with_throughput_retry():
    """One retry if the throughput comparison lands under the bar.

    Every quality counter is deterministic (same seed, same schedule,
    virtual clock) — only the wall-clock arm timings are exposed to
    machine noise, and on a busy CI host a 0.3s arm can eat a scheduler
    stall.  The experiment already takes best-of-3 interleaved rounds per
    arm; one retry on top absorbs a noisy *process*, while a genuine
    freshness-overhead regression fails both attempts.
    """
    result = online_replay.run()
    if result.measured["qps_ratio"] < 0.9:
        result = online_replay.run()
    return result


def test_online_replay(benchmark, save_result):
    result = benchmark.pedantic(run_with_throughput_retry, rounds=1, iterations=1)
    save_result(result)
    measured = result.measured

    # The stream actually exercises the regime: ≥10k requests with churn
    # landing mid-traffic and the TTL clock running out on real entries.
    assert measured["requests_per_arm"] >= 10_000
    assert measured["churn_events"] >= 5
    assert measured["baseline_expirations"] > 0

    # Freshness controller: stale serves collapse, stale-or-empty strictly
    # drops, and nothing is gained by serving less traffic from cache.
    assert measured["baseline_stale_rate"] > 0.0
    assert (
        measured["freshness_stale_rate"] <= 0.5 * measured["baseline_stale_rate"]
    )
    assert (
        measured["freshness_stale_or_empty_rate"]
        < measured["baseline_stale_or_empty_rate"]
    )
    assert measured["freshness_hit_rate"] >= measured["baseline_hit_rate"]

    # ... at equal throughput (freshness work charged to its own arm).
    assert measured["qps_ratio"] >= 0.9

    # Churn consistency: the live index follows the catalog, so retrieval
    # probes never return a delisted product.
    assert measured["baseline_dead_doc_hits"] == 0
    assert measured["freshness_dead_doc_hits"] == 0

    # The controller actually worked for its keep.
    assert measured["invalidated"] > 0
    assert measured["refreshed"] > 0
    assert measured["purged_expired"] > 0
