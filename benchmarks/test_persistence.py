"""Persistent index segments — the cold-start acceptance bars.

Four claims must hold on a ≥50k-document catalog (see
``repro/experiments/persistence.py`` and docs/PERSISTENCE.md):

1. **Cold start** — restoring the hybrid engine from on-disk segments
   is ≥5× faster than rebuilding it from the catalog (tokenize + index
   every document, encode every title, fit IVF cells).
2. **Equality** — the restored engine ranks every seeded query
   byte-identically (doc ids AND scores) to the live engine in all
   three retrieval modes, including after churn (delta segments) and
   after compaction.
3. **Incrementality** — a post-churn save writes delta segments rather
   than rewriting every shard, and compaction folds the chain back
   into fewer files.
4. **Corruption** — every seeded bit-flip / truncation / zero-fill is
   either detected by a typed ``StoreError`` or leaves results
   byte-identical; silent wrong-result loads are zero, always.
"""

from repro.experiments import persistence


def test_persistence(benchmark, save_result, scale):
    result = benchmark.pedantic(
        persistence.run, args=(scale,), rounds=1, iterations=1
    )
    save_result(result)
    measured = result.measured

    assert measured["docs_indexed"] >= 50_000

    # Cold start: segments beat the catalog rebuild by the pinned margin.
    assert measured["restore_speedup"] >= 5.0
    assert measured["load_seconds"] < measured["build_seconds"]

    # Exact equality in every retrieval mode, at every lifecycle stage.
    assert measured["match_rate_lexical"] == 1.0
    assert measured["match_rate_semantic"] == 1.0
    assert measured["match_rate_hybrid"] == 1.0
    assert measured["churn_match_rate"] == 1.0
    assert measured["compact_match_rate"] == 1.0

    # Churn produced an incremental save, and compaction reclaimed it.
    assert measured["delta_segments"] > 0
    assert measured["files_after_compaction"] < measured["files_before_compaction"]

    # Corruption: everything injected was detected or provably harmless.
    assert measured["corruption_trials"] >= 24
    assert measured["corruption_silent"] == 0
    assert (
        measured["corruption_detected"] + measured["corruption_identical"]
        == measured["corruption_trials"]
    )

    # The rendered artifact carries the per-bar verdicts the CI greps.
    assert measured["all_passed"] is True
    assert "FAIL" not in result.rendered
