"""Module/Parameter abstractions, mirroring the familiar torch.nn design."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.autograd import Tensor


class Parameter(Tensor):
    """A trainable tensor: always requires grad outside of ``no_grad``."""

    def __init__(self, data, name: str | None = None):
        super().__init__(np.asarray(data, dtype=np.float64), requires_grad=True, name=name)
        # Parameters must require grad even if constructed inside no_grad().
        self.requires_grad = True


class Module:
    """Base class for all neural modules.

    Submodules and parameters are discovered by attribute inspection, the
    same convention as torch.nn: assign a :class:`Parameter` or a
    :class:`Module` to ``self.<name>`` and it is registered automatically.
    """

    def __init__(self):
        self.training = True

    # -- discovery ------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for attr, value in vars(self).items():
            if attr == "training":
                continue
            full = f"{prefix}{attr}"
            if isinstance(value, Parameter):
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{full}.")

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        yield self
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()

    def num_parameters(self) -> int:
        """Total number of scalar parameters in this module tree."""
        return sum(p.size for p in self.parameters())

    # -- train/eval -----------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # -- (de)serialization ----------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}"
            )
        for name, p in own.items():
            if p.data.shape != state[name].shape:
                raise ValueError(
                    f"shape mismatch for {name}: {p.data.shape} vs {state[name].shape}"
                )
            p.data = state[name].copy()

    # -- call protocol ----------------------------------------------------
    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError


class ModuleList(Module):
    """A list of submodules registered for parameter discovery."""

    def __init__(self, modules=()):
        super().__init__()
        self._items: list[Module] = []
        for m in modules:
            self.append(m)

    def append(self, module: Module) -> None:
        index = len(self._items)
        self._items.append(module)
        setattr(self, f"m{index}", module)

    def __iter__(self):
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]
