"""Cross-entropy losses for sequence models."""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor


def cross_entropy(
    logits: Tensor,
    targets: np.ndarray,
    label_smoothing: float = 0.0,
) -> Tensor:
    """Mean cross entropy between ``(N, vocab)`` logits and ``(N,)`` targets."""
    targets = np.asarray(targets, dtype=np.int64)
    log_probs = logits.log_softmax(axis=-1)
    n = targets.shape[0]
    nll = -log_probs[np.arange(n), targets]
    if label_smoothing > 0.0:
        smooth = -log_probs.mean(axis=-1)
        nll = (1.0 - label_smoothing) * nll + label_smoothing * smooth
    return nll.mean()


def sequence_cross_entropy(
    logits: Tensor,
    targets: np.ndarray,
    pad_id: int,
    label_smoothing: float = 0.0,
) -> tuple[Tensor, int]:
    """Token-mean cross entropy over a padded batch.

    Parameters
    ----------
    logits:
        ``(batch, seq, vocab)`` unnormalized scores.
    targets:
        ``(batch, seq)`` integer token ids; positions equal to ``pad_id``
        are excluded from the loss.
    label_smoothing:
        Mass spread uniformly over the vocabulary.

    Returns
    -------
    (loss, num_tokens):
        ``loss`` is the mean negative log likelihood per non-pad token (an
        autograd scalar); ``num_tokens`` the count of non-pad positions.
        ``exp(loss)`` is the perplexity reported in the paper's Figure 7.
    """
    targets = np.asarray(targets, dtype=np.int64)
    batch, seq_len, vocab = logits.shape
    flat_logits = logits.reshape(batch * seq_len, vocab)
    flat_targets = targets.reshape(-1)
    mask = flat_targets != pad_id
    num_tokens = int(mask.sum())
    if num_tokens == 0:
        raise ValueError("sequence_cross_entropy received a batch of only PAD tokens")

    log_probs = flat_logits.log_softmax(axis=-1)
    picked = -log_probs[np.arange(batch * seq_len), flat_targets]
    if label_smoothing > 0.0:
        smooth = -log_probs.mean(axis=-1)
        picked = (1.0 - label_smoothing) * picked + label_smoothing * smooth
    # Zero the padded positions, then average over real tokens.
    picked = picked.masked_fill(~mask, 0.0)
    loss = picked.sum() / num_tokens
    return loss, num_tokens
