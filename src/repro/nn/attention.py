"""Scaled dot-product multi-head attention."""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor
from repro.nn.dropout import Dropout
from repro.nn.linear import Linear
from repro.nn.module import Module

_NEG_INF = -1e9


class MultiHeadAttention(Module):
    """Multi-head attention as in "Attention Is All You Need".

    The layer keeps the attention weights of its most recent forward pass in
    :attr:`last_weights` (a ``(batch, heads, q_len, k_len)`` array) so the
    attention heat maps of the paper's Figure 6 can be rendered.

    Parameters
    ----------
    d_model:
        Model width; must be divisible by ``num_heads``.
    num_heads:
        Number of parallel attention heads.
    dropout:
        Dropout probability applied to the attention distribution.
    """

    def __init__(
        self,
        d_model: int,
        num_heads: int,
        dropout: float = 0.0,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if d_model % num_heads != 0:
            raise ValueError(f"d_model={d_model} not divisible by num_heads={num_heads}")
        rng = rng or np.random.default_rng()
        self.d_model = d_model
        self.num_heads = num_heads
        self.d_head = d_model // num_heads
        self.q_proj = Linear(d_model, d_model, rng=rng)
        self.k_proj = Linear(d_model, d_model, rng=rng)
        self.v_proj = Linear(d_model, d_model, rng=rng)
        self.out_proj = Linear(d_model, d_model, rng=rng)
        self.attn_dropout = Dropout(dropout, rng=rng)
        self.last_weights: np.ndarray | None = None

    def _split_heads(self, x: Tensor) -> Tensor:
        batch, seq, _ = x.shape
        return x.reshape(batch, seq, self.num_heads, self.d_head).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: Tensor) -> Tensor:
        batch, heads, seq, d_head = x.shape
        return x.transpose(0, 2, 1, 3).reshape(batch, seq, heads * d_head)

    def project_kv(self, x: Tensor) -> tuple[np.ndarray, np.ndarray]:
        """Project ``x`` through the K/V heads once, for reuse across steps.

        Returns plain ``(batch, heads, seq, d_head)`` arrays — the exact
        keys/values :meth:`forward` would compute from the same input — so
        incremental decoders can cache them in a
        :class:`~repro.models.base.DecodeState` instead of re-projecting
        the whole prefix (or the whole encoder memory) every step.
        """
        return (
            self._split_heads(self.k_proj(x)).data,
            self._split_heads(self.v_proj(x)).data,
        )

    def attend_cached(
        self,
        query: Tensor,
        k: np.ndarray,
        v: np.ndarray,
        mask: np.ndarray | None = None,
    ) -> Tensor:
        """Attend from ``query`` over *precomputed* keys/values.

        ``k``/``v`` are ``(batch, heads, k_len, d_head)`` arrays from
        :meth:`project_kv` (possibly grown one position per decode step).
        The math is identical to :meth:`forward` with the projections
        skipped, so cached decoding reproduces the uncached logits up to
        float reassociation from the different matmul shapes.
        """
        q = self._split_heads(self.q_proj(query))
        scores = (q @ Tensor(k).swapaxes(-1, -2)) * (self.d_head**-0.5)
        if mask is not None:
            scores = scores.masked_fill(mask, _NEG_INF)
        weights = scores.softmax(axis=-1)
        self.last_weights = weights.data.copy()
        weights = self.attn_dropout(weights)
        context = self._merge_heads(weights @ Tensor(v))
        return self.out_proj(context)

    def forward(
        self,
        query: Tensor,
        key: Tensor,
        value: Tensor,
        mask: np.ndarray | None = None,
    ) -> Tensor:
        """Attend from ``query`` positions to ``key``/``value`` positions.

        Parameters
        ----------
        query, key, value:
            ``(batch, seq, d_model)`` tensors.
        mask:
            Boolean array broadcastable to ``(batch, heads, q_len, k_len)``;
            ``True`` marks positions that must NOT be attended to.
        """
        q = self._split_heads(self.q_proj(query))
        k = self._split_heads(self.k_proj(key))
        v = self._split_heads(self.v_proj(value))

        scores = (q @ k.swapaxes(-1, -2)) * (self.d_head**-0.5)
        if mask is not None:
            scores = scores.masked_fill(mask, _NEG_INF)
        weights = scores.softmax(axis=-1)
        self.last_weights = weights.data.copy()
        weights = self.attn_dropout(weights)
        context = self._merge_heads(weights @ v)
        return self.out_proj(context)


def padding_mask(token_ids: np.ndarray, pad_id: int) -> np.ndarray:
    """Mask blocking attention to PAD key positions.

    Returns a boolean array of shape ``(batch, 1, 1, seq)`` suitable for
    broadcasting against attention scores.
    """
    return (np.asarray(token_ids) == pad_id)[:, None, None, :]


def causal_mask(seq_len: int) -> np.ndarray:
    """Upper-triangular mask blocking attention to future positions.

    Shape ``(1, 1, seq, seq)``.
    """
    return np.triu(np.ones((seq_len, seq_len), dtype=bool), k=1)[None, None]
