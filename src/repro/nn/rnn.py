"""Recurrent cells and layers (vanilla RNN and GRU).

The paper's online-serving section (III-G) replaces the transformer decoder
with an RNN decoder because its per-step cost is constant, and Table V also
measures a GRU variant; both cells are implemented here.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor, concat, stack, where
from repro.nn import init
from repro.nn.linear import Linear
from repro.nn.module import Module, Parameter


class RNNCell(Module):
    """Vanilla tanh recurrence: ``h' = tanh(x W_x + h W_h + b)``."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w_x = Parameter(init.xavier_uniform((input_size, hidden_size), rng))
        self.w_h = Parameter(init.orthogonal((hidden_size, hidden_size), rng))
        self.bias = Parameter(np.zeros(hidden_size))

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        return (x @ self.w_x + h @ self.w_h + self.bias).tanh()

    def initial_state(self, batch_size: int) -> Tensor:
        return Tensor(np.zeros((batch_size, self.hidden_size)))


class GRUCell(Module):
    """Gated recurrent unit (Cho et al., 2014)."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        # Update (z), reset (r) and candidate (n) gates, fused per source.
        self.w_x = Parameter(init.xavier_uniform((input_size, 3 * hidden_size), rng))
        self.w_h = Parameter(
            np.concatenate(
                [init.orthogonal((hidden_size, hidden_size), rng) for _ in range(3)], axis=1
            )
        )
        self.bias = Parameter(np.zeros(3 * hidden_size))

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        hs = self.hidden_size
        gates_x = x @ self.w_x + self.bias
        gates_h = h @ self.w_h
        z = (gates_x[:, :hs] + gates_h[:, :hs]).sigmoid()
        r = (gates_x[:, hs : 2 * hs] + gates_h[:, hs : 2 * hs]).sigmoid()
        n = (gates_x[:, 2 * hs :] + r * gates_h[:, 2 * hs :]).tanh()
        return (1.0 - z) * n + z * h

    def initial_state(self, batch_size: int) -> Tensor:
        return Tensor(np.zeros((batch_size, self.hidden_size)))


class RecurrentEncoder(Module):
    """Unidirectional recurrent encoder over embedded sequences.

    Padded positions (given by ``pad_mask``) simply carry the previous hidden
    state forward, so the final state equals the state at each sequence's
    true last token.
    """

    def __init__(self, cell: Module):
        super().__init__()
        self.cell = cell

    def forward(self, embedded: Tensor, pad_mask: np.ndarray | None = None) -> tuple[Tensor, Tensor]:
        """Run over ``(batch, seq, input)`` and return ``(outputs, final)``.

        ``outputs`` is ``(batch, seq, hidden)``; ``final`` is ``(batch, hidden)``.
        """
        batch, seq_len, _ = embedded.shape
        h = self.cell.initial_state(batch)
        outputs = []
        for t in range(seq_len):
            x_t = embedded[:, t, :]
            h_new = self.cell(x_t, h)
            if pad_mask is not None:
                is_pad = pad_mask[:, t][:, None]
                h = where(is_pad, h, h_new)
            else:
                h = h_new
            outputs.append(h)
        return stack(outputs, axis=1), h


class RecurrentDecoderCell(Module):
    """Single-step recurrent decoder with optional additive attention.

    When ``attention`` is provided (see :class:`AdditiveAttention`), each step
    attends over encoder ``memory`` and conditions the recurrence on the
    concatenation of the token embedding and the context vector — the
    Bahdanau et al. (2014) architecture used by the paper's
    "attention-based" model variant.
    """

    def __init__(self, cell: Module, attention: "AdditiveAttention | None" = None):
        super().__init__()
        self.cell = cell
        self.attention = attention

    def step(
        self,
        embedded_token: Tensor,
        hidden: Tensor,
        memory: Tensor | None = None,
        memory_pad_mask: np.ndarray | None = None,
        projected_keys: np.ndarray | None = None,
    ) -> tuple[Tensor, Tensor]:
        """Advance one step; returns ``(output, new_hidden)``.

        ``projected_keys`` optionally carries the attention's
        once-per-decode key projection of ``memory`` (see
        :meth:`AdditiveAttention.project_keys`); omitting it re-projects
        the memory this step, byte-identically.
        """
        if self.attention is not None:
            if memory is None:
                raise ValueError("attention decoder requires encoder memory")
            context, _ = self.attention(
                hidden, memory, memory_pad_mask, projected_keys=projected_keys
            )
            x = concat([embedded_token, context], axis=-1)
        else:
            x = embedded_token
        new_hidden = self.cell(x, hidden)
        return new_hidden, new_hidden

    def initial_state(self, batch_size: int) -> Tensor:
        return self.cell.initial_state(batch_size)


class AdditiveAttention(Module):
    """Bahdanau-style additive attention.

    Scores ``v^T tanh(W_q q + W_k k)`` between a decoder state and every
    encoder position; returns the context vector and the attention weights
    (also retained in :attr:`last_weights` for visualization).
    """

    def __init__(self, query_size: int, key_size: int, attn_size: int, rng=None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.q_proj = Linear(query_size, attn_size, bias=False, rng=rng)
        self.k_proj = Linear(key_size, attn_size, bias=False, rng=rng)
        self.v = Parameter(init.xavier_uniform((attn_size, 1), rng))
        self.last_weights: np.ndarray | None = None

    def project_keys(self, memory: Tensor) -> np.ndarray:
        """Project ``memory`` through the key head once, for reuse.

        The key projection depends only on the (fixed) encoder memory, so
        incremental decoders compute it once in ``start()`` and pass it
        back through :meth:`forward` every step — the additive-attention
        analogue of transformer cross-attention K/V caching.  Returns a
        plain ``(batch, seq, attn)`` array.
        """
        return self.k_proj(memory).data

    def forward(
        self,
        query: Tensor,
        memory: Tensor,
        memory_pad_mask: np.ndarray | None = None,
        projected_keys: np.ndarray | None = None,
    ) -> tuple[Tensor, Tensor]:
        """``query`` is ``(batch, q)``; ``memory`` is ``(batch, seq, k)``.

        ``projected_keys``, when given, must be
        :meth:`project_keys`'s output for this memory; the scores it
        yields are byte-identical to re-projecting in place.
        """
        q = self.q_proj(query)[:, None, :]  # (batch, 1, attn)
        if projected_keys is not None:
            k = Tensor(projected_keys)  # (batch, seq, attn), cached
        else:
            k = self.k_proj(memory)  # (batch, seq, attn)
        scores = ((q + k).tanh() @ self.v)[:, :, 0]  # (batch, seq)
        if memory_pad_mask is not None:
            scores = scores.masked_fill(memory_pad_mask, -1e9)
        weights = scores.softmax(axis=-1)
        self.last_weights = weights.data.copy()
        context = (weights[:, None, :] @ memory)[:, 0, :]
        return context, weights
