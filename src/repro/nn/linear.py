"""Fully connected layer."""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor
from repro.nn import init
from repro.nn.module import Module, Parameter


class Linear(Module):
    """Affine map ``y = x W + b`` over the last axis.

    Parameters
    ----------
    in_features, out_features:
        Input and output widths.
    bias:
        Whether to add a learned bias.
    rng:
        Generator used for Xavier initialization.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((in_features, out_features), rng))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out
