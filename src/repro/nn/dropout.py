"""Inverted dropout."""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor
from repro.nn.module import Module


class Dropout(Module):
    """Randomly zero activations during training, scaling survivors by 1/(1-p).

    The layer takes an explicit generator so training runs are reproducible;
    in ``eval()`` mode it is the identity.
    """

    def __init__(self, p: float = 0.1, rng: np.random.Generator | None = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng or np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = self.rng.random(x.shape) < keep
        return x.masked_fill(~mask, 0.0) * (1.0 / keep)
