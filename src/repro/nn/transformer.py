"""Transformer encoder/decoder stacks (pre-norm variant).

These are the building blocks for the paper's query-to-title (4 layers) and
title-to-query (1 layer) translation models.  We use pre-layer-norm residual
blocks, which train stably without a warmup-sensitive schedule at the small
scales of this reproduction; the original post-norm formulation differs only
in where LayerNorm sits.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor
from repro.nn.attention import MultiHeadAttention
from repro.nn.dropout import Dropout
from repro.nn.linear import Linear
from repro.nn.module import Module, ModuleList
from repro.nn.norm import LayerNorm


class FeedForward(Module):
    """Position-wise two-layer MLP with ReLU."""

    def __init__(
        self,
        d_model: int,
        d_ff: int,
        dropout: float = 0.0,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.fc1 = Linear(d_model, d_ff, rng=rng)
        self.fc2 = Linear(d_ff, d_model, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.fc2(self.dropout(self.fc1(x).relu()))


class TransformerEncoderLayer(Module):
    """Self-attention + feed-forward block with pre-norm residuals."""

    def __init__(
        self,
        d_model: int,
        num_heads: int,
        d_ff: int,
        dropout: float = 0.0,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.self_attn = MultiHeadAttention(d_model, num_heads, dropout=dropout, rng=rng)
        self.ff = FeedForward(d_model, d_ff, dropout=dropout, rng=rng)
        self.norm1 = LayerNorm(d_model)
        self.norm2 = LayerNorm(d_model)
        self.dropout = Dropout(dropout, rng=rng)

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        normed = self.norm1(x)
        x = x + self.dropout(self.self_attn(normed, normed, normed, mask=mask))
        x = x + self.dropout(self.ff(self.norm2(x)))
        return x

    def forward_and_cache(
        self, x: Tensor, mask: np.ndarray | None = None
    ) -> tuple[Tensor, tuple[np.ndarray, np.ndarray]]:
        """Full-sequence forward that also returns the self-attention K/V.

        Used to *prime* an incremental cache from an existing prefix (the
        causal LM's prompt): the output equals :meth:`forward` and the
        returned ``(k, v)`` pair seeds :meth:`step`'s cache.
        """
        normed = self.norm1(x)
        k, v = self.self_attn.project_kv(normed)
        x = x + self.dropout(self.self_attn.attend_cached(normed, k, v, mask=mask))
        x = x + self.dropout(self.ff(self.norm2(x)))
        return x, (k, v)

    def step(
        self,
        x: Tensor,
        cache: tuple[np.ndarray, np.ndarray],
        key_mask: np.ndarray | None = None,
    ) -> tuple[Tensor, tuple[np.ndarray, np.ndarray]]:
        """Advance one position with a self-attention K/V cache.

        ``x`` is the newest position only, ``(batch, 1, d_model)``; the
        cached keys/values cover every earlier position.  Because the
        newest query may attend to the whole (pad-masked) past plus
        itself, no causal mask is needed — ``key_mask`` only blocks pad
        key columns, broadcastable to ``(batch, 1, 1, cached+1)``.
        Returns the block output and the grown cache.
        """
        normed = self.norm1(x)
        k_new, v_new = self.self_attn.project_kv(normed)
        k = np.concatenate([cache[0], k_new], axis=2)
        v = np.concatenate([cache[1], v_new], axis=2)
        x = x + self.dropout(self.self_attn.attend_cached(normed, k, v, mask=key_mask))
        x = x + self.dropout(self.ff(self.norm2(x)))
        return x, (k, v)


class TransformerDecoderLayer(Module):
    """Masked self-attention + cross-attention + feed-forward block."""

    def __init__(
        self,
        d_model: int,
        num_heads: int,
        d_ff: int,
        dropout: float = 0.0,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.self_attn = MultiHeadAttention(d_model, num_heads, dropout=dropout, rng=rng)
        self.cross_attn = MultiHeadAttention(d_model, num_heads, dropout=dropout, rng=rng)
        self.ff = FeedForward(d_model, d_ff, dropout=dropout, rng=rng)
        self.norm1 = LayerNorm(d_model)
        self.norm2 = LayerNorm(d_model)
        self.norm3 = LayerNorm(d_model)
        self.dropout = Dropout(dropout, rng=rng)

    def forward(
        self,
        x: Tensor,
        memory: Tensor,
        self_mask: np.ndarray | None = None,
        memory_mask: np.ndarray | None = None,
    ) -> Tensor:
        normed = self.norm1(x)
        x = x + self.dropout(self.self_attn(normed, normed, normed, mask=self_mask))
        normed = self.norm2(x)
        x = x + self.dropout(self.cross_attn(normed, memory, memory, mask=memory_mask))
        x = x + self.dropout(self.ff(self.norm3(x)))
        return x

    def step(
        self,
        x: Tensor,
        cross_kv: tuple[np.ndarray, np.ndarray],
        self_cache: tuple[np.ndarray, np.ndarray],
        self_key_mask: np.ndarray | None = None,
        memory_mask: np.ndarray | None = None,
    ) -> tuple[Tensor, tuple[np.ndarray, np.ndarray]]:
        """Advance one decode position with K/V caches.

        ``x`` is the newest target position, ``(batch, 1, d_model)``.
        ``cross_kv`` holds this layer's cross-attention projections of the
        encoder memory (computed once per decode, see
        :meth:`TransformerDecoder.project_memory`); ``self_cache`` holds
        the self-attention K/V of every earlier target position.  The
        newest position may attend to the entire cached prefix plus
        itself, so causality is structural and ``self_key_mask`` only
        blocks pad key columns.  Returns the block output and the grown
        self-attention cache.
        """
        normed = self.norm1(x)
        k_new, v_new = self.self_attn.project_kv(normed)
        k = np.concatenate([self_cache[0], k_new], axis=2)
        v = np.concatenate([self_cache[1], v_new], axis=2)
        x = x + self.dropout(
            self.self_attn.attend_cached(normed, k, v, mask=self_key_mask)
        )
        normed = self.norm2(x)
        x = x + self.dropout(
            self.cross_attn.attend_cached(
                normed, cross_kv[0], cross_kv[1], mask=memory_mask
            )
        )
        x = x + self.dropout(self.ff(self.norm3(x)))
        return x, (k, v)


class TransformerEncoder(Module):
    """Stack of encoder layers with a final LayerNorm."""

    def __init__(
        self,
        num_layers: int,
        d_model: int,
        num_heads: int,
        d_ff: int,
        dropout: float = 0.0,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.layers = ModuleList(
            TransformerEncoderLayer(d_model, num_heads, d_ff, dropout=dropout, rng=rng)
            for _ in range(num_layers)
        )
        self.final_norm = LayerNorm(d_model)

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        for layer in self.layers:
            x = layer(x, mask=mask)
        return self.final_norm(x)

    def forward_and_cache(
        self, x: Tensor, mask: np.ndarray | None = None
    ) -> tuple[Tensor, list[tuple[np.ndarray, np.ndarray]]]:
        """Full-sequence forward that also returns per-layer K/V caches.

        Primes incremental decoding from an existing prefix (the causal
        LM's prompt): the output equals :meth:`forward`, and the caches
        seed :meth:`step`.
        """
        caches: list[tuple[np.ndarray, np.ndarray]] = []
        for layer in self.layers:
            x, kv = layer.forward_and_cache(x, mask=mask)
            caches.append(kv)
        return self.final_norm(x), caches

    def step(
        self,
        x: Tensor,
        caches: list[tuple[np.ndarray, np.ndarray]],
        key_mask: np.ndarray | None = None,
    ) -> tuple[Tensor, list[tuple[np.ndarray, np.ndarray]]]:
        """Advance one position through the stack with K/V caches.

        Used for causal (GPT-style) decoding, where this encoder stack
        runs under a causal mask: ``x`` is the newest position only and
        ``key_mask`` blocks pad key columns, ``(batch, 1, 1, cached+1)``.
        Returns the final-normed output and the grown per-layer caches.
        """
        new_caches: list[tuple[np.ndarray, np.ndarray]] = []
        for layer, cache in zip(self.layers, caches):
            x, grown = layer.step(x, cache, key_mask=key_mask)
            new_caches.append(grown)
        return self.final_norm(x), new_caches


class TransformerDecoder(Module):
    """Stack of decoder layers with a final LayerNorm.

    :attr:`cross_attention_weights` exposes the per-layer cross-attention
    maps from the last forward pass for visualization (paper Figure 6).
    """

    def __init__(
        self,
        num_layers: int,
        d_model: int,
        num_heads: int,
        d_ff: int,
        dropout: float = 0.0,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.layers = ModuleList(
            TransformerDecoderLayer(d_model, num_heads, d_ff, dropout=dropout, rng=rng)
            for _ in range(num_layers)
        )
        self.final_norm = LayerNorm(d_model)

    def forward(
        self,
        x: Tensor,
        memory: Tensor,
        self_mask: np.ndarray | None = None,
        memory_mask: np.ndarray | None = None,
    ) -> Tensor:
        for layer in self.layers:
            x = layer(x, memory, self_mask=self_mask, memory_mask=memory_mask)
        return self.final_norm(x)

    def project_memory(
        self, memory: Tensor
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Per-layer cross-attention K/V projections of encoder memory.

        Computed once per decode in a model's ``start()``; every
        subsequent :meth:`step` reuses them instead of re-projecting the
        (unchanging) memory.  One ``(k, v)`` pair per layer.
        """
        return [layer.cross_attn.project_kv(memory) for layer in self.layers]

    def step(
        self,
        x: Tensor,
        cross_kv: list[tuple[np.ndarray, np.ndarray]],
        self_caches: list[tuple[np.ndarray, np.ndarray]],
        self_key_mask: np.ndarray | None = None,
        memory_mask: np.ndarray | None = None,
    ) -> tuple[Tensor, list[tuple[np.ndarray, np.ndarray]]]:
        """Advance one decode position through the whole stack.

        ``x`` is the newest target position, ``(batch, 1, d_model)``;
        ``cross_kv``/``self_caches`` hold one entry per layer.  Returns
        the final-normed output for that position and the grown per-layer
        self-attention caches.  Per-step cost is O(prefix) — the
        incremental path that replaces re-decoding the full prefix.
        """
        new_caches: list[tuple[np.ndarray, np.ndarray]] = []
        for layer, layer_cross, layer_cache in zip(self.layers, cross_kv, self_caches):
            x, grown = layer.step(
                x,
                layer_cross,
                layer_cache,
                self_key_mask=self_key_mask,
                memory_mask=memory_mask,
            )
            new_caches.append(grown)
        return self.final_norm(x), new_caches

    @property
    def cross_attention_weights(self) -> list[np.ndarray]:
        return [
            layer.cross_attn.last_weights
            for layer in self.layers
            if layer.cross_attn.last_weights is not None
        ]
