"""Transformer encoder/decoder stacks (pre-norm variant).

These are the building blocks for the paper's query-to-title (4 layers) and
title-to-query (1 layer) translation models.  We use pre-layer-norm residual
blocks, which train stably without a warmup-sensitive schedule at the small
scales of this reproduction; the original post-norm formulation differs only
in where LayerNorm sits.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor
from repro.nn.attention import MultiHeadAttention
from repro.nn.dropout import Dropout
from repro.nn.linear import Linear
from repro.nn.module import Module, ModuleList
from repro.nn.norm import LayerNorm


class FeedForward(Module):
    """Position-wise two-layer MLP with ReLU."""

    def __init__(
        self,
        d_model: int,
        d_ff: int,
        dropout: float = 0.0,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.fc1 = Linear(d_model, d_ff, rng=rng)
        self.fc2 = Linear(d_ff, d_model, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.fc2(self.dropout(self.fc1(x).relu()))


class TransformerEncoderLayer(Module):
    """Self-attention + feed-forward block with pre-norm residuals."""

    def __init__(
        self,
        d_model: int,
        num_heads: int,
        d_ff: int,
        dropout: float = 0.0,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.self_attn = MultiHeadAttention(d_model, num_heads, dropout=dropout, rng=rng)
        self.ff = FeedForward(d_model, d_ff, dropout=dropout, rng=rng)
        self.norm1 = LayerNorm(d_model)
        self.norm2 = LayerNorm(d_model)
        self.dropout = Dropout(dropout, rng=rng)

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        normed = self.norm1(x)
        x = x + self.dropout(self.self_attn(normed, normed, normed, mask=mask))
        x = x + self.dropout(self.ff(self.norm2(x)))
        return x


class TransformerDecoderLayer(Module):
    """Masked self-attention + cross-attention + feed-forward block."""

    def __init__(
        self,
        d_model: int,
        num_heads: int,
        d_ff: int,
        dropout: float = 0.0,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.self_attn = MultiHeadAttention(d_model, num_heads, dropout=dropout, rng=rng)
        self.cross_attn = MultiHeadAttention(d_model, num_heads, dropout=dropout, rng=rng)
        self.ff = FeedForward(d_model, d_ff, dropout=dropout, rng=rng)
        self.norm1 = LayerNorm(d_model)
        self.norm2 = LayerNorm(d_model)
        self.norm3 = LayerNorm(d_model)
        self.dropout = Dropout(dropout, rng=rng)

    def forward(
        self,
        x: Tensor,
        memory: Tensor,
        self_mask: np.ndarray | None = None,
        memory_mask: np.ndarray | None = None,
    ) -> Tensor:
        normed = self.norm1(x)
        x = x + self.dropout(self.self_attn(normed, normed, normed, mask=self_mask))
        normed = self.norm2(x)
        x = x + self.dropout(self.cross_attn(normed, memory, memory, mask=memory_mask))
        x = x + self.dropout(self.ff(self.norm3(x)))
        return x


class TransformerEncoder(Module):
    """Stack of encoder layers with a final LayerNorm."""

    def __init__(
        self,
        num_layers: int,
        d_model: int,
        num_heads: int,
        d_ff: int,
        dropout: float = 0.0,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.layers = ModuleList(
            TransformerEncoderLayer(d_model, num_heads, d_ff, dropout=dropout, rng=rng)
            for _ in range(num_layers)
        )
        self.final_norm = LayerNorm(d_model)

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        for layer in self.layers:
            x = layer(x, mask=mask)
        return self.final_norm(x)


class TransformerDecoder(Module):
    """Stack of decoder layers with a final LayerNorm.

    :attr:`cross_attention_weights` exposes the per-layer cross-attention
    maps from the last forward pass for visualization (paper Figure 6).
    """

    def __init__(
        self,
        num_layers: int,
        d_model: int,
        num_heads: int,
        d_ff: int,
        dropout: float = 0.0,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.layers = ModuleList(
            TransformerDecoderLayer(d_model, num_heads, d_ff, dropout=dropout, rng=rng)
            for _ in range(num_layers)
        )
        self.final_norm = LayerNorm(d_model)

    def forward(
        self,
        x: Tensor,
        memory: Tensor,
        self_mask: np.ndarray | None = None,
        memory_mask: np.ndarray | None = None,
    ) -> Tensor:
        for layer in self.layers:
            x = layer(x, memory, self_mask=self_mask, memory_mask=memory_mask)
        return self.final_norm(x)

    @property
    def cross_attention_weights(self) -> list[np.ndarray]:
        return [
            layer.cross_attn.last_weights
            for layer in self.layers
            if layer.cross_attn.last_weights is not None
        ]
