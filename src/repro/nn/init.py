"""Weight initializers.

All initializers take an explicit ``numpy.random.Generator`` so model
construction is fully deterministic given a seed.
"""

from __future__ import annotations

import numpy as np


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialization for linear weights."""
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def normal(shape: tuple[int, ...], rng: np.random.Generator, std: float = 0.02) -> np.ndarray:
    """Gaussian initialization, the transformer-embedding default."""
    return rng.normal(0.0, std, size=shape)


def orthogonal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Orthogonal initialization, useful for recurrent weight matrices."""
    rows, cols = shape
    a = rng.normal(0.0, 1.0, size=(max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(a)
    q = q * np.sign(np.diag(r))
    if rows < cols:
        q = q.T
    return q[:rows, :cols]


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) < 2:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    return shape[0] * receptive, shape[1] * receptive
