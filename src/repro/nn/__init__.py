"""Neural-network modules built on :mod:`repro.autograd`.

Provides everything the paper's translation models need: embeddings with
positional encodings, multi-head attention, transformer encoder/decoder
stacks, vanilla RNN and GRU recurrent layers, layer normalization, dropout,
and a padding-aware cross-entropy loss.
"""

from repro.nn.module import Module, Parameter, ModuleList
from repro.nn.linear import Linear
from repro.nn.embedding import Embedding
from repro.nn.norm import LayerNorm
from repro.nn.dropout import Dropout
from repro.nn.positional import PositionalEncoding
from repro.nn.attention import MultiHeadAttention
from repro.nn.transformer import (
    FeedForward,
    TransformerEncoderLayer,
    TransformerDecoderLayer,
    TransformerEncoder,
    TransformerDecoder,
)
from repro.nn.rnn import (
    RNNCell,
    GRUCell,
    RecurrentEncoder,
    RecurrentDecoderCell,
    AdditiveAttention,
)
from repro.nn.loss import cross_entropy, sequence_cross_entropy

__all__ = [
    "Module",
    "Parameter",
    "ModuleList",
    "Linear",
    "Embedding",
    "LayerNorm",
    "Dropout",
    "PositionalEncoding",
    "MultiHeadAttention",
    "FeedForward",
    "TransformerEncoderLayer",
    "TransformerDecoderLayer",
    "TransformerEncoder",
    "TransformerDecoder",
    "RNNCell",
    "GRUCell",
    "RecurrentEncoder",
    "RecurrentDecoderCell",
    "AdditiveAttention",
    "cross_entropy",
    "sequence_cross_entropy",
]
