"""Sinusoidal positional encoding from "Attention Is All You Need"."""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor
from repro.nn.module import Module


def sinusoidal_table(max_len: int, d_model: int) -> np.ndarray:
    """Build the (max_len, d_model) sinusoidal position table."""
    position = np.arange(max_len)[:, None].astype(np.float64)
    div = np.exp(np.arange(0, d_model, 2) * (-np.log(10000.0) / d_model))
    table = np.zeros((max_len, d_model))
    table[:, 0::2] = np.sin(position * div)
    table[:, 1::2] = np.cos(position * div[: table[:, 1::2].shape[1]])
    return table


class PositionalEncoding(Module):
    """Add fixed sinusoidal position information to token embeddings."""

    def __init__(self, d_model: int, max_len: int = 512):
        super().__init__()
        self.d_model = d_model
        self.max_len = max_len
        self.table = sinusoidal_table(max_len, d_model)

    def forward(self, x: Tensor, offset: int = 0) -> Tensor:
        """``x`` has shape (batch, seq, d_model); ``offset`` supports
        incremental decoding where positions continue from a cache."""
        seq_len = x.shape[1]
        if offset + seq_len > self.max_len:
            raise ValueError(
                f"sequence length {offset + seq_len} exceeds max_len {self.max_len}"
            )
        return x + Tensor(self.table[offset : offset + seq_len])
