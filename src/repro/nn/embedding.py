"""Token embedding table."""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor
from repro.nn import init
from repro.nn.module import Module, Parameter


class Embedding(Module):
    """Lookup table mapping integer token ids to dense vectors.

    Parameters
    ----------
    num_embeddings:
        Vocabulary size.
    embedding_dim:
        Vector width.
    padding_idx:
        Optional id whose vector is pinned to zero (and receives no
        gradient), the convention for the PAD token.
    """

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        padding_idx: int | None = None,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.padding_idx = padding_idx
        table = init.normal((num_embeddings, embedding_dim), rng, std=embedding_dim**-0.5)
        if padding_idx is not None:
            table[padding_idx] = 0.0
        self.weight = Parameter(table)

    def forward(self, token_ids: np.ndarray) -> Tensor:
        ids = np.asarray(token_ids)
        if ids.size and (ids.min() < 0 or ids.max() >= self.num_embeddings):
            raise IndexError(
                f"token id out of range [0, {self.num_embeddings}): "
                f"min={ids.min()} max={ids.max()}"
            )
        out = self.weight.take_rows(ids)
        if self.padding_idx is not None:
            # Zero out padded positions so they contribute nothing downstream;
            # the masked_fill also blocks gradient flow back into the table row.
            pad_mask = (ids == self.padding_idx)[..., None]
            out = out.masked_fill(pad_mask, 0.0)
        return out
