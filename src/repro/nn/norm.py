"""Layer normalization."""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor
from repro.nn.module import Module, Parameter


class LayerNorm(Module):
    """Normalize over the last axis with learned scale and shift."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5):
        super().__init__()
        self.eps = eps
        self.gamma = Parameter(np.ones(normalized_shape))
        self.beta = Parameter(np.zeros(normalized_shape))

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered / (var + self.eps).sqrt()
        return normed * self.gamma + self.beta
