"""Reverse-mode automatic differentiation on NumPy arrays.

This package is the tensor substrate for the whole reproduction: the paper
trains transformer / GRU / RNN translation models, and no deep-learning
framework is available offline, so we implement a small but complete
autograd engine here.

The public surface is the :class:`Tensor` class plus a handful of
free functions (``concat``, ``stack``, ``where``, ``logsumexp``, ...), and
the :func:`no_grad` context manager used during decoding/inference.
"""

from repro.autograd.tensor import (
    Tensor,
    concat,
    stack,
    where,
    maximum,
    minimum,
    logsumexp,
    no_grad,
    is_grad_enabled,
    tensor,
    zeros,
    ones,
    arange,
)

__all__ = [
    "Tensor",
    "concat",
    "stack",
    "where",
    "maximum",
    "minimum",
    "logsumexp",
    "no_grad",
    "is_grad_enabled",
    "tensor",
    "zeros",
    "ones",
    "arange",
]
