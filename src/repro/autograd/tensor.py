"""A reverse-mode autograd :class:`Tensor` built on NumPy.

The engine follows the classic define-by-run design: every differentiable
operation records its parents and a local backward closure on the output
tensor; :meth:`Tensor.backward` then walks the graph in reverse topological
order accumulating gradients.

Design notes
------------
* Gradients are plain ``numpy.ndarray`` objects stored on ``Tensor.grad``.
* Broadcasting is fully supported: :func:`_unbroadcast` sums a gradient back
  down to the shape of the input it belongs to.
* A module-level switch (:func:`no_grad`) disables graph construction during
  inference, which matters a lot for decoding speed.
* Only float64/float32 data participates in differentiation; integer tensors
  (token ids) are carried as constants.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Sequence

import numpy as np

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager that disables autograd graph construction."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Return whether operations currently record gradient information."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing NumPy broadcasting.

    Broadcasting can (a) prepend new axes and (b) stretch size-1 axes.  The
    gradient of a broadcast input is the sum of the output gradient over all
    broadcast axes.
    """
    if grad.shape == shape:
        return grad
    # Remove prepended axes.
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    # Sum over stretched size-1 axes.
    stretched = tuple(
        axis for axis, size in enumerate(shape) if size == 1 and grad.shape[axis] != 1
    )
    if stretched:
        grad = grad.sum(axis=stretched, keepdims=True)
    return grad.reshape(shape)


def _as_array(value) -> np.ndarray:
    if isinstance(value, np.ndarray):
        return value
    return np.asarray(value, dtype=np.float64)


class Tensor:
    """An n-dimensional array with reverse-mode automatic differentiation.

    Parameters
    ----------
    data:
        Array-like payload.  Converted to ``numpy.ndarray``.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = (
        "data",
        "grad",
        "requires_grad",
        "_backward",
        "_parents",
        "name",
        "_accumulate_to",
    )

    def __init__(self, data, requires_grad: bool = False, name: str | None = None):
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: np.ndarray | None = None
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # Basic introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag})"

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Graph plumbing
    # ------------------------------------------------------------------
    def _make_child(
        self,
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create an op output, wiring the backward closure if grad is on."""
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Gradient of the final objective with respect to this tensor.
            Defaults to ones (appropriate when this tensor is a scalar loss).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            grad = np.ones_like(self.data, dtype=np.float64)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)

        # Topological order via iterative DFS (recursion would overflow on
        # long recurrent chains).
        order: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in seen:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node._backward is None:
                # Leaf: accumulate into .grad
                if node.grad is None:
                    node.grad = node_grad.copy()
                else:
                    node.grad = node.grad + node_grad
                continue
            # Interior node: run local backward, which calls _accumulate on
            # parents through the `grads` dict captured here.
            node._accumulate_to = grads  # type: ignore[attr-defined]
            node._backward(node_grad)
            del node._accumulate_to  # type: ignore[attr-defined]
            # Interior nodes may also be retained by callers wanting .grad.
            if node.grad is not None:
                node.grad = node.grad + node_grad

    def _acc(self, parent: "Tensor", grad: np.ndarray) -> None:
        """Accumulate ``grad`` for ``parent`` during an active backward pass."""
        if not parent.requires_grad:
            return
        grads: dict[int, np.ndarray] = self._accumulate_to  # type: ignore[attr-defined]
        key = id(parent)
        if key in grads:
            grads[key] = grads[key] + grad
        else:
            grads[key] = grad
        if parent._backward is None and parent._parents == ():
            # Leaf tensors get their .grad written when popped in backward();
            # nothing extra to do here.
            pass

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            out._acc(self, _unbroadcast(grad, self.shape))
            out._acc(other, _unbroadcast(grad, other.shape))

        out = self._make_child(out_data, (self, other), backward)
        return out

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            out._acc(self, -grad)

        out = self._make_child(-self.data, (self,), backward)
        return out

    def __sub__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data - other.data

        def backward(grad: np.ndarray) -> None:
            out._acc(self, _unbroadcast(grad, self.shape))
            out._acc(other, _unbroadcast(-grad, other.shape))

        out = self._make_child(out_data, (self, other), backward)
        return out

    def __rsub__(self, other) -> "Tensor":
        return Tensor(other) - self

    def __mul__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            out._acc(self, _unbroadcast(grad * other.data, self.shape))
            out._acc(other, _unbroadcast(grad * self.data, other.shape))

        out = self._make_child(out_data, (self, other), backward)
        return out

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            out._acc(self, _unbroadcast(grad / other.data, self.shape))
            out._acc(
                other,
                _unbroadcast(-grad * self.data / (other.data**2), other.shape),
            )

        out = self._make_child(out_data, (self, other), backward)
        return out

    def __rtruediv__(self, other) -> "Tensor":
        return Tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log")
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            out._acc(self, grad * exponent * self.data ** (exponent - 1))

        out = self._make_child(out_data, (self,), backward)
        return out

    def __matmul__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            a, b = self.data, other.data
            if a.ndim == 1 and b.ndim == 1:
                out._acc(self, grad * b)
                out._acc(other, grad * a)
                return
            if a.ndim == 1:
                a2 = a.reshape(1, -1)
                grad2 = np.expand_dims(grad, axis=-2)
                ga = (grad2 @ np.swapaxes(b, -1, -2)).reshape(a.shape)
                gb = _unbroadcast(np.swapaxes(a2, -1, -2) @ grad2, b.shape)
                out._acc(self, ga)
                out._acc(other, gb)
                return
            if b.ndim == 1:
                b2 = b.reshape(-1, 1)
                grad2 = np.expand_dims(grad, axis=-1)
                ga = _unbroadcast(grad2 @ np.swapaxes(b2, -1, -2), a.shape)
                gb = _unbroadcast(np.swapaxes(a, -1, -2) @ grad2, b2.shape).reshape(b.shape)
                out._acc(self, ga)
                out._acc(other, gb)
                return
            ga = _unbroadcast(grad @ np.swapaxes(b, -1, -2), a.shape)
            gb = _unbroadcast(np.swapaxes(a, -1, -2) @ grad, b.shape)
            out._acc(self, ga)
            out._acc(other, gb)

        out = self._make_child(out_data, (self, other), backward)
        return out

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            out._acc(self, grad * out_data)

        out = self._make_child(out_data, (self,), backward)
        return out

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            out._acc(self, grad / self.data)

        out = self._make_child(out_data, (self,), backward)
        return out

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            out._acc(self, grad * 0.5 / out_data)

        out = self._make_child(out_data, (self,), backward)
        return out

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            out._acc(self, grad * (1.0 - out_data**2))

        out = self._make_child(out_data, (self,), backward)
        return out

    def sigmoid(self) -> "Tensor":
        # Numerically stable piecewise formulation.
        x = self.data
        out_data = np.where(x >= 0, 1.0 / (1.0 + np.exp(-x)), np.exp(x) / (1.0 + np.exp(x)))

        def backward(grad: np.ndarray) -> None:
            out._acc(self, grad * out_data * (1.0 - out_data))

        out = self._make_child(out_data, (self,), backward)
        return out

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            out._acc(self, grad * mask)

        out = self._make_child(out_data, (self,), backward)
        return out

    def gelu(self) -> "Tensor":
        """Gaussian error linear unit (tanh approximation)."""
        x = self.data
        c = np.sqrt(2.0 / np.pi)
        inner = c * (x + 0.044715 * x**3)
        t = np.tanh(inner)
        out_data = 0.5 * x * (1.0 + t)

        def backward(grad: np.ndarray) -> None:
            dinner = c * (1.0 + 3 * 0.044715 * x**2)
            local = 0.5 * (1.0 + t) + 0.5 * x * (1.0 - t**2) * dinner
            out._acc(self, grad * local)

        out = self._make_child(out_data, (self,), backward)
        return out

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            out._acc(self, np.broadcast_to(g, self.shape).copy())

        out = self._make_child(out_data, (self,), backward)
        return out

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.mean(axis=axis, keepdims=keepdims)
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.shape[a] for a in axes]))

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            out._acc(self, np.broadcast_to(g, self.shape) / count)

        out = self._make_child(out_data, (self,), backward)
        return out

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            od = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
                od = np.expand_dims(od, axis=axis)
            mask = (self.data == od).astype(self.data.dtype)
            # Split ties evenly so the gradient stays correct-in-expectation.
            mask = mask / mask.sum(axis=axis, keepdims=True) if axis is not None else mask / mask.sum()
            out._acc(self, mask * g)

        out = self._make_child(out_data, (self,), backward)
        return out

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            out._acc(self, grad.reshape(self.shape))

        out = self._make_child(out_data, (self,), backward)
        return out

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        out_data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            out._acc(self, grad.transpose(inverse))

        out = self._make_child(out_data, (self,), backward)
        return out

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[axis1], axes[axis2] = axes[axis2], axes[axis1]
        return self.transpose(*axes)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data, dtype=np.float64)
            np.add.at(full, index, grad)
            out._acc(self, full)

        out = self._make_child(out_data, (self,), backward)
        return out

    def take_rows(self, indices: np.ndarray) -> "Tensor":
        """Gather rows (axis 0) — the embedding-lookup primitive.

        ``indices`` may have any shape; the result has shape
        ``indices.shape + self.shape[1:]``.
        """
        idx = np.asarray(indices)
        out_data = self.data[idx]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data, dtype=np.float64)
            np.add.at(full, idx.reshape(-1), grad.reshape(-1, *self.shape[1:]))
            out._acc(self, full)

        out = self._make_child(out_data, (self,), backward)
        return out

    def masked_fill(self, mask: np.ndarray, value: float) -> "Tensor":
        """Return a tensor with positions where ``mask`` is True set to ``value``."""
        mask = np.asarray(mask, dtype=bool)
        out_data = np.where(mask, value, self.data)

        def backward(grad: np.ndarray) -> None:
            out._acc(self, _unbroadcast(np.where(mask, 0.0, grad), self.shape))

        out = self._make_child(out_data, (self,), backward)
        return out

    # ------------------------------------------------------------------
    # Softmax family (fused for numerical stability)
    # ------------------------------------------------------------------
    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        out_data = exp / exp.sum(axis=axis, keepdims=True)

        def backward(grad: np.ndarray) -> None:
            dot = (grad * out_data).sum(axis=axis, keepdims=True)
            out._acc(self, out_data * (grad - dot))

        out = self._make_child(out_data, (self,), backward)
        return out

    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        out_data = shifted - log_z
        softmax = np.exp(out_data)

        def backward(grad: np.ndarray) -> None:
            out._acc(self, grad - softmax * grad.sum(axis=axis, keepdims=True))

        out = self._make_child(out_data, (self,), backward)
        return out


# ----------------------------------------------------------------------
# Free functions
# ----------------------------------------------------------------------
def tensor(data, requires_grad: bool = False) -> Tensor:
    """Convenience constructor mirroring ``torch.tensor``."""
    return Tensor(data, requires_grad=requires_grad)


def zeros(shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def ones(shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape), requires_grad=requires_grad)


def arange(*args, **kwargs) -> Tensor:
    return Tensor(np.arange(*args, **kwargs).astype(np.float64))


def concat(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = list(tensors)
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            slicer = [slice(None)] * grad.ndim
            slicer[axis] = slice(start, stop)
            out._acc(t, grad[tuple(slicer)])

    requires = _GRAD_ENABLED and any(t.requires_grad for t in tensors)
    out = Tensor(out_data, requires_grad=requires)
    if requires:
        out._parents = tuple(tensors)
        out._backward = backward
    return out


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient support."""
    tensors = list(tensors)
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        for i, t in enumerate(tensors):
            out._acc(t, np.take(grad, i, axis=axis))

    requires = _GRAD_ENABLED and any(t.requires_grad for t in tensors)
    out = Tensor(out_data, requires_grad=requires)
    if requires:
        out._parents = tuple(tensors)
        out._backward = backward
    return out


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select with gradient flow into both branches."""
    condition = np.asarray(condition, dtype=bool)
    a = a if isinstance(a, Tensor) else Tensor(a)
    b = b if isinstance(b, Tensor) else Tensor(b)
    out_data = np.where(condition, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        out._acc(a, _unbroadcast(np.where(condition, grad, 0.0), a.shape))
        out._acc(b, _unbroadcast(np.where(condition, 0.0, grad), b.shape))

    requires = _GRAD_ENABLED and (a.requires_grad or b.requires_grad)
    out = Tensor(out_data, requires_grad=requires)
    if requires:
        out._parents = (a, b)
        out._backward = backward
    return out


def maximum(a: Tensor, b: Tensor) -> Tensor:
    a = a if isinstance(a, Tensor) else Tensor(a)
    b = b if isinstance(b, Tensor) else Tensor(b)
    return where(a.data >= b.data, a, b)


def minimum(a: Tensor, b: Tensor) -> Tensor:
    a = a if isinstance(a, Tensor) else Tensor(a)
    b = b if isinstance(b, Tensor) else Tensor(b)
    return where(a.data <= b.data, a, b)


def logsumexp(x: Tensor, axis: int = -1, keepdims: bool = False) -> Tensor:
    """Numerically stable log-sum-exp with gradient support.

    Used throughout the cyclic-consistency likelihood (Eq. 3/5 of the paper),
    where sums of products of probabilities are evaluated in log space.
    """
    shifted_max = x.data.max(axis=axis, keepdims=True)
    shifted = x - Tensor(shifted_max)
    summed = shifted.exp().sum(axis=axis, keepdims=True).log() + Tensor(shifted_max)
    if keepdims:
        return summed
    return summed.reshape(tuple(s for i, s in enumerate(summed.shape) if i != (axis % x.ndim)))
