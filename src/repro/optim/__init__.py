"""Optimizers and learning-rate schedules.

The paper trains with Adam (lr=0.05, β1=0.9, β2=0.999, ε=1e-8) under the
Noam schedule from "Attention Is All You Need"; both are implemented here
along with SGD and global-norm gradient clipping.
"""

from repro.optim.optimizers import SGD, Adam, Optimizer, clip_grad_norm
from repro.optim.schedules import ConstantSchedule, NoamSchedule

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "clip_grad_norm",
    "NoamSchedule",
    "ConstantSchedule",
]
