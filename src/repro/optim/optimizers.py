"""Gradient-descent optimizers."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base optimizer over a fixed list of parameters."""

    def __init__(self, params: list[Parameter], lr: float):
        if not params:
            raise ValueError("optimizer received an empty parameter list")
        self.params = list(params)
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params: list[Parameter], lr: float = 0.01, momentum: float = 0.0):
        super().__init__(params, lr)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            if self.momentum:
                v *= self.momentum
                v += p.grad
                p.data -= self.lr * v
            else:
                p.data -= self.lr * p.grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2014) with bias correction.

    Defaults follow the paper's setup: β1=0.9, β2=0.999, ε=1e-8.  The
    effective learning rate can be driven externally (e.g. by
    :class:`repro.optim.NoamSchedule`) by assigning :attr:`lr` before each
    :meth:`step`.
    """

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
    ):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self._step_count += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1**self._step_count
        bias2 = 1.0 - b2**self._step_count
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            m *= b1
            m += (1.0 - b1) * g
            v *= b2
            v += (1.0 - b2) * (g * g)
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


def clip_grad_norm(params: list[Parameter], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm.  Essential for the recurrent models,
    whose unrolled graphs are prone to exploding gradients.
    """
    total = 0.0
    for p in params:
        if p.grad is not None:
            total += float((p.grad**2).sum())
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0.0:
        scale = max_norm / norm
        for p in params:
            if p.grad is not None:
                p.grad *= scale
    return norm
