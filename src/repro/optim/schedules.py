"""Learning-rate schedules."""

from __future__ import annotations


class ConstantSchedule:
    """A fixed learning rate."""

    def __init__(self, lr: float):
        self.lr = lr

    def rate(self, step: int) -> float:
        return self.lr


class NoamSchedule:
    """The warmup-then-decay schedule of Vaswani et al. (2017).

    ``rate(step) = factor * d_model^-0.5 * min(step^-0.5, step * warmup^-1.5)``

    The paper adopts this schedule for its Adam optimizer.
    """

    def __init__(self, d_model: int, warmup_steps: int = 4000, factor: float = 1.0):
        if warmup_steps <= 0:
            raise ValueError("warmup_steps must be positive")
        self.d_model = d_model
        self.warmup_steps = warmup_steps
        self.factor = factor

    def rate(self, step: int) -> float:
        step = max(step, 1)
        return (
            self.factor
            * self.d_model**-0.5
            * min(step**-0.5, step * self.warmup_steps**-1.5)
        )
