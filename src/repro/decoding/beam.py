"""Beam search decoding.

The decode batch holds exactly the *live* beams: a single row before the
first expansion, up to ``beam_size`` rows afterwards, narrowing again as
hypotheses finish.  The seed implementation instead padded every beam back
to a fixed width with ``-inf``-scored duplicate rows and kept stepping
them; since non-finite candidates are always filtered out of the expansion,
dropping those rows changes nothing but the model work.
"""

from __future__ import annotations

import numpy as np

from repro.decoding.hypothesis import Hypothesis
from repro.decoding.logspace import log_softmax_np
from repro.models.base import Seq2SeqModel, pad_sources


def beam_search(
    model: Seq2SeqModel,
    src: np.ndarray,
    beam_size: int = 3,
    max_len: int = 32,
    length_penalty: float = 0.0,
) -> list[Hypothesis]:
    """Standard beam search over one source sequence.

    Keeps the ``beam_size`` most likely prefixes each step.  The paper
    observes its outputs "lack diversity" — candidates often differ by a
    single token — which motivates the top-n sampling decoder; tests assert
    that observation on our models too.

    Parameters
    ----------
    length_penalty:
        Hypotheses are ranked by ``log_prob / (len + 1)**length_penalty``;
        0 ranks by raw log probability.
    """
    src = np.atleast_2d(np.asarray(src))
    if src.shape[0] != 1:
        raise ValueError("beam_search expects a single source sequence")
    if beam_size <= 0:
        raise ValueError("beam_size must be positive")

    state = model.start(src)
    beams: list[tuple[list[int], float]] = [([], 0.0)]
    last = np.array([model.sos_id], dtype=np.int64)
    finished: list[Hypothesis] = []

    for _ in range(max_len):
        logits, state = model.step(state, last)
        log_probs = log_softmax_np(logits)  # (live beams, vocab)
        vocab = log_probs.shape[1]
        scores = np.array([s for _, s in beams])[:, None] + log_probs
        flat = scores.reshape(-1)
        top = np.argpartition(-flat, min(beam_size, flat.size) - 1)[:beam_size]
        top = top[np.argsort(-flat[top])]

        new_beams: list[tuple[list[int], float]] = []
        reorder: list[int] = []
        next_tokens: list[int] = []
        for flat_idx in top:
            beam_idx, token = divmod(int(flat_idx), vocab)
            score = float(flat[flat_idx])
            if not np.isfinite(score):
                continue
            prefix = beams[beam_idx][0]
            if token == model.eos_id:
                finished.append(
                    Hypothesis(tokens=tuple(prefix), log_prob=score, finished=True)
                )
                continue
            new_beams.append((prefix + [token], score))
            reorder.append(beam_idx)
            next_tokens.append(token)

        if not new_beams:
            break
        beams = new_beams
        state = state.reorder(np.array(reorder, dtype=np.int64), model)
        last = np.array(next_tokens, dtype=np.int64)
        if len(finished) >= beam_size:
            break

    # Unfinished beams still count as (lower-quality) candidates.
    for prefix, score in beams:
        if np.isfinite(score):
            finished.append(Hypothesis(tokens=tuple(prefix), log_prob=score, finished=False))

    def rank(h: Hypothesis) -> float:
        return h.log_prob / (len(h.tokens) + 1) ** length_penalty

    unique: dict[tuple[int, ...], Hypothesis] = {}
    for hyp in finished:
        kept = unique.get(hyp.tokens)
        if kept is None or hyp.log_prob > kept.log_prob:
            unique[hyp.tokens] = hyp
    ranked = sorted(unique.values(), key=rank, reverse=True)
    return ranked[:beam_size]


def beam_search_batch(
    model: Seq2SeqModel,
    src: np.ndarray | list[list[int]],
    beam_size: int = 3,
    max_len: int = 32,
    length_penalty: float = 0.0,
) -> list[list[Hypothesis]]:
    """Beam search over a batch of sources in one stacked decode.

    Every source keeps its own beams; the flat decode batch concatenates
    each live source's live beams source-major, so a single
    ``state.reorder`` call applies every source's beam shuffle (and any
    width change) at once.  Sources that exhaust their beams or collect
    enough finished hypotheses are compacted out of the batch entirely —
    no rows are stepped for rectangularity.  Returns one ranked hypothesis
    list per source, in input order.
    """
    if isinstance(src, list):
        src = pad_sources(src, model.pad_id)
    src = np.atleast_2d(np.asarray(src))
    if beam_size <= 0:
        raise ValueError("beam_size must be positive")
    batch = src.shape[0]

    state = model.start(src)
    beams: list[list[tuple[list[int], float]]] = [[([], 0.0)] for _ in range(batch)]
    # `widths[s]` is source s's current row count in the decode batch
    # (0 once the source retires); rows stay source-major.
    widths = [1] * batch
    last = np.full(batch, model.sos_id, dtype=np.int64)
    finished: list[list[Hypothesis]] = [[] for _ in range(batch)]

    for _ in range(max_len):
        logits, state = model.step(state, last)
        log_probs = log_softmax_np(logits)  # (sum of live widths, vocab)
        vocab = log_probs.shape[1]
        reorder: list[int] = []
        next_tokens: list[int] = []
        new_widths = [0] * batch
        offset = 0

        for s in range(batch):
            width = widths[s]
            if width == 0:
                continue
            block = log_probs[offset : offset + width]
            scores = np.array([score for _, score in beams[s]])[:, None] + block
            flat = scores.reshape(-1)
            top = np.argpartition(-flat, min(beam_size, flat.size) - 1)[:beam_size]
            top = top[np.argsort(-flat[top])]

            new_beams: list[tuple[list[int], float]] = []
            local_reorder: list[int] = []
            local_tokens: list[int] = []
            for flat_idx in top:
                beam_idx, token = divmod(int(flat_idx), vocab)
                score = float(flat[flat_idx])
                if not np.isfinite(score):
                    continue
                prefix = beams[s][beam_idx][0]
                if token == model.eos_id:
                    finished[s].append(
                        Hypothesis(tokens=tuple(prefix), log_prob=score, finished=True)
                    )
                    continue
                new_beams.append((prefix + [token], score))
                local_reorder.append(beam_idx)
                local_tokens.append(token)

            if new_beams:
                beams[s] = new_beams
            if new_beams and len(finished[s]) < beam_size:
                new_widths[s] = len(new_beams)
                reorder.extend(offset + r for r in local_reorder)
                next_tokens.extend(local_tokens)
            offset += width

        if not reorder:
            break
        state = state.reorder(np.array(reorder, dtype=np.int64), model)
        last = np.array(next_tokens, dtype=np.int64)
        widths = new_widths

    def rank(h: Hypothesis) -> float:
        return h.log_prob / (len(h.tokens) + 1) ** length_penalty

    results: list[list[Hypothesis]] = []
    for s in range(batch):
        pool = list(finished[s])
        for prefix, score in beams[s]:
            if np.isfinite(score):
                pool.append(
                    Hypothesis(tokens=tuple(prefix), log_prob=score, finished=False)
                )
        unique: dict[tuple[int, ...], Hypothesis] = {}
        for hyp in pool:
            kept = unique.get(hyp.tokens)
            if kept is None or hyp.log_prob > kept.log_prob:
                unique[hyp.tokens] = hyp
        results.append(sorted(unique.values(), key=rank, reverse=True)[:beam_size])
    return results
