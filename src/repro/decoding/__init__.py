"""Sequence decoding algorithms.

The paper finds greedy search (one output) and beam search (near-duplicate
outputs) unsuitable for generating *diverse* synthetic titles, and proposes
the **top-n sampling decoder** (Figure 4): the first step forces the k most
likely *unique* tokens so all candidates begin differently, and subsequent
steps sample from the per-step top-n token distribution.

Exported symbols:

* :class:`Hypothesis` — one decoded sequence: token ids (no SOS/EOS), the
  summed log probability, and whether EOS was reached.
* :func:`greedy_decode` / :func:`greedy_decode_batch` — argmax decoding for
  one source / a stacked batch of sources; the fastest baseline, used in
  the latency experiments (Table V).
* :func:`beam_search` / :func:`beam_search_batch` — standard beam search;
  the paper's low-diversity comparator (Section III-F).
* :func:`top_n_sampling` / :func:`top_n_sampling_batch` — the paper's
  decoder (Figure 4); the batch variant stacks all sources' candidates
  into one flat decode and is the model-tier hot path of
  ``ServingPipeline.serve_batch``.
* :func:`diverse_beam_search` — diverse beam search (Vijayakumar et al.,
  2016), named as future work in Section V.
* :func:`sample_top_n_pools` — the vectorized top-n pool sampler the
  sampling decoders share (one uniform deviate per legal row, in row
  order — the per-row ``rng.choice`` contract, batched).
* :func:`log_softmax_np` / :func:`logsumexp_np` — numerically stable
  log-space primitives every decoder and the rewrite scorer share.

The ``*_batch`` variants accept either a padded (batch, seq) array or a
list of variable-length id lists, and cost the same number of model calls
as a single source.  All decoders drop finished rows from the decode
batch as they go (active-row compaction); ``repro.decoding.reference``
keeps frozen pre-optimization implementations as equivalence oracles and
benchmark baselines.  ``docs/DECODING.md`` documents the cache layout,
compaction semantics and determinism contract.
"""

from repro.decoding.hypothesis import Hypothesis
from repro.decoding.greedy import greedy_decode, greedy_decode_batch
from repro.decoding.beam import beam_search, beam_search_batch
from repro.decoding.topn import sample_top_n_pools, top_n_sampling, top_n_sampling_batch
from repro.decoding.diverse_beam import diverse_beam_search
from repro.decoding.logspace import log_softmax_np, logsumexp_np

__all__ = [
    "Hypothesis",
    "greedy_decode",
    "greedy_decode_batch",
    "beam_search",
    "beam_search_batch",
    "top_n_sampling",
    "top_n_sampling_batch",
    "sample_top_n_pools",
    "diverse_beam_search",
    "log_softmax_np",
    "logsumexp_np",
]
