"""Sequence decoding algorithms.

The paper finds greedy search (one output) and beam search (near-duplicate
outputs) unsuitable for generating *diverse* synthetic titles, and proposes
the **top-n sampling decoder** (Figure 4): the first step forces the k most
likely *unique* tokens so all candidates begin differently, and subsequent
steps sample from the per-step top-n token distribution.  Diverse beam
search (Vijayakumar et al., 2016) — named as future work in Section V — is
implemented as well.
"""

from repro.decoding.hypothesis import Hypothesis
from repro.decoding.greedy import greedy_decode
from repro.decoding.beam import beam_search
from repro.decoding.topn import top_n_sampling
from repro.decoding.diverse_beam import diverse_beam_search
from repro.decoding.logspace import log_softmax_np, logsumexp_np

__all__ = [
    "Hypothesis",
    "greedy_decode",
    "beam_search",
    "top_n_sampling",
    "diverse_beam_search",
    "log_softmax_np",
    "logsumexp_np",
]
