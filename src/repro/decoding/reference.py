"""Frozen pre-optimization decoder implementations (the seed decode path).

These are byte-for-byte behavioural snapshots of the decoders as they
stood *before* the incremental-decoding rework: full-prefix model states
(``start(..., use_cache=False)``), no active-row compaction (finished
rows keep being stepped for batch rectangularity), and per-row python
sampling loops.  They exist for two jobs:

* **equivalence oracle** — ``tests/test_decode_equivalence.py`` pins the
  optimized decoders' hypotheses byte-identical to these;
* **honest baseline** — the decode-throughput benchmark times these, not
  a hobbled copy of the new code, so the reported speedup is real.

They intentionally retain the seed path's known defects (the empty-pool
NaN crash, zombie-row stepping); do not "fix" them here — the regression
tests rely on the contrast.
"""

from __future__ import annotations

import numpy as np

from repro.decoding.hypothesis import Hypothesis
from repro.decoding.logspace import log_softmax_np
from repro.models.base import DecodeState, Seq2SeqModel, pad_sources


def start_uncached(model: Seq2SeqModel, src: np.ndarray) -> DecodeState:
    """Build a decode state on the model's uncached (seed) path.

    Models grown a ``use_cache`` flag take it explicitly; anything else
    (e.g. a test double predating the flag) falls back to plain
    ``start(src)``.
    """
    try:
        return model.start(src, use_cache=False)
    except TypeError:
        return model.start(src)


def greedy_decode_batch_reference(
    model: Seq2SeqModel,
    src: np.ndarray | list[list[int]],
    max_len: int = 32,
) -> list[Hypothesis]:
    """Seed greedy batch decode: every row steps until *all* rows finish.

    Finished rows keep re-feeding their last pre-EOS token (the zombie-row
    behaviour the optimized decoder removes); their outputs are ignored,
    so the returned hypotheses match the optimized path.
    """
    if isinstance(src, list):
        src = pad_sources(src, model.pad_id)
    src = np.atleast_2d(np.asarray(src))
    batch = src.shape[0]
    state = start_uncached(model, src)
    last = np.full(batch, model.sos_id, dtype=np.int64)
    sequences: list[list[int]] = [[] for _ in range(batch)]
    log_probs = np.zeros(batch)
    finished = np.zeros(batch, dtype=bool)
    for _ in range(max_len):
        if finished.all():
            break
        logits, state = model.step(state, last)
        step_log_probs = log_softmax_np(logits)
        choices = step_log_probs.argmax(axis=1)
        for i in range(batch):
            if finished[i]:
                continue
            token = int(choices[i])
            log_probs[i] += float(step_log_probs[i, token])
            if token == model.eos_id:
                finished[i] = True
            else:
                sequences[i].append(token)
                last[i] = token
    return [
        Hypothesis(tokens=tuple(seq), log_prob=float(lp), finished=bool(done))
        for seq, lp, done in zip(sequences, log_probs, finished)
    ]


def top_n_sampling_reference(
    model: Seq2SeqModel,
    src: np.ndarray,
    k: int = 3,
    n: int = 40,
    max_len: int = 32,
    rng: np.random.Generator | None = None,
    forbid_tokens: tuple[int, ...] = (),
) -> list[Hypothesis]:
    """Seed single-source top-n sampling: per-row argsort + ``rng.choice``.

    Crashes with a NaN-probability ``ValueError`` when a candidate's legal
    pool is empty (every unblocked token at ``-inf``) — the seed defect the
    optimized sampler fixes.
    """
    src = np.atleast_2d(np.asarray(src))
    if src.shape[0] != 1:
        raise ValueError("top_n_sampling expects a single source sequence")
    if k <= 0 or n <= 0:
        raise ValueError("k and n must be positive")
    rng = rng or np.random.default_rng()
    blocked = set(forbid_tokens) | {model.pad_id, model.sos_id}

    state = start_uncached(model, src)
    last = np.array([model.sos_id], dtype=np.int64)
    logits, state = model.step(state, last)
    first_log_probs = log_softmax_np(logits[0])

    order = np.argsort(-first_log_probs)
    first_tokens = [
        int(t) for t in order if int(t) not in blocked and int(t) != model.eos_id
    ][:k]
    if not first_tokens:
        return []
    actual_k = len(first_tokens)

    state = state.reorder(np.zeros(actual_k, dtype=np.int64), model)
    sequences: list[list[int]] = [[t] for t in first_tokens]
    log_probs = np.array([float(first_log_probs[t]) for t in first_tokens])
    alive = np.ones(actual_k, dtype=bool)
    finished_flags = np.zeros(actual_k, dtype=bool)
    last = np.array(first_tokens, dtype=np.int64)

    for _ in range(max_len - 1):
        if not alive.any():
            break
        logits, state = model.step(state, last)
        step_log_probs = log_softmax_np(logits)
        next_tokens = last.copy()
        for i in range(actual_k):
            if not alive[i]:
                continue
            row = step_log_probs[i].copy()
            for b in blocked:
                row[b] = -np.inf
            pool = np.argsort(-row)[:n]
            pool_logp = row[pool]
            probs = np.exp(pool_logp - pool_logp.max())
            probs /= probs.sum()
            choice = int(pool[rng.choice(len(pool), p=probs)])
            log_probs[i] += float(row[choice])
            if choice == model.eos_id:
                alive[i] = False
                finished_flags[i] = True
            else:
                sequences[i].append(choice)
                next_tokens[i] = choice
        last = next_tokens

    return [
        Hypothesis(tokens=tuple(seq), log_prob=float(lp), finished=bool(done))
        for seq, lp, done in zip(sequences, log_probs, finished_flags)
    ]


def top_n_sampling_batch_reference(
    model: Seq2SeqModel,
    src: np.ndarray | list[list[int]],
    k: int = 3,
    n: int = 40,
    max_len: int = 32,
    rng: np.random.Generator | None = None,
    forbid_tokens: tuple[int, ...] = (),
) -> list[list[Hypothesis]]:
    """Seed batched top-n sampling: dead candidate rows keep stepping.

    The flat decode batch stays ``sum(k per source)`` wide for the whole
    decode; finished candidates are skipped in the sampling loop but still
    cost a model row every step.  Shares the seed's empty-pool NaN crash.
    """
    if isinstance(src, list):
        src = pad_sources(src, model.pad_id)
    src = np.atleast_2d(np.asarray(src))
    if k <= 0 or n <= 0:
        raise ValueError("k and n must be positive")
    rng = rng or np.random.default_rng()
    blocked = set(forbid_tokens) | {model.pad_id, model.sos_id}
    batch = src.shape[0]

    state = start_uncached(model, src)
    last = np.full(batch, model.sos_id, dtype=np.int64)
    logits, state = model.step(state, last)
    first_log_probs = log_softmax_np(logits)

    owner: list[int] = []
    first_tokens: list[int] = []
    for s in range(batch):
        order = np.argsort(-first_log_probs[s])
        firsts = [
            int(t) for t in order if int(t) not in blocked and int(t) != model.eos_id
        ][:k]
        owner.extend(s for _ in firsts)
        first_tokens.extend(firsts)
    if not first_tokens:
        return [[] for _ in range(batch)]
    flat = len(first_tokens)

    state = state.reorder(np.array(owner, dtype=np.int64), model)
    sequences: list[list[int]] = [[t] for t in first_tokens]
    log_probs = np.array(
        [float(first_log_probs[s, t]) for s, t in zip(owner, first_tokens)]
    )
    alive = np.ones(flat, dtype=bool)
    finished_flags = np.zeros(flat, dtype=bool)
    last = np.array(first_tokens, dtype=np.int64)

    for _ in range(max_len - 1):
        if not alive.any():
            break
        logits, state = model.step(state, last)
        step_log_probs = log_softmax_np(logits)
        next_tokens = last.copy()
        for i in range(flat):
            if not alive[i]:
                continue
            row = step_log_probs[i].copy()
            for b in blocked:
                row[b] = -np.inf
            pool = np.argsort(-row)[:n]
            pool_logp = row[pool]
            probs = np.exp(pool_logp - pool_logp.max())
            probs /= probs.sum()
            choice = int(pool[rng.choice(len(pool), p=probs)])
            log_probs[i] += float(row[choice])
            if choice == model.eos_id:
                alive[i] = False
                finished_flags[i] = True
            else:
                sequences[i].append(choice)
                next_tokens[i] = choice
        last = next_tokens

    grouped: list[list[Hypothesis]] = [[] for _ in range(batch)]
    for i in range(flat):
        grouped[owner[i]].append(
            Hypothesis(
                tokens=tuple(sequences[i]),
                log_prob=float(log_probs[i]),
                finished=bool(finished_flags[i]),
            )
        )
    return grouped


def beam_search_reference(
    model: Seq2SeqModel,
    src: np.ndarray,
    beam_size: int = 3,
    max_len: int = 32,
    length_penalty: float = 0.0,
) -> list[Hypothesis]:
    """Seed single-source beam search: the batch is always ``beam_size``
    rows wide, padded with repeated ``-inf``-scored survivors."""
    src = np.atleast_2d(np.asarray(src))
    if src.shape[0] != 1:
        raise ValueError("beam_search expects a single source sequence")
    if beam_size <= 0:
        raise ValueError("beam_size must be positive")

    state = start_uncached(model, src)
    state = state.reorder(np.zeros(beam_size, dtype=np.int64), model)
    beams: list[tuple[list[int], float]] = [([], 0.0)] + [([], -np.inf)] * (beam_size - 1)
    last = np.full(beam_size, model.sos_id, dtype=np.int64)
    finished: list[Hypothesis] = []

    for _ in range(max_len):
        logits, state = model.step(state, last)
        log_probs = log_softmax_np(logits)
        vocab = log_probs.shape[1]
        scores = np.array([s for _, s in beams])[:, None] + log_probs
        flat = scores.reshape(-1)
        top = np.argpartition(-flat, min(beam_size, flat.size) - 1)[:beam_size]
        top = top[np.argsort(-flat[top])]

        new_beams: list[tuple[list[int], float]] = []
        reorder: list[int] = []
        next_tokens: list[int] = []
        for flat_idx in top:
            beam_idx, token = divmod(int(flat_idx), vocab)
            score = float(flat[flat_idx])
            if not np.isfinite(score):
                continue
            prefix = beams[beam_idx][0]
            if token == model.eos_id:
                finished.append(
                    Hypothesis(tokens=tuple(prefix), log_prob=score, finished=True)
                )
                continue
            new_beams.append((prefix + [token], score))
            reorder.append(beam_idx)
            next_tokens.append(token)

        if not new_beams:
            break
        while len(new_beams) < beam_size:
            new_beams.append((new_beams[0][0], -np.inf))
            reorder.append(reorder[0])
            next_tokens.append(next_tokens[0])
        beams = new_beams
        state = state.reorder(np.array(reorder, dtype=np.int64), model)
        last = np.array(next_tokens, dtype=np.int64)
        if len(finished) >= beam_size:
            break

    for prefix, score in beams:
        if np.isfinite(score):
            finished.append(Hypothesis(tokens=tuple(prefix), log_prob=score, finished=False))

    def rank(h: Hypothesis) -> float:
        return h.log_prob / (len(h.tokens) + 1) ** length_penalty

    unique: dict[tuple[int, ...], Hypothesis] = {}
    for hyp in finished:
        kept = unique.get(hyp.tokens)
        if kept is None or hyp.log_prob > kept.log_prob:
            unique[hyp.tokens] = hyp
    ranked = sorted(unique.values(), key=rank, reverse=True)
    return ranked[:beam_size]


def beam_search_batch_reference(
    model: Seq2SeqModel,
    src: np.ndarray | list[list[int]],
    beam_size: int = 3,
    max_len: int = 32,
    length_penalty: float = 0.0,
) -> list[list[Hypothesis]]:
    """Seed batched beam search: ``batch × beam_size`` rows for the whole
    decode; inactive sources keep stepping for rectangularity (the
    zombie-row behaviour the optimized decoder compacts away)."""
    if isinstance(src, list):
        src = pad_sources(src, model.pad_id)
    src = np.atleast_2d(np.asarray(src))
    if beam_size <= 0:
        raise ValueError("beam_size must be positive")
    batch = src.shape[0]

    state = start_uncached(model, src)
    state = state.reorder(np.repeat(np.arange(batch), beam_size), model)
    beams: list[list[tuple[list[int], float]]] = [
        [([], 0.0)] + [([], -np.inf)] * (beam_size - 1) for _ in range(batch)
    ]
    last = np.full(batch * beam_size, model.sos_id, dtype=np.int64)
    finished: list[list[Hypothesis]] = [[] for _ in range(batch)]
    active = [True] * batch

    for _ in range(max_len):
        if not any(active):
            break
        logits, state = model.step(state, last)
        log_probs = log_softmax_np(logits)
        vocab = log_probs.shape[1]
        reorder = np.arange(batch * beam_size, dtype=np.int64)
        next_tokens = last.copy()

        for s in range(batch):
            if not active[s]:
                continue
            base = s * beam_size
            block = log_probs[base : base + beam_size]
            scores = np.array([score for _, score in beams[s]])[:, None] + block
            flat = scores.reshape(-1)
            top = np.argpartition(-flat, min(beam_size, flat.size) - 1)[:beam_size]
            top = top[np.argsort(-flat[top])]

            new_beams: list[tuple[list[int], float]] = []
            local_reorder: list[int] = []
            local_tokens: list[int] = []
            for flat_idx in top:
                beam_idx, token = divmod(int(flat_idx), vocab)
                score = float(flat[flat_idx])
                if not np.isfinite(score):
                    continue
                prefix = beams[s][beam_idx][0]
                if token == model.eos_id:
                    finished[s].append(
                        Hypothesis(tokens=tuple(prefix), log_prob=score, finished=True)
                    )
                    continue
                new_beams.append((prefix + [token], score))
                local_reorder.append(beam_idx)
                local_tokens.append(token)

            if not new_beams or len(finished[s]) >= beam_size:
                active[s] = False
                if new_beams:
                    beams[s] = new_beams + [
                        (new_beams[0][0], -np.inf)
                    ] * (beam_size - len(new_beams))
                continue
            while len(new_beams) < beam_size:
                new_beams.append((new_beams[0][0], -np.inf))
                local_reorder.append(local_reorder[0])
                local_tokens.append(local_tokens[0])
            beams[s] = new_beams
            reorder[base : base + beam_size] = base + np.array(local_reorder)
            next_tokens[base : base + beam_size] = local_tokens

        state = state.reorder(reorder, model)
        last = next_tokens

    def rank(h: Hypothesis) -> float:
        return h.log_prob / (len(h.tokens) + 1) ** length_penalty

    results: list[list[Hypothesis]] = []
    for s in range(batch):
        pool = list(finished[s])
        for prefix, score in beams[s]:
            if np.isfinite(score):
                pool.append(
                    Hypothesis(tokens=tuple(prefix), log_prob=score, finished=False)
                )
        unique: dict[tuple[int, ...], Hypothesis] = {}
        for hyp in pool:
            kept = unique.get(hyp.tokens)
            if kept is None or hyp.log_prob > kept.log_prob:
                unique[hyp.tokens] = hyp
        results.append(sorted(unique.values(), key=rank, reverse=True)[:beam_size])
    return results
