"""Greedy decoding: the most likely token at every step."""

from __future__ import annotations

import numpy as np

from repro.decoding.hypothesis import Hypothesis
from repro.decoding.logspace import log_softmax_np
from repro.models.base import Seq2SeqModel


def greedy_decode(model: Seq2SeqModel, src: np.ndarray, max_len: int = 32) -> Hypothesis:
    """Decode one source sequence greedily.

    Greedy search emits a single sequence and is not guaranteed optimal
    (the globally best sequence may avoid the locally best token); the paper
    rejects it for rewriting because one output cannot feed the k-candidate
    pipeline — but it remains the fastest baseline and is used in latency
    measurements.
    """
    src = np.atleast_2d(np.asarray(src))
    if src.shape[0] != 1:
        raise ValueError("greedy_decode expects a single source sequence")
    state = model.start(src)
    last = np.array([model.sos_id], dtype=np.int64)
    tokens: list[int] = []
    total_log_prob = 0.0
    finished = False
    for _ in range(max_len):
        logits, state = model.step(state, last)
        log_probs = log_softmax_np(logits[0])
        token = int(log_probs.argmax())
        total_log_prob += float(log_probs[token])
        if token == model.eos_id:
            finished = True
            break
        tokens.append(token)
        last = np.array([token], dtype=np.int64)
    return Hypothesis(tokens=tuple(tokens), log_prob=total_log_prob, finished=finished)
