"""Greedy decoding: the most likely token at every step.

``greedy_decode`` serves one source; ``greedy_decode_batch`` decodes a
whole stack of padded sources through the same number of model calls,
which is what the batched serving tier rides on.
"""

from __future__ import annotations

import numpy as np

from repro.decoding.hypothesis import Hypothesis
from repro.decoding.logspace import log_softmax_np
from repro.models.base import Seq2SeqModel, pad_sources


def greedy_decode(model: Seq2SeqModel, src: np.ndarray, max_len: int = 32) -> Hypothesis:
    """Decode one source sequence greedily.

    Greedy search emits a single sequence and is not guaranteed optimal
    (the globally best sequence may avoid the locally best token); the paper
    rejects it for rewriting because one output cannot feed the k-candidate
    pipeline — but it remains the fastest baseline and is used in latency
    measurements.
    """
    src = np.atleast_2d(np.asarray(src))
    if src.shape[0] != 1:
        raise ValueError("greedy_decode expects a single source sequence")
    state = model.start(src)
    last = np.array([model.sos_id], dtype=np.int64)
    tokens: list[int] = []
    total_log_prob = 0.0
    finished = False
    for _ in range(max_len):
        logits, state = model.step(state, last)
        log_probs = log_softmax_np(logits[0])
        token = int(log_probs.argmax())
        total_log_prob += float(log_probs[token])
        if token == model.eos_id:
            finished = True
            break
        tokens.append(token)
        last = np.array([token], dtype=np.int64)
    return Hypothesis(tokens=tuple(tokens), log_prob=total_log_prob, finished=finished)


def greedy_decode_batch(
    model: Seq2SeqModel,
    src: np.ndarray | list[list[int]],
    max_len: int = 32,
) -> list[Hypothesis]:
    """Greedy-decode a batch of sources in one pass.

    ``src`` is a padded (batch, seq) array or a list of variable-length id
    lists (padded internally).  Each source is decoded independently —
    the result matches per-source :func:`greedy_decode` — but every step
    is a single batched model call, so the per-step python/numpy overhead
    is paid once per position instead of once per source.

    Rows are physically dropped from the decode batch the moment they emit
    EOS (via ``state.reorder``), so a source that finishes early stops
    costing model work instead of being stepped as a zombie on its stale
    pre-EOS token; results are re-scattered to input order at the end.
    """
    if isinstance(src, list):
        src = pad_sources(src, model.pad_id)
    src = np.atleast_2d(np.asarray(src))
    batch = src.shape[0]
    state = model.start(src)
    # `live[i]` is the original source index of decode-batch row i.
    live = np.arange(batch)
    last = np.full(batch, model.sos_id, dtype=np.int64)
    sequences: list[list[int]] = [[] for _ in range(batch)]
    log_probs = np.zeros(batch)
    finished = np.zeros(batch, dtype=bool)
    for _ in range(max_len):
        if live.size == 0:
            break
        logits, state = model.step(state, last)
        step_log_probs = log_softmax_np(logits)  # (live, vocab)
        choices = step_log_probs.argmax(axis=1)
        log_probs[live] += step_log_probs[np.arange(live.size), choices]
        hit_eos = choices == model.eos_id
        finished[live[hit_eos]] = True
        for row in np.nonzero(~hit_eos)[0]:
            sequences[live[row]].append(int(choices[row]))
        if hit_eos.any():
            keep = np.nonzero(~hit_eos)[0]
            state = state.reorder(keep, model)
            live = live[keep]
            last = choices[keep]
        else:
            last = choices
    return [
        Hypothesis(tokens=tuple(seq), log_prob=float(lp), finished=bool(done))
        for seq, lp, done in zip(sequences, log_probs, finished)
    ]
