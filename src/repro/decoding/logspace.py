"""Log-space numerics shared by decoders and the inference pipeline.

All candidate scoring in the paper happens in log probability space to
avoid underflow (their Section III-E cites log-sum-exp tricks); these are
the ndarray counterparts of :func:`repro.autograd.logsumexp`.
"""

from __future__ import annotations

import numpy as np


def log_softmax_np(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log softmax on a plain ndarray."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))


def logsumexp_np(values: np.ndarray, axis: int | None = None) -> np.ndarray:
    """Numerically stable log(sum(exp(values)))."""
    values = np.asarray(values, dtype=np.float64)
    peak = values.max(axis=axis, keepdims=True)
    out = np.log(np.exp(values - peak).sum(axis=axis, keepdims=True)) + peak
    if axis is None:
        return out.reshape(())
    return np.squeeze(out, axis=axis)
