"""Diverse beam search (Vijayakumar et al., 2016).

Listed in the paper's Section V as a future-work direction for increasing
rewrite diversity.  Beams are split into groups decoded sequentially; each
group's token scores are penalized by how often earlier groups already
chose that token at the same time step, optimizing a diversity-augmented
objective directly.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.decoding.beam import beam_search
from repro.decoding.hypothesis import Hypothesis
from repro.decoding.logspace import log_softmax_np
from repro.models.base import Seq2SeqModel


def diverse_beam_search(
    model: Seq2SeqModel,
    src: np.ndarray,
    beam_size: int = 6,
    num_groups: int = 3,
    diversity_strength: float = 0.5,
    max_len: int = 32,
) -> list[Hypothesis]:
    """Group-wise diverse beam search over one source sequence.

    ``beam_size`` must be divisible by ``num_groups``; each group runs a
    beam of ``beam_size / num_groups`` with penalties against tokens that
    earlier groups emitted at the same position.
    """
    src = np.atleast_2d(np.asarray(src))
    if src.shape[0] != 1:
        raise ValueError("diverse_beam_search expects a single source sequence")
    if beam_size % num_groups != 0:
        raise ValueError(
            f"beam_size {beam_size} not divisible by num_groups {num_groups}"
        )
    group_width = beam_size // num_groups
    if num_groups == 1:
        return beam_search(model, src, beam_size=group_width, max_len=max_len)

    # token usage per time step by earlier groups
    usage: list[Counter] = [Counter() for _ in range(max_len)]
    all_hyps: list[Hypothesis] = []

    for _ in range(num_groups):
        hyps = _penalized_beam(
            model, src, group_width, max_len, usage, diversity_strength
        )
        for hyp in hyps:
            for t, token in enumerate(hyp.tokens):
                usage[t][token] += 1
        all_hyps.extend(hyps)

    unique: dict[tuple[int, ...], Hypothesis] = {}
    for hyp in all_hyps:
        kept = unique.get(hyp.tokens)
        if kept is None or hyp.log_prob > kept.log_prob:
            unique[hyp.tokens] = hyp
    return sorted(unique.values(), key=lambda h: h.log_prob, reverse=True)


def _penalized_beam(
    model: Seq2SeqModel,
    src: np.ndarray,
    beam_size: int,
    max_len: int,
    usage: list[Counter],
    strength: float,
) -> list[Hypothesis]:
    """Beam search whose step scores subtract earlier groups' token usage.

    Like :func:`repro.decoding.beam.beam_search`, the decode batch holds
    only the live beams (one row at the start, narrowing as hypotheses
    finish) instead of being padded to a fixed width with dead rows.
    """
    state = model.start(src)
    beams: list[tuple[list[int], float]] = [([], 0.0)]
    last = np.array([model.sos_id], dtype=np.int64)
    finished: list[Hypothesis] = []

    for t in range(max_len):
        logits, state = model.step(state, last)
        log_probs = log_softmax_np(logits)
        vocab = log_probs.shape[1]
        penalty = np.zeros(vocab)
        for token, count in usage[t].items():
            penalty[token] = strength * count
        # True log-prob accumulates separately from the penalized selection
        # score, so returned hypotheses carry unbiased likelihoods.
        select = (
            np.array([s for _, s in beams])[:, None] + log_probs - penalty[None, :]
        )
        flat = select.reshape(-1)
        top = np.argpartition(-flat, min(beam_size, flat.size) - 1)[:beam_size]
        top = top[np.argsort(-flat[top])]

        new_beams, reorder, next_tokens = [], [], []
        for flat_idx in top:
            beam_idx, token = divmod(int(flat_idx), vocab)
            if not np.isfinite(flat[flat_idx]):
                continue
            base_score = beams[beam_idx][1] + float(log_probs[beam_idx, token])
            prefix = beams[beam_idx][0]
            if token == model.eos_id:
                finished.append(Hypothesis(tuple(prefix), base_score, True))
                continue
            new_beams.append((prefix + [token], base_score))
            reorder.append(beam_idx)
            next_tokens.append(token)
        if not new_beams:
            break
        beams = new_beams
        state = state.reorder(np.array(reorder, dtype=np.int64), model)
        last = np.array(next_tokens, dtype=np.int64)
        if len(finished) >= beam_size:
            break

    for prefix, score in beams:
        if np.isfinite(score):
            finished.append(Hypothesis(tuple(prefix), score, False))
    unique: dict[tuple[int, ...], Hypothesis] = {}
    for hyp in finished:
        kept = unique.get(hyp.tokens)
        if kept is None or hyp.log_prob > kept.log_prob:
            unique[hyp.tokens] = hyp
    return sorted(unique.values(), key=lambda h: h.log_prob, reverse=True)[:beam_size]
