"""Decoded sequence container."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Hypothesis:
    """One decoded target sequence.

    ``tokens`` excludes SOS and EOS; ``log_prob`` is the sum of chosen
    token log probabilities (including the terminating EOS when the
    sequence finished naturally).
    """

    tokens: tuple[int, ...]
    log_prob: float
    finished: bool = True

    def __len__(self) -> int:
        return len(self.tokens)

    @property
    def score(self) -> float:
        """Length-normalized log probability (for ranking)."""
        return self.log_prob / max(1, len(self.tokens) + 1)
