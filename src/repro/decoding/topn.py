"""The paper's top-n sampling decoder (Section III-F, Figure 4).

Step 1 selects the k most likely *unique* first tokens so every candidate
sequence starts differently — the key diversity device.  Every later step,
for each candidate independently, restricts to the n most likely next
tokens, renormalizes, and samples one.  The result balances likelihood and
diversity better than beam search for the rewriting pipeline.

Implementation notes (see ``docs/DECODING.md`` for the full contract):

* **Vectorized sampling** — each step masks, pools, renormalizes and
  samples all candidates with batch numpy calls (:func:`sample_top_n_pools`)
  instead of a per-row python loop, while consuming exactly one uniform
  deviate per live candidate in row order — the same RNG stream as the
  per-row ``rng.choice`` it replaced, so seeded decodes are byte-identical.
* **Active-row compaction** — finished candidates are physically dropped
  from the decode batch via ``state.reorder`` rather than stepped as dead
  weight; results are re-scattered to candidate order at the end.
* **Empty pools finish gracefully** — a candidate whose legal pool is
  empty (every unblocked token at ``-inf``) is retired unfinished instead
  of crashing on NaN sampling probabilities, and consumes no randomness.
"""

from __future__ import annotations

import numpy as np

from repro.decoding.hypothesis import Hypothesis
from repro.decoding.logspace import log_softmax_np
from repro.models.base import Seq2SeqModel, pad_sources


def sample_top_n_pools(
    rng: np.random.Generator, log_probs: np.ndarray, n: int
) -> tuple[np.ndarray, np.ndarray]:
    """Sample one token per row from each row's top-``n`` pool, vectorized.

    ``log_probs`` is a (rows, vocab) array with blocked tokens already set
    to ``-inf``.  Returns ``(choices, legal)``: ``legal[i]`` is False when
    row ``i``'s pool contains no finite entry — such a row consumes no
    randomness and its ``choices[i]`` is -1; callers retire it gracefully.

    RNG contract: exactly one uniform deviate per legal row, drawn in row
    order by a single batched ``rng.random`` call.  This is bit-compatible
    with the per-row loop ``pool[rng.choice(len(pool), p=probs)]`` it
    replaces: ``Generator.choice`` consumes one ``random()`` double and
    picks by right-bisecting the renormalized cumulative distribution,
    which is what the vectorized ``(cdf <= u).sum()`` computes.
    """
    rows, vocab = log_probs.shape
    width = min(n, vocab)
    part = np.argpartition(-log_probs, width - 1, axis=1)[:, :width]
    vals = np.take_along_axis(log_probs, part, axis=1)
    order = np.argsort(-vals, axis=1)
    pool = np.take_along_axis(part, order, axis=1)
    pool_logp = np.take_along_axis(vals, order, axis=1)
    legal = np.isfinite(pool_logp[:, 0])
    choices = np.full(rows, -1, dtype=np.int64)
    if not legal.any():
        return choices, legal
    kept = pool_logp[legal]
    weights = np.exp(kept - kept[:, :1])
    weights /= weights.sum(axis=1, keepdims=True)
    cdf = np.cumsum(weights, axis=1)
    cdf /= cdf[:, -1:]
    draws = rng.random(int(legal.sum()))
    positions = (cdf <= draws[:, None]).sum(axis=1)
    choices[legal] = pool[legal][np.arange(positions.size), positions]
    return choices, legal


def top_n_sampling(
    model: Seq2SeqModel,
    src: np.ndarray,
    k: int = 3,
    n: int = 40,
    max_len: int = 32,
    rng: np.random.Generator | None = None,
    forbid_tokens: tuple[int, ...] = (),
) -> list[Hypothesis]:
    """Decode ``k`` diverse sequences for one source.

    Implemented as :func:`top_n_sampling_batch` on a batch of one — the
    two consume identical RNG streams, so a seeded single-source decode
    returns exactly what the same seed returns for that source in a batch.

    Parameters
    ----------
    k:
        Number of candidate sequences (the paper's beam width k=3).
    n:
        Size of the per-step sampling pool (the paper uses n=40).
    forbid_tokens:
        Token ids never to emit (PAD/SOS/UNK are excluded automatically).
    """
    src = np.atleast_2d(np.asarray(src))
    if src.shape[0] != 1:
        raise ValueError("top_n_sampling expects a single source sequence")
    return top_n_sampling_batch(
        model, src, k=k, n=n, max_len=max_len, rng=rng, forbid_tokens=forbid_tokens
    )[0]


def top_n_sampling_batch(
    model: Seq2SeqModel,
    src: np.ndarray | list[list[int]],
    k: int = 3,
    n: int = 40,
    max_len: int = 32,
    rng: np.random.Generator | None = None,
    forbid_tokens: tuple[int, ...] = (),
) -> list[list[Hypothesis]]:
    """Decode ``k`` diverse sequences for *each* of a batch of sources.

    The algorithm is the paper's top-n sampling applied to every source,
    but all candidates of all sources are stacked into one flat decode
    batch: a batch of B sources costs the same number of model calls as a
    single source, with at most B·k rows per call instead of k.  This is
    the model-tier hot path of ``ServingPipeline.serve_batch``.

    Candidates that finish (EOS, or an empty legal pool) are compacted out
    of the decode batch with ``state.reorder``, so the per-step row count
    only shrinks; each step then samples every surviving candidate with
    one vectorized pool draw (:func:`sample_top_n_pools`), preserving the
    one-uniform-per-candidate RNG stream of the original per-row loop.

    ``src`` is a padded (batch, seq) array or a list of variable-length id
    lists (padded internally).  Returns one hypothesis list per source, in
    input order; a source whose first step admits no legal token gets an
    empty list.
    """
    if isinstance(src, list):
        src = pad_sources(src, model.pad_id)
    src = np.atleast_2d(np.asarray(src))
    if k <= 0 or n <= 0:
        raise ValueError("k and n must be positive")
    rng = rng or np.random.default_rng()
    blocked = set(forbid_tokens) | {model.pad_id, model.sos_id}
    blocked_cols = np.fromiter(blocked, dtype=np.int64)
    batch = src.shape[0]

    state = model.start(src)
    last = np.full(batch, model.sos_id, dtype=np.int64)
    logits, state = model.step(state, last)
    first_log_probs = log_softmax_np(logits)  # (batch, vocab)

    # Step 1 per source: the k most likely unique first tokens.
    owner: list[int] = []  # source index of each flat candidate slot
    first_tokens: list[int] = []
    for s in range(batch):
        order = np.argsort(-first_log_probs[s])
        firsts = [
            int(t) for t in order if int(t) not in blocked and int(t) != model.eos_id
        ][:k]
        owner.extend(s for _ in firsts)
        first_tokens.extend(firsts)
    if not first_tokens:
        return [[] for _ in range(batch)]
    flat = len(first_tokens)

    state = state.reorder(np.array(owner, dtype=np.int64), model)
    sequences: list[list[int]] = [[t] for t in first_tokens]
    log_probs = np.array(
        [float(first_log_probs[s, t]) for s, t in zip(owner, first_tokens)]
    )
    finished_flags = np.zeros(flat, dtype=bool)
    # `slots[i]` maps live decode-batch row i back to its candidate slot;
    # compaction keeps rows in ascending slot order, which is what keeps
    # the RNG draw order identical to the uncompacted per-row loop.
    slots = np.arange(flat)
    last = np.array(first_tokens, dtype=np.int64)

    for _ in range(max_len - 1):
        if slots.size == 0:
            break
        logits, state = model.step(state, last)
        step_log_probs = log_softmax_np(logits)  # (live, vocab)
        step_log_probs[:, blocked_cols] = -np.inf
        choices, legal = sample_top_n_pools(rng, step_log_probs, n)
        legal_rows = np.nonzero(legal)[0]
        log_probs[slots[legal_rows]] += step_log_probs[legal_rows, choices[legal_rows]]
        hit_eos = legal & (choices == model.eos_id)
        finished_flags[slots[hit_eos]] = True
        keep = legal & ~hit_eos
        for row in np.nonzero(keep)[0]:
            sequences[slots[row]].append(int(choices[row]))
        if keep.all():
            last = choices
        else:
            kept_rows = np.nonzero(keep)[0]
            state = state.reorder(kept_rows, model)
            slots = slots[kept_rows]
            last = choices[kept_rows]

    grouped: list[list[Hypothesis]] = [[] for _ in range(batch)]
    for i in range(flat):
        grouped[owner[i]].append(
            Hypothesis(
                tokens=tuple(sequences[i]),
                log_prob=float(log_probs[i]),
                finished=bool(finished_flags[i]),
            )
        )
    return grouped
