"""The paper's top-n sampling decoder (Section III-F, Figure 4).

Step 1 selects the k most likely *unique* first tokens so every candidate
sequence starts differently — the key diversity device.  Every later step,
for each candidate independently, restricts to the n most likely next
tokens, renormalizes, and samples one.  The result balances likelihood and
diversity better than beam search for the rewriting pipeline.
"""

from __future__ import annotations

import numpy as np

from repro.decoding.hypothesis import Hypothesis
from repro.decoding.logspace import log_softmax_np
from repro.models.base import Seq2SeqModel, pad_sources


def top_n_sampling(
    model: Seq2SeqModel,
    src: np.ndarray,
    k: int = 3,
    n: int = 40,
    max_len: int = 32,
    rng: np.random.Generator | None = None,
    forbid_tokens: tuple[int, ...] = (),
) -> list[Hypothesis]:
    """Decode ``k`` diverse sequences for one source.

    Parameters
    ----------
    k:
        Number of candidate sequences (the paper's beam width k=3).
    n:
        Size of the per-step sampling pool (the paper uses n=40).
    forbid_tokens:
        Token ids never to emit (PAD/SOS/UNK are excluded automatically).
    """
    src = np.atleast_2d(np.asarray(src))
    if src.shape[0] != 1:
        raise ValueError("top_n_sampling expects a single source sequence")
    if k <= 0 or n <= 0:
        raise ValueError("k and n must be positive")
    rng = rng or np.random.default_rng()
    blocked = set(forbid_tokens) | {model.pad_id, model.sos_id}

    state = model.start(src)
    last = np.array([model.sos_id], dtype=np.int64)
    logits, state = model.step(state, last)
    first_log_probs = log_softmax_np(logits[0])

    # Step 1 (Figure 4): the k most likely unique first tokens.  EOS and
    # special tokens are not allowed to start a sequence.
    order = np.argsort(-first_log_probs)
    first_tokens = [
        int(t) for t in order if int(t) not in blocked and int(t) != model.eos_id
    ][:k]
    if not first_tokens:
        return []
    actual_k = len(first_tokens)

    state = state.reorder(np.zeros(actual_k, dtype=np.int64), model)
    sequences: list[list[int]] = [[t] for t in first_tokens]
    log_probs = np.array([float(first_log_probs[t]) for t in first_tokens])
    alive = np.ones(actual_k, dtype=bool)
    finished_flags = np.zeros(actual_k, dtype=bool)
    last = np.array(first_tokens, dtype=np.int64)

    for _ in range(max_len - 1):
        if not alive.any():
            break
        logits, state = model.step(state, last)
        step_log_probs = log_softmax_np(logits)  # (k, vocab)
        next_tokens = last.copy()
        for i in range(actual_k):
            if not alive[i]:
                continue
            row = step_log_probs[i].copy()
            for b in blocked:
                row[b] = -np.inf
            pool = np.argsort(-row)[:n]
            pool_logp = row[pool]
            probs = np.exp(pool_logp - pool_logp.max())
            probs /= probs.sum()
            choice = int(pool[rng.choice(len(pool), p=probs)])
            log_probs[i] += float(row[choice])
            if choice == model.eos_id:
                alive[i] = False
                finished_flags[i] = True
            else:
                sequences[i].append(choice)
                next_tokens[i] = choice
        last = next_tokens

    return [
        Hypothesis(tokens=tuple(seq), log_prob=float(lp), finished=bool(done))
        for seq, lp, done in zip(sequences, log_probs, finished_flags)
    ]


def top_n_sampling_batch(
    model: Seq2SeqModel,
    src: np.ndarray | list[list[int]],
    k: int = 3,
    n: int = 40,
    max_len: int = 32,
    rng: np.random.Generator | None = None,
    forbid_tokens: tuple[int, ...] = (),
) -> list[list[Hypothesis]]:
    """Decode ``k`` diverse sequences for *each* of a batch of sources.

    The algorithm is :func:`top_n_sampling` applied to every source, but
    all candidates of all sources are stacked into one flat decode batch:
    a batch of B sources costs the same number of model calls as a single
    source, with B·k rows per call instead of k.  This is the model-tier
    hot path of ``ServingPipeline.serve_batch``.

    ``src`` is a padded (batch, seq) array or a list of variable-length id
    lists (padded internally).  Returns one hypothesis list per source, in
    input order; a source whose first step admits no legal token gets an
    empty list.
    """
    if isinstance(src, list):
        src = pad_sources(src, model.pad_id)
    src = np.atleast_2d(np.asarray(src))
    if k <= 0 or n <= 0:
        raise ValueError("k and n must be positive")
    rng = rng or np.random.default_rng()
    blocked = set(forbid_tokens) | {model.pad_id, model.sos_id}
    batch = src.shape[0]

    state = model.start(src)
    last = np.full(batch, model.sos_id, dtype=np.int64)
    logits, state = model.step(state, last)
    first_log_probs = log_softmax_np(logits)  # (batch, vocab)

    # Step 1 per source: the k most likely unique first tokens.
    owner: list[int] = []  # source index of each flat candidate row
    first_tokens: list[int] = []
    for s in range(batch):
        order = np.argsort(-first_log_probs[s])
        firsts = [
            int(t) for t in order if int(t) not in blocked and int(t) != model.eos_id
        ][:k]
        owner.extend(s for _ in firsts)
        first_tokens.extend(firsts)
    if not first_tokens:
        return [[] for _ in range(batch)]
    flat = len(first_tokens)

    state = state.reorder(np.array(owner, dtype=np.int64), model)
    sequences: list[list[int]] = [[t] for t in first_tokens]
    log_probs = np.array(
        [float(first_log_probs[s, t]) for s, t in zip(owner, first_tokens)]
    )
    alive = np.ones(flat, dtype=bool)
    finished_flags = np.zeros(flat, dtype=bool)
    last = np.array(first_tokens, dtype=np.int64)

    for _ in range(max_len - 1):
        if not alive.any():
            break
        logits, state = model.step(state, last)
        step_log_probs = log_softmax_np(logits)  # (flat, vocab)
        next_tokens = last.copy()
        for i in range(flat):
            if not alive[i]:
                continue
            row = step_log_probs[i].copy()
            for b in blocked:
                row[b] = -np.inf
            pool = np.argsort(-row)[:n]
            pool_logp = row[pool]
            probs = np.exp(pool_logp - pool_logp.max())
            probs /= probs.sum()
            choice = int(pool[rng.choice(len(pool), p=probs)])
            log_probs[i] += float(row[choice])
            if choice == model.eos_id:
                alive[i] = False
                finished_flags[i] = True
            else:
                sequences[i].append(choice)
                next_tokens[i] = choice
        last = next_tokens

    grouped: list[list[Hypothesis]] = [[] for _ in range(batch)]
    for i in range(flat):
        grouped[owner[i]].append(
            Hypothesis(
                tokens=tuple(sequences[i]),
                log_prob=float(log_probs[i]),
                finished=bool(finished_flags[i]),
            )
        )
    return grouped
