"""Baseline query-rewriting methods the paper compares against.

* :class:`RuleBasedRewriter` — the production baseline of Tables VI/VII: a
  human-curated synonym-phrase dictionary applied by replacement.
* :class:`SimRankPP` — SimRank++ (Antonellis et al., 2008), the classic
  click-graph rewriting method reviewed in Section II-C; included as an
  additional related-work baseline.
"""

from repro.baselines.rule_based import RuleBasedRewriter
from repro.baselines.simrank import SimRankPP, SimRankConfig

__all__ = ["RuleBasedRewriter", "SimRankPP", "SimRankConfig"]
