"""SimRank++ query similarity over the click graph (Antonellis et al., 2008).

The classic pre-neural approach reviewed in the paper's Section II-C:
queries are similar if they click on similar items.  SimRank++ extends
SimRank with (a) *evidence* weighting, damping scores between node pairs
with few common neighbours, and (b) click-weight-aware propagation.  The
paper dismisses it as "not scalable to the current industrial scale"; at
our simulator scale it runs fine and serves as another baseline rewriter.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.rewriter import RewriteResult
from repro.data.clicklog import ClickLog
from repro.text import tokenize


@dataclass
class SimRankConfig:
    decay: float = 0.8  # the C constant of SimRank
    iterations: int = 5
    #: keep only the top-M queries by clicks (bounds the O(Q²) similarity)
    max_queries: int = 400


class SimRankPP:
    """Bipartite SimRank++ between queries and products."""

    def __init__(self, click_log: ClickLog, config: SimRankConfig | None = None):
        self.config = config or SimRankConfig()
        self._build(click_log)
        self._run()

    # -- graph construction ---------------------------------------------------
    def _build(self, click_log: ClickLog) -> None:
        ranked = sorted(
            click_log.queries.values(), key=lambda r: (-r.total_clicks, r.text)
        )[: self.config.max_queries]
        self.queries = [r.text for r in ranked]
        self._query_index = {text: i for i, text in enumerate(self.queries)}
        product_ids = sorted(
            {pid for r in ranked for pid in r.clicked_products}
        )
        self._product_index = {pid: j for j, pid in enumerate(product_ids)}

        n_q, n_p = len(self.queries), len(product_ids)
        weights = np.zeros((n_q, n_p))
        for i, record in enumerate(ranked):
            for pid, clicks in record.clicked_products.items():
                weights[i, self._product_index[pid]] = clicks
        self._weights = weights
        # Row/column-normalized transition matrices (click-weighted walks).
        q_norm = weights.sum(axis=1, keepdims=True)
        p_norm = weights.sum(axis=0, keepdims=True)
        self._q_to_p = np.divide(weights, q_norm, out=np.zeros_like(weights), where=q_norm > 0)
        self._p_to_q = np.divide(weights, p_norm, out=np.zeros_like(weights), where=p_norm > 0)

    # -- evidence (SimRank++'s novelty) -----------------------------------------
    def _evidence(self) -> np.ndarray:
        """evidence(a, b) = Σ_{i=1..|N(a)∩N(b)|} 2^-i, in [0, 1)."""
        adjacency = (self._weights > 0).astype(np.float64)
        common = adjacency @ adjacency.T  # |N(a) ∩ N(b)| (counts via 0/1)
        # Σ_{i=1..c} 2^-i = 1 - 2^-c
        return 1.0 - np.power(2.0, -common)

    # -- iteration ---------------------------------------------------------------
    def _run(self) -> None:
        c = self.config.decay
        n_q = len(self.queries)
        n_p = len(self._product_index)
        sim_q = np.eye(n_q)
        sim_p = np.eye(n_p)
        for _ in range(self.config.iterations):
            new_q = c * (self._q_to_p @ sim_p @ self._q_to_p.T)
            new_p = c * (self._p_to_q.T @ sim_q @ self._p_to_q)
            np.fill_diagonal(new_q, 1.0)
            np.fill_diagonal(new_p, 1.0)
            sim_q, sim_p = new_q, new_p
        evidence = self._evidence()
        self.similarity = evidence * sim_q
        np.fill_diagonal(self.similarity, 1.0)

    # -- rewriting API --------------------------------------------------------------
    def rewrite(self, query: str | list[str], k: int = 3) -> list[RewriteResult]:
        """Top-k most similar known queries (empty for unknown queries).

        SimRank++ can only rewrite queries it has seen in the click graph —
        the coverage limitation that motivates generative rewriting.
        """
        text = query if isinstance(query, str) else " ".join(query)
        index = self._query_index.get(text)
        if index is None:
            return []
        row = self.similarity[index].copy()
        row[index] = -np.inf
        order = np.argsort(-row)[:k]
        results = []
        for j in order:
            score = float(row[j])
            if score <= 0.0:
                break
            results.append(
                RewriteResult(
                    tokens=tuple(tokenize(self.queries[j])),
                    log_prob=float(np.log(max(score, 1e-12))),
                )
            )
        return results

    def coverage(self) -> int:
        """Number of queries this method can rewrite at all."""
        return len(self.queries)
