"""Rule-based query rewriting (the paper's production baseline).

"The method starts from a human-curated synonym phrase dictionary.  For a
given query, it simply replaces the phrase in the query with its synonym
phrase from the dictionary, to generate the rewritten query."  (§IV-C3)

Strengths and weaknesses reproduce accordingly: rewrites are lexically very
close to the original (high F1, low edit distance in Table VII) and
context-blind — a polysemous term is always rewritten toward the
dictionary's single reading (the "cherry" failure of §IV-C2).
"""

from __future__ import annotations

from repro.core.rewriter import RewriteResult
from repro.text import tokenize


class RuleBasedRewriter:
    """Dictionary-replacement rewriter.

    Parameters
    ----------
    rules:
        phrase -> replacement-phrase map.  Multi-token phrases are
        supported on both sides; matching is greedy longest-phrase-first at
        each position.
    """

    def __init__(self, rules: dict[str, str]):
        self.rules = {
            tuple(tokenize(phrase)): tuple(tokenize(replacement))
            for phrase, replacement in rules.items()
        }
        self._max_phrase_len = max((len(p) for p in self.rules), default=1)

    def rewrite(self, query: str | list[str], k: int = 3) -> list[RewriteResult]:
        """Up to ``k`` rewrites, each replacing one matched phrase.

        One rewrite is generated per matched phrase occurrence (leftmost
        first), mirroring the single-substitution behaviour of the
        production dictionary.
        """
        tokens = tokenize(query) if isinstance(query, str) else list(query)
        results: list[RewriteResult] = []
        seen: set[tuple[str, ...]] = {tuple(tokens)}
        for start in range(len(tokens)):
            if len(results) >= k:
                break
            match = self._match_at(tokens, start)
            if match is None:
                continue
            phrase, replacement = match
            rewritten = tuple(tokens[:start] + list(replacement) + tokens[start + len(phrase):])
            if rewritten in seen:
                continue
            seen.add(rewritten)
            results.append(RewriteResult(tokens=rewritten, log_prob=0.0))
        return results

    def _match_at(
        self, tokens: list[str], start: int
    ) -> tuple[tuple[str, ...], tuple[str, ...]] | None:
        """Longest dictionary phrase starting at ``start``, if any."""
        limit = min(self._max_phrase_len, len(tokens) - start)
        for length in range(limit, 0, -1):
            phrase = tuple(tokens[start : start + length])
            replacement = self.rules.get(phrase)
            if replacement is not None and replacement != phrase:
                return phrase, replacement
        return None

    def has_rule_for(self, query: str | list[str]) -> bool:
        """Whether any dictionary phrase occurs in the query."""
        tokens = tokenize(query) if isinstance(query, str) else list(query)
        return any(self._match_at(tokens, i) is not None for i in range(len(tokens)))
