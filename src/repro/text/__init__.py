"""Text processing: vocabulary, tokenization, n-grams, edit distance."""

from repro.text.tokenize import normalize, tokenize, detokenize
from repro.text.vocab import Vocabulary, PAD, SOS, EOS, UNK
from repro.text.ngrams import ngrams, ngram_multiset, ngram_f1, ngram_precision_recall
from repro.text.edit_distance import levenshtein

__all__ = [
    "normalize",
    "tokenize",
    "detokenize",
    "Vocabulary",
    "PAD",
    "SOS",
    "EOS",
    "UNK",
    "ngrams",
    "ngram_multiset",
    "ngram_f1",
    "ngram_precision_recall",
    "levenshtein",
]
