"""Levenshtein edit distance (paper Table VII, "Edit Distance" column)."""

from __future__ import annotations

from collections.abc import Sequence


def levenshtein(a: Sequence, b: Sequence) -> int:
    """Minimum number of insertions/deletions/substitutions turning a into b.

    Works on any sequence type: pass strings for character-level distance or
    token lists for word-level distance (the paper's rewritten-vs-original
    query comparison is at the token level).
    """
    if len(a) < len(b):
        a, b = b, a
    if not b:
        return len(a)
    previous = list(range(len(b) + 1))
    for i, item_a in enumerate(a, start=1):
        current = [i]
        for j, item_b in enumerate(b, start=1):
            cost = 0 if item_a == item_b else 1
            current.append(
                min(
                    previous[j] + 1,  # deletion
                    current[j - 1] + 1,  # insertion
                    previous[j - 1] + cost,  # substitution
                )
            )
        previous = current
    return previous[-1]
