"""Whitespace tokenization with light normalization.

The paper tokenizes Chinese queries/titles into terms; our synthetic
marketplace is English-token based, so whitespace splitting after
normalization plays the same role.
"""

from __future__ import annotations

import re

_PUNCT = re.compile(r"[^\w\s\-+.]")
_SPACES = re.compile(r"\s+")


def normalize(text: str) -> str:
    """Lowercase, strip punctuation (keeping word-internal - + .), squeeze spaces."""
    text = text.lower()
    text = _PUNCT.sub(" ", text)
    text = _SPACES.sub(" ", text)
    return text.strip()


def tokenize(text: str) -> list[str]:
    """Split normalized text into tokens."""
    normalized = normalize(text)
    if not normalized:
        return []
    return normalized.split(" ")


def detokenize(tokens: list[str]) -> str:
    """Inverse of :func:`tokenize` for our whitespace-joined language."""
    return " ".join(tokens)
