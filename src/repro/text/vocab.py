"""Token vocabulary with the special tokens used by seq2seq models."""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable

PAD = "<pad>"
SOS = "<sos>"
EOS = "<eos>"
UNK = "<unk>"

_SPECIALS = (PAD, SOS, EOS, UNK)


class Vocabulary:
    """Bidirectional token <-> id mapping.

    Ids 0..3 are reserved for ``<pad>``, ``<sos>``, ``<eos>``, ``<unk>`` in
    that order; unknown tokens encode to ``<unk>``.
    """

    def __init__(self, tokens: Iterable[str] = ()):
        self._token_to_id: dict[str, int] = {}
        self._id_to_token: list[str] = []
        for token in _SPECIALS:
            self._add(token)
        for token in tokens:
            self._add(token)

    @classmethod
    def build(
        cls,
        corpus: Iterable[list[str]],
        min_freq: int = 1,
        max_size: int | None = None,
    ) -> "Vocabulary":
        """Build from an iterable of token lists, most frequent first."""
        counts = Counter()
        for tokens in corpus:
            counts.update(tokens)
        # Sort by (-count, token) for determinism.
        ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        kept = [tok for tok, freq in ranked if freq >= min_freq and tok not in _SPECIALS]
        if max_size is not None:
            kept = kept[: max(0, max_size - len(_SPECIALS))]
        return cls(kept)

    def _add(self, token: str) -> int:
        if token in self._token_to_id:
            return self._token_to_id[token]
        idx = len(self._id_to_token)
        self._token_to_id[token] = idx
        self._id_to_token.append(token)
        return idx

    def add_token(self, token: str) -> int:
        """Register an extra token (e.g. task separators) and return its id."""
        return self._add(token)

    # -- core mapping ---------------------------------------------------
    @property
    def pad_id(self) -> int:
        return 0

    @property
    def sos_id(self) -> int:
        return 1

    @property
    def eos_id(self) -> int:
        return 2

    @property
    def unk_id(self) -> int:
        return 3

    def __len__(self) -> int:
        return len(self._id_to_token)

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def token_to_id(self, token: str) -> int:
        return self._token_to_id.get(token, self.unk_id)

    def id_to_token(self, idx: int) -> str:
        if not 0 <= idx < len(self._id_to_token):
            raise IndexError(f"token id {idx} out of range for vocab of size {len(self)}")
        return self._id_to_token[idx]

    # -- sequence encode/decode ------------------------------------------
    def encode(self, tokens: list[str], add_sos: bool = False, add_eos: bool = True) -> list[int]:
        """Map tokens to ids, optionally wrapping with SOS / EOS."""
        ids = [self.token_to_id(t) for t in tokens]
        if add_sos:
            ids.insert(0, self.sos_id)
        if add_eos:
            ids.append(self.eos_id)
        return ids

    def decode(self, ids: Iterable[int], strip_special: bool = True) -> list[str]:
        """Map ids back to tokens, by default dropping special tokens and
        stopping at the first EOS."""
        tokens: list[str] = []
        for idx in ids:
            token = self.id_to_token(int(idx))
            if strip_special:
                if token == EOS:
                    break
                if token in (PAD, SOS):
                    continue
            tokens.append(token)
        return tokens

    def tokens(self) -> list[str]:
        """All tokens in id order (including specials)."""
        return list(self._id_to_token)
