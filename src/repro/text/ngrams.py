"""N-gram utilities and the n-gram F1 metric of the paper's Table VII.

The paper represents the original and rewritten query each as the set of
its unigrams and bigrams, then computes precision (overlap / rewritten
n-grams), recall (overlap / original n-grams) and F1 = 2pr/(p+r).  A *low*
F1 means a lexically diverse rewrite, which — combined with high semantic
similarity — is the behaviour the paper is after.
"""

from __future__ import annotations

from collections import Counter


def ngrams(tokens: list[str], n: int) -> list[tuple[str, ...]]:
    """All contiguous n-grams of ``tokens``."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    return [tuple(tokens[i : i + n]) for i in range(len(tokens) - n + 1)]


def ngram_multiset(tokens: list[str], orders: tuple[int, ...] = (1, 2)) -> Counter:
    """Multiset of all n-grams of the given orders (paper uses 1 and 2)."""
    bag: Counter = Counter()
    for n in orders:
        bag.update(ngrams(tokens, n))
    return bag


def ngram_precision_recall(
    rewritten: list[str],
    original: list[str],
    orders: tuple[int, ...] = (1, 2),
) -> tuple[float, float]:
    """(precision, recall) of rewritten-query n-grams against the original."""
    bag_rewritten = ngram_multiset(rewritten, orders)
    bag_original = ngram_multiset(original, orders)
    overlap = sum((bag_rewritten & bag_original).values())
    precision = overlap / max(1, sum(bag_rewritten.values()))
    recall = overlap / max(1, sum(bag_original.values()))
    return precision, recall


def ngram_f1(
    rewritten: list[str],
    original: list[str],
    orders: tuple[int, ...] = (1, 2),
) -> float:
    """F1 = 2pr/(p+r) over unigrams+bigrams, as in Table VII."""
    p, r = ngram_precision_recall(rewritten, original, orders)
    if p + r == 0.0:
        return 0.0
    return 2.0 * p * r / (p + r)
