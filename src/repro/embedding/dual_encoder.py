"""Two-tower text encoder trained on click pairs (DPSR substitute).

:class:`DualEncoder` maps queries and titles into one shared unit sphere;
:func:`train_dual_encoder` fits it with in-batch softmax over click pairs.
The inference surface comes in two granularities — per-text
(:meth:`DualEncoder.encode_query` / :meth:`~DualEncoder.encode_title`)
and batched (:meth:`~DualEncoder.encode_queries` /
:meth:`~DualEncoder.encode_titles`), the latter being what the semantic
retrieval tier (:mod:`repro.search.vector`) uses to embed whole catalogs.

Complexity: one encode is O(tokens · dim) pooling plus an O(dim²) tower
projection; a batch of n texts pads to the longest text and pays one
stacked forward instead of n.

Thread safety: training mutates parameters and must be single-threaded;
a trained encoder's ``encode_*`` methods are pure reads and safe to call
concurrently.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.autograd import Tensor, no_grad
from repro.data.dataset import pad_batch
from repro.nn import Embedding, Linear, cross_entropy
from repro.nn.module import Module
from repro.optim import Adam
from repro.text import Vocabulary, tokenize


@dataclass
class DualEncoderConfig:
    embedding_dim: int = 32
    output_dim: int = 32
    temperature: float = 0.1
    seed: int = 0


class DualEncoder(Module):
    """Query tower and title tower over a shared token embedding.

    ``encode_query`` / ``encode_title`` mean-pool token embeddings, project
    through a tower-specific linear layer, and L2-normalize, so the dot
    product of two encodings IS their cosine similarity.
    """

    def __init__(self, vocab: Vocabulary, config: DualEncoderConfig | None = None):
        super().__init__()
        self.vocab = vocab
        self.config = config or DualEncoderConfig()
        rng = np.random.default_rng(self.config.seed)
        dim = self.config.embedding_dim
        self.embedding = Embedding(len(vocab), dim, padding_idx=vocab.pad_id, rng=rng)
        self.query_tower = Linear(dim, self.config.output_dim, rng=rng)
        self.title_tower = Linear(dim, self.config.output_dim, rng=rng)

    # -- differentiable encodings (training) ---------------------------------
    def _pool(self, token_ids: np.ndarray) -> Tensor:
        """Mean-pool non-pad token embeddings: (batch, len) -> (batch, dim)."""
        embedded = self.embedding(token_ids)
        keep = (token_ids != self.vocab.pad_id).astype(np.float64)[:, :, None]
        summed = (embedded * Tensor(keep)).sum(axis=1)
        counts = np.maximum(keep.sum(axis=1), 1.0)
        return summed / Tensor(counts)

    def _normalize(self, x: Tensor) -> Tensor:
        norm = ((x * x).sum(axis=-1, keepdims=True) + 1e-12).sqrt()
        return x / norm

    def query_encoding(self, token_ids: np.ndarray) -> Tensor:
        """Differentiable query-tower encodings: (batch, len) ids -> unit rows."""
        return self._normalize(self.query_tower(self._pool(token_ids)))

    def title_encoding(self, token_ids: np.ndarray) -> Tensor:
        """Differentiable title-tower encodings: (batch, len) ids -> unit rows."""
        return self._normalize(self.title_tower(self._pool(token_ids)))

    # -- inference helpers -----------------------------------------------------
    def encode_query(self, text: str | list[str]) -> np.ndarray:
        """Unit-norm query embedding of one text (string or token list)."""
        return self.encode_queries([text])[0]

    def encode_title(self, text: str | list[str]) -> np.ndarray:
        """Unit-norm title embedding of one text (string or token list)."""
        return self.encode_titles([text])[0]

    def encode_queries(
        self, texts: list[str | list[str]], batch_size: int = 512
    ) -> np.ndarray:
        """Query-tower embeddings for a batch of texts: ``(n, output_dim)``.

        Texts are tokenized (strings) or taken as-is (token lists), padded
        per chunk of ``batch_size``, and pushed through one stacked forward
        per chunk — this is how catalogs get embedded at scale.  Rows come
        back in input order; a text that tokenizes to nothing embeds to
        the zero vector (the only non-unit-norm output).
        """
        return self._encode_batch(texts, self.query_encoding, batch_size)

    def encode_titles(
        self, texts: list[str | list[str]], batch_size: int = 512
    ) -> np.ndarray:
        """Title-tower embeddings for a batch of texts: ``(n, output_dim)``.

        Same contract as :meth:`encode_queries`, through the title tower.
        """
        return self._encode_batch(texts, self.title_encoding, batch_size)

    def _encode_batch(self, texts, encoding_fn, batch_size: int) -> np.ndarray:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        out = np.zeros((len(texts), self.config.output_dim), dtype=np.float64)
        encoded = [
            self.vocab.encode(
                tokenize(t) if isinstance(t, str) else list(t), add_eos=False
            )
            for t in texts
        ]
        with no_grad():
            for start in range(0, len(encoded), batch_size):
                chunk = encoded[start : start + batch_size]
                width = max((len(ids) for ids in chunk), default=0)
                if width == 0:
                    continue  # pad_batch needs at least one column
                batch = pad_batch(chunk, self.vocab.pad_id)
                rows = encoding_fn(batch).data
                # Empty texts pool to zero, but the tower bias would still
                # produce a unit vector; pin them to the zero vector so
                # "nothing to encode" never matches anything.
                empty = np.array([len(ids) == 0 for ids in chunk])
                if empty.any():
                    rows = rows.copy()
                    rows[empty] = 0.0
                out[start : start + len(chunk)] = rows
        return out

    def cosine(self, query_a: str | list[str], query_b: str | list[str]) -> float:
        """Cosine similarity of two queries in the query-tower space —
        exactly how the paper computes Table VII's semantic metric."""
        a = self.encode_query(query_a)
        b = self.encode_query(query_b)
        return float(np.dot(a, b))


def train_dual_encoder(
    encoder: DualEncoder,
    pairs: list[tuple[tuple[str, ...], tuple[str, ...], int]],
    steps: int = 200,
    batch_size: int = 32,
    rng: np.random.Generator | None = None,
) -> list[float]:
    """In-batch-softmax training over (query, title) click pairs.

    Each batch builds a (B, B) similarity matrix; the diagonal entries are
    the positives and every other row entry is an implicit negative.
    Returns the per-step loss trace.
    """
    if not pairs:
        raise ValueError("train_dual_encoder needs a non-empty pair list")
    rng = rng or np.random.default_rng(0)
    vocab = encoder.vocab
    q_ids = [vocab.encode(list(q), add_eos=False) for q, _, _ in pairs]
    t_ids = [vocab.encode(list(t), add_eos=False) for _, t, _ in pairs]
    optimizer = Adam(encoder.parameters(), lr=5e-3)
    losses: list[float] = []
    for _ in range(steps):
        idx = rng.choice(len(pairs), size=min(batch_size, len(pairs)), replace=False)
        q_batch = pad_batch([q_ids[i] for i in idx], vocab.pad_id)
        t_batch = pad_batch([t_ids[i] for i in idx], vocab.pad_id)
        encoder.train()
        encoder.zero_grad()
        q_emb = encoder.query_encoding(q_batch)
        t_emb = encoder.title_encoding(t_batch)
        logits = (q_emb @ t_emb.transpose(1, 0)) * (1.0 / encoder.config.temperature)
        labels = np.arange(len(idx))
        loss = cross_entropy(logits, labels)
        loss.backward()
        optimizer.step()
        losses.append(float(loss.item()))
    encoder.eval()
    return losses
