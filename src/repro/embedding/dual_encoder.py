"""Two-tower text encoder trained on click pairs."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.autograd import Tensor, no_grad
from repro.data.dataset import pad_batch
from repro.nn import Embedding, Linear, cross_entropy
from repro.nn.module import Module
from repro.optim import Adam
from repro.text import Vocabulary, tokenize


@dataclass
class DualEncoderConfig:
    embedding_dim: int = 32
    output_dim: int = 32
    temperature: float = 0.1
    seed: int = 0


class DualEncoder(Module):
    """Query tower and title tower over a shared token embedding.

    ``encode_query`` / ``encode_title`` mean-pool token embeddings, project
    through a tower-specific linear layer, and L2-normalize, so the dot
    product of two encodings IS their cosine similarity.
    """

    def __init__(self, vocab: Vocabulary, config: DualEncoderConfig | None = None):
        super().__init__()
        self.vocab = vocab
        self.config = config or DualEncoderConfig()
        rng = np.random.default_rng(self.config.seed)
        dim = self.config.embedding_dim
        self.embedding = Embedding(len(vocab), dim, padding_idx=vocab.pad_id, rng=rng)
        self.query_tower = Linear(dim, self.config.output_dim, rng=rng)
        self.title_tower = Linear(dim, self.config.output_dim, rng=rng)

    # -- differentiable encodings (training) ---------------------------------
    def _pool(self, token_ids: np.ndarray) -> Tensor:
        """Mean-pool non-pad token embeddings: (batch, len) -> (batch, dim)."""
        embedded = self.embedding(token_ids)
        keep = (token_ids != self.vocab.pad_id).astype(np.float64)[:, :, None]
        summed = (embedded * Tensor(keep)).sum(axis=1)
        counts = np.maximum(keep.sum(axis=1), 1.0)
        return summed / Tensor(counts)

    def _normalize(self, x: Tensor) -> Tensor:
        norm = ((x * x).sum(axis=-1, keepdims=True) + 1e-12).sqrt()
        return x / norm

    def query_encoding(self, token_ids: np.ndarray) -> Tensor:
        return self._normalize(self.query_tower(self._pool(token_ids)))

    def title_encoding(self, token_ids: np.ndarray) -> Tensor:
        return self._normalize(self.title_tower(self._pool(token_ids)))

    # -- inference helpers -----------------------------------------------------
    def encode_query(self, text: str | list[str]) -> np.ndarray:
        tokens = tokenize(text) if isinstance(text, str) else list(text)
        ids = np.array([self.vocab.encode(tokens, add_eos=False)])
        with no_grad():
            return self.query_encoding(ids).data[0]

    def encode_title(self, text: str | list[str]) -> np.ndarray:
        tokens = tokenize(text) if isinstance(text, str) else list(text)
        ids = np.array([self.vocab.encode(tokens, add_eos=False)])
        with no_grad():
            return self.title_encoding(ids).data[0]

    def cosine(self, query_a: str | list[str], query_b: str | list[str]) -> float:
        """Cosine similarity of two queries in the query-tower space —
        exactly how the paper computes Table VII's semantic metric."""
        a = self.encode_query(query_a)
        b = self.encode_query(query_b)
        return float(np.dot(a, b))


def train_dual_encoder(
    encoder: DualEncoder,
    pairs: list[tuple[tuple[str, ...], tuple[str, ...], int]],
    steps: int = 200,
    batch_size: int = 32,
    rng: np.random.Generator | None = None,
) -> list[float]:
    """In-batch-softmax training over (query, title) click pairs.

    Each batch builds a (B, B) similarity matrix; the diagonal entries are
    the positives and every other row entry is an implicit negative.
    Returns the per-step loss trace.
    """
    if not pairs:
        raise ValueError("train_dual_encoder needs a non-empty pair list")
    rng = rng or np.random.default_rng(0)
    vocab = encoder.vocab
    q_ids = [vocab.encode(list(q), add_eos=False) for q, _, _ in pairs]
    t_ids = [vocab.encode(list(t), add_eos=False) for _, t, _ in pairs]
    optimizer = Adam(encoder.parameters(), lr=5e-3)
    losses: list[float] = []
    for _ in range(steps):
        idx = rng.choice(len(pairs), size=min(batch_size, len(pairs)), replace=False)
        q_batch = pad_batch([q_ids[i] for i in idx], vocab.pad_id)
        t_batch = pad_batch([t_ids[i] for i in idx], vocab.pad_id)
        encoder.train()
        encoder.zero_grad()
        q_emb = encoder.query_encoding(q_batch)
        t_emb = encoder.title_encoding(t_batch)
        logits = (q_emb @ t_emb.transpose(1, 0)) * (1.0 / encoder.config.temperature)
        labels = np.arange(len(idx))
        loss = cross_entropy(logits, labels)
        loss.backward()
        optimizer.step()
        losses.append(float(loss.item()))
    encoder.eval()
    return losses
