"""Embedding retrieval (DPSR-like dual encoder).

The paper's Table VII "Cosine Similarity" column scores query pairs with
embeddings from their production embedding-retrieval model (DPSR [1]).  We
substitute a small two-tower encoder trained on the same synthetic click
log with in-batch softmax — the standard recipe for such retrieval models.
"""

from repro.embedding.dual_encoder import DualEncoder, DualEncoderConfig, train_dual_encoder

__all__ = ["DualEncoder", "DualEncoderConfig", "train_dual_encoder"]
