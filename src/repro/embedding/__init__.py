"""Embedding retrieval (DPSR-like dual encoder).

The paper's Table VII "Cosine Similarity" column scores query pairs with
embeddings from their production embedding-retrieval model (DPSR [1]).  We
substitute a small two-tower encoder trained on the same synthetic click
log with in-batch softmax — the standard recipe for such retrieval models.

Beyond scoring query pairs, the encoder is the embedding source of the
semantic retrieval tier: :mod:`repro.search.vector` builds its IVF ANN
index over ``encode_titles`` output and probes it with ``encode_query``
vectors (``docs/SEMANTIC.md``).

Thread safety: a trained encoder is read-only at inference time and safe
to share across search threads; training itself is single-threaded.
"""

from repro.embedding.dual_encoder import DualEncoder, DualEncoderConfig, train_dual_encoder

__all__ = ["DualEncoder", "DualEncoderConfig", "train_dual_encoder"]
