"""Sliding-window streaming gauges for long-running replays.

:class:`~repro.core.serving.ServingStats` keeps *every* latency sample and
re-sorts the full list on each percentile call — fine for a benchmark that
reads percentiles once at the end, O(n log n) per read and unbounded
memory for a service that reports gauges continuously.  ``WindowedStats``
is the long-run replacement: a bounded ring of the most recent samples
kept in sorted order incrementally, so

* ``record`` is O(log w) to locate + O(w) to shift within the fixed-size
  window (w is a constant, independent of stream length);
* every percentile read is O(1) (index into the maintained sorted array);
* memory is O(w) no matter how many requests the replay serves.

Alongside latency percentiles the window tracks the serving-quality
gauges the freshness subsystem cares about: hit rate, stale-serve rate,
and empty-serve rate, each over the same sliding window, plus lifetime
totals for end-of-run reporting.
"""

from __future__ import annotations

import math
from bisect import bisect_left, insort
from collections import deque


class WindowedStats:
    """Streaming gauges over the last ``window`` requests (plus lifetime totals).

    A *stale* serve is a cache hit whose entry predates the last catalog
    churn affecting the query; an *empty* serve returned no rewrites from
    any tier.  Both are quality failures the freshness controller exists
    to reduce.
    """

    def __init__(self, window: int = 2048):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        #: (latency_ms, hit, stale, empty), oldest first
        self._records: deque[tuple[float, bool, bool, bool]] = deque()
        self._sorted: list[float] = []  # the window's latencies, ascending
        self._latency_sum = 0.0
        self._hits = 0
        self._stale = 0
        self._empty = 0
        # lifetime counters, never windowed away
        self.total_requests = 0
        self.total_hits = 0
        self.total_stale = 0
        self.total_empty = 0
        #: union count — a serve that is both stale and empty is one
        #: degraded serve, not two
        self.total_stale_or_empty = 0

    # -- recording -----------------------------------------------------------
    def record(
        self,
        latency_ms: float,
        *,
        hit: bool = False,
        stale: bool = False,
        empty: bool = False,
    ) -> None:
        """Record one serve: O(log w) locate + O(w) in-window shift."""
        if len(self._records) == self.window:
            old_latency, old_hit, old_stale, old_empty = self._records.popleft()
            del self._sorted[bisect_left(self._sorted, old_latency)]
            self._latency_sum -= old_latency
            self._hits -= old_hit
            self._stale -= old_stale
            self._empty -= old_empty
        self._records.append((latency_ms, hit, stale, empty))
        insort(self._sorted, latency_ms)
        self._latency_sum += latency_ms
        self._hits += hit
        self._stale += stale
        self._empty += empty
        self.total_requests += 1
        self.total_hits += hit
        self.total_stale += stale
        self.total_empty += empty
        self.total_stale_or_empty += stale or empty

    def __len__(self) -> int:
        """Samples currently in the window."""
        return len(self._records)

    # -- windowed gauges -----------------------------------------------------
    @property
    def hit_rate(self) -> float:
        """Cache-hit fraction over the current window."""
        return self._hits / len(self._records) if self._records else 0.0

    @property
    def stale_rate(self) -> float:
        """Stale-serve fraction over the current window."""
        return self._stale / len(self._records) if self._records else 0.0

    @property
    def empty_rate(self) -> float:
        """Empty-serve fraction over the current window."""
        return self._empty / len(self._records) if self._records else 0.0

    def mean_latency_ms(self) -> float:
        """Mean latency over the window (O(1): a maintained running sum)."""
        return self._latency_sum / len(self._records) if self._records else 0.0

    def percentile_latency_ms(self, q: float) -> float:
        """Nearest-rank percentile over the window — an O(1) array index."""
        if not (0.0 < q <= 1.0):
            raise ValueError("q must be in (0, 1]")
        if not self._sorted:
            return 0.0
        return self._sorted[math.ceil(q * len(self._sorted)) - 1]

    def p50_latency_ms(self) -> float:
        """Windowed median latency."""
        return self.percentile_latency_ms(0.50)

    def p95_latency_ms(self) -> float:
        """Windowed 95th-percentile latency."""
        return self.percentile_latency_ms(0.95)

    def p99_latency_ms(self) -> float:
        """Windowed 99th-percentile latency."""
        return self.percentile_latency_ms(0.99)

    # -- lifetime gauges -----------------------------------------------------
    @property
    def lifetime_hit_rate(self) -> float:
        """Cache-hit fraction over the whole run, never windowed away."""
        return self.total_hits / self.total_requests if self.total_requests else 0.0

    @property
    def lifetime_stale_rate(self) -> float:
        """Stale-serve fraction over the whole run."""
        return self.total_stale / self.total_requests if self.total_requests else 0.0

    @property
    def lifetime_empty_rate(self) -> float:
        """Empty-serve fraction over the whole run."""
        return self.total_empty / self.total_requests if self.total_requests else 0.0

    @property
    def lifetime_stale_or_empty_rate(self) -> float:
        """Degraded-serve fraction (stale OR empty counts once)."""
        if not self.total_requests:
            return 0.0
        return self.total_stale_or_empty / self.total_requests
