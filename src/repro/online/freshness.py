"""Cache freshness under catalog churn.

The cache tier precomputes rewrites for head queries; the catalog and
click log keep moving underneath it.  Left alone, a bounded TTL cache
degrades two ways:

* **staleness** — an entry written before a churn event keeps serving
  rewrites computed against the old catalog until its TTL runs out;
* **expiry misses** — when the TTL does run out, the next request for
  that head query pays a model-tier decode (and, before the accounting
  fixes, the expired entry kept occupying capacity meanwhile).

:class:`FreshnessController` closes both gaps for a managed set of head
queries.  On a churn event it *invalidates and immediately re-populates*
the entries of the affected categories, so post-churn requests are served
fresh.  On every tick it sweeps expired entries out of the cache
(:meth:`~repro.core.cache.RewriteCache.purge_expired`, reclaiming
capacity for live entries) and *refresh-ahead* re-populates entries whose
TTL is about to run out, so head queries never fault through to the model
tier at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.cache import RewriteCache
from repro.text import normalize


@dataclass
class FreshnessReport:
    """What the controller did over a run."""

    #: entries deleted because their category churned
    invalidated: int = 0
    #: churn-triggered re-populations that stored a fresh entry
    refreshed: int = 0
    #: refresh-ahead re-populations of entries close to expiry
    proactive_refreshed: int = 0
    #: expired entries swept out by the per-tick purge
    purged_expired: int = 0


class FreshnessController:
    """Keeps a head-query cache fresh against churn and TTL expiry.

    Parameters
    ----------
    cache:
        The serving cache tier.  Must share its clock with whoever calls
        :meth:`tick` (in a replay, the :class:`~repro.online.VirtualClock`).
    rewriter:
        Any object with ``rewrite(query, k) -> list[RewriteResult]``; used
        to re-populate invalidated/expiring entries.
    head_queries:
        query text -> category for the managed head set.  Only these are
        re-populated; entries promoted into the cache by model-tier
        write-back are left to LRU/TTL discipline.
    max_rewrites:
        ``k`` passed to the rewriter on re-population.
    refresh_margin_seconds:
        Entries whose TTL runs out within this margin are re-populated on
        :meth:`tick`; ``0`` disables refresh-ahead (the purge still runs).
    tick_interval_seconds:
        Minimum (cache-clock) time between two ticks actually doing work;
        calls inside the interval return immediately.  Both tick duties —
        the expired sweep and the refresh-ahead scan — are O(cache
        entries), and freshness only changes at TTL granularity, so a
        caller can invoke :meth:`tick` per serving batch and let the
        controller decide when scanning is worth it.  ``0`` (default)
        scans on every call.
    """

    def __init__(
        self,
        cache: RewriteCache,
        rewriter,
        head_queries: Mapping[str, str],
        *,
        max_rewrites: int = 3,
        refresh_margin_seconds: float = 0.0,
        tick_interval_seconds: float = 0.0,
    ):
        if refresh_margin_seconds < 0:
            raise ValueError("refresh_margin_seconds must be >= 0")
        if tick_interval_seconds < 0:
            raise ValueError("tick_interval_seconds must be >= 0")
        self.cache = cache
        self.rewriter = rewriter
        self.max_rewrites = max_rewrites
        self.refresh_margin_seconds = refresh_margin_seconds
        self.tick_interval_seconds = tick_interval_seconds
        self._next_tick_at: float | None = None
        self._by_category: dict[str, list[str]] = {}
        self._query_by_key: dict[str, str] = {}
        for query, category in head_queries.items():
            self._by_category.setdefault(category, []).append(query)
            self._query_by_key[normalize(query)] = query
        self.report = FreshnessReport()

    # -- event handlers ------------------------------------------------------
    def on_churn(self, categories) -> int:
        """Invalidate + re-populate head entries of the churned categories.

        Returns the number of entries invalidated.  Re-population happens
        immediately (not lazily on next request): these are head queries,
        so the next request is at most a batch away, and a freshly-stamped
        entry is what makes the post-churn serve *not* stale.
        """
        invalidated = 0
        for category in sorted(set(categories)):
            for query in self._by_category.get(category, ()):
                if self.cache.delete(query):
                    invalidated += 1
                self._repopulate(query, proactive=False)
        self.report.invalidated += invalidated
        return invalidated

    def tick(self) -> None:
        """Periodic maintenance: sweep expired entries, refresh-ahead.

        Call as often as convenient (e.g. once per serving batch);
        ``tick_interval_seconds`` rate-limits the O(cache entries) scans
        to the cadence freshness actually changes at.
        """
        if self.tick_interval_seconds > 0:
            now = self.cache.clock()
            if self._next_tick_at is not None and now < self._next_tick_at:
                return
            self._next_tick_at = now + self.tick_interval_seconds
        self.report.purged_expired += self.cache.purge_expired()
        if self.refresh_margin_seconds > 0:
            for key in self.cache.expiring_within(self.refresh_margin_seconds):
                query = self._query_by_key.get(key)
                if query is not None:
                    self._repopulate(query, proactive=True)

    # -- internals -----------------------------------------------------------
    def _repopulate(self, query: str, *, proactive: bool) -> None:
        results = self.rewriter.rewrite(query, k=self.max_rewrites)
        rewrites = [r.text for r in results]
        if not rewrites:
            # Never store an entry that can never be served; the query
            # simply falls through to the model tier like any tail query.
            return
        self.cache.put(query, rewrites)
        if proactive:
            self.report.proactive_refreshed += 1
        else:
            self.report.refreshed += 1
