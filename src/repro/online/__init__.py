"""Online freshness subsystem: live-traffic replay under catalog churn.

The serving tier (``repro.core``) precomputes rewrites for head queries;
this package models what production does to that plan: traffic keeps
arriving while the catalog churns underneath, cached rewrites go stale,
TTLs run out, and the index must follow every listing/delisting without a
rebuild.  See ``docs/ONLINE.md`` for the full story.

Exported pieces:

* :class:`VirtualClock` / :class:`WallClock` — the clock protocol's two
  implementations: an explicitly-advanced virtual time source shared by
  the cache, the controller, and the staleness accounting (so replays
  are deterministic), and a latched real-time source that drives the
  same scheduler behind the live :mod:`repro.gateway` front door.
* :class:`WindowedStats` — sliding-window streaming gauges (hit rate,
  stale/empty-serve rates, p50/p95/p99 latency) with O(1) percentile
  reads and O(window) memory, replacing full-sort percentiles for long
  runs.
* :class:`TrafficReplay` / :class:`ReplayConfig` / :class:`ReplayReport`
  / :class:`Request` / :class:`ChurnEvent` — the precomputed head/tail
  request stream interleaved with catalog churn, replayable identically
  through multiple serving stacks.
* :class:`FreshnessController` / :class:`FreshnessReport` — churn-driven
  invalidation + re-population, expired-entry sweeps, and refresh-ahead
  for entries close to TTL expiry.
* :class:`MicroBatchScheduler` / :class:`SchedulerConfig` /
  :class:`ScheduledRequest` / :class:`CompletedRequest` /
  :class:`SchedulerReport` — the deterministic load scheduler: dynamic
  micro-batching under size/deadline triggers, priority lanes, and
  bounded-queue admission control in front of the serving pipeline (see
  ``docs/SERVING.md``).
* :class:`Scenario` / :class:`ScenarioConfig` / :class:`ScenarioRunner` /
  :class:`ScenarioOutcome` / :class:`InvariantResult` /
  :data:`SCENARIOS` / :func:`run_scenario` — the multi-tenant scenario
  library: named adversarial replay arms with pinned pass/fail
  invariants driven through the whole stack above (see
  ``docs/SCENARIOS.md``).
"""

from repro.online.clock import VirtualClock, WallClock
from repro.online.freshness import FreshnessController, FreshnessReport
from repro.online.replay import (
    ChurnEvent,
    ReplayConfig,
    ReplayReport,
    Request,
    TrafficReplay,
)
from repro.online.scheduler import (
    CompletedRequest,
    MicroBatchScheduler,
    ScheduledRequest,
    SchedulerConfig,
    SchedulerReport,
)
from repro.online.scenarios import (
    SCENARIOS,
    InvariantResult,
    Scenario,
    ScenarioConfig,
    ScenarioOutcome,
    ScenarioRunner,
    TenantState,
    get_scenario,
    run_scenario,
)
from repro.online.stats import WindowedStats

__all__ = [
    "VirtualClock",
    "WallClock",
    "WindowedStats",
    "TrafficReplay",
    "ReplayConfig",
    "ReplayReport",
    "Request",
    "ChurnEvent",
    "FreshnessController",
    "FreshnessReport",
    "MicroBatchScheduler",
    "SchedulerConfig",
    "ScheduledRequest",
    "CompletedRequest",
    "SchedulerReport",
    "Scenario",
    "ScenarioConfig",
    "ScenarioRunner",
    "ScenarioOutcome",
    "InvariantResult",
    "TenantState",
    "SCENARIOS",
    "get_scenario",
    "run_scenario",
]
