"""Deterministic load scheduler: dynamic micro-batching + admission control.

Every benchmark so far hand-formed its request batches; production
traffic arrives one request at a time, bursty and head-skewed.
:class:`MicroBatchScheduler` is the layer between arriving requests and
the :class:`~repro.core.serving.ServingPipeline`: it accepts single
rewrite/search requests stamped with (virtual) arrival times, forms
dynamic micro-batches, and drives ``serve_batch`` / ``search_batch``
from a worker loop clocked by the shared
:class:`~repro.online.clock.VirtualClock`.

**Batch formation** — a batch for a request kind dispatches when either

* ``max_batch_size`` requests of that kind are pending (size trigger), or
* the oldest pending request of that kind has waited
  ``max_wait_seconds`` (deadline trigger);

whichever comes first, and never before the (virtual) worker is free.
With an idle worker this bounds every admitted request's queueing delay
by ``max_wait_seconds`` exactly.

**Priority lanes** — requests carry a lane number (0 = highest
priority).  A dispatching batch drains lane 0 first, then lane 1, and so
on, FIFO within each lane, so high-priority requests are never stuck
behind a lower lane's backlog.

**Admission control** — the queue is bounded by ``max_queue_depth``.
When full, an arriving request is shed — unless a strictly
lower-priority request is pending, in which case the *youngest* request
of the lowest-priority non-empty lane is shed instead and the arrival is
admitted.  Admitted/shed totals are mirrored into
:class:`~repro.core.serving.ServingStats` (``admitted`` / ``shed``) so
the serving tier's own telemetry shows the backpressure.

**Service-time model** — real workers are busy while a batch decodes.
``batch_cost_seconds + len(batch) * request_cost_seconds`` of *virtual*
time models that occupancy: while the virtual worker is busy no batch
dispatches, queues grow, and admission control starts shedding — the
overload regime, reproduced deterministically.  Both costs default to 0
(an infinitely fast worker), which makes the ``max_wait_seconds``
queueing-delay bound exact.

**Determinism** — the loop is a virtual-time event simulation: the only
state is the submit order, the clock, and the config, so two replays of
the same trace produce byte-identical
:meth:`~repro.core.serving.ServingStats.counters` and
:meth:`SchedulerReport.fingerprint`.  Wall-clock time appears nowhere in
the scheduling decisions (the pipeline still measures wall latencies,
which are excluded from both fingerprints).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field

from repro.core.serving import ServedRewrite, ServedSearch, ServingPipeline
from repro.online.clock import VirtualClock

#: request kinds the scheduler batches independently of each other
REQUEST_KINDS = ("rewrite", "search")


@dataclass(frozen=True)
class SchedulerConfig:
    """Batch-formation, admission, and service-model knobs."""

    #: size trigger: dispatch as soon as this many requests of one kind wait
    max_batch_size: int = 32
    #: deadline trigger: no admitted request queues longer than this
    #: (virtual seconds) while the worker keeps up
    max_wait_seconds: float = 0.5
    #: bound on total pending requests across all lanes and kinds
    max_queue_depth: int = 1024
    #: priority lanes; lane 0 is served first
    num_lanes: int = 2
    #: virtual worker occupancy per dispatched batch ...
    batch_cost_seconds: float = 0.0
    #: ... plus per request in the batch (0/0 = infinitely fast worker)
    request_cost_seconds: float = 0.0

    def __post_init__(self):
        """Validate the policy (every knob has a hard floor)."""
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_wait_seconds < 0:
            raise ValueError("max_wait_seconds must be >= 0")
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if self.num_lanes < 1:
            raise ValueError("num_lanes must be >= 1")
        if self.batch_cost_seconds < 0 or self.request_cost_seconds < 0:
            raise ValueError("service costs must be >= 0")


@dataclass(frozen=True)
class ScheduledRequest:
    """One request as the scheduler sees it: payload + arrival + lane."""

    query: str
    #: virtual arrival time; submissions must be in non-decreasing order
    arrival_seconds: float
    #: priority lane, 0 (highest) .. num_lanes-1
    lane: int = 0
    #: "rewrite" (serve_batch) or "search" (search_batch, end to end)
    kind: str = "rewrite"
    #: retrieval mode for search requests (None = engine default)
    mode: str | None = None


@dataclass(frozen=True)
class CompletedRequest:
    """A dispatched request plus its scheduling outcome."""

    request: ScheduledRequest
    #: what the pipeline returned (ServedRewrite or ServedSearch)
    outcome: ServedRewrite | ServedSearch
    #: virtual time the batch dispatched
    dispatched_at: float
    #: virtual seconds spent queueing (dispatched_at - arrival)
    queue_delay_seconds: float
    #: size of the micro-batch this request rode in
    batch_size: int


@dataclass
class SchedulerReport:
    """Deterministic accounting of one scheduler run."""

    admitted: int = 0
    shed: int = 0
    completed: int = 0
    batches: int = 0
    #: dispatches triggered by a full batch vs a deadline expiry
    size_triggered: int = 0
    deadline_triggered: int = 0
    #: sheds per lane (index = lane)
    shed_by_lane: list[int] = field(default_factory=list)
    #: admitted per lane (index = lane)
    admitted_by_lane: list[int] = field(default_factory=list)
    #: deepest the pending queue ever got
    peak_queue_depth: int = 0
    #: virtual queueing delay of every completed request, dispatch order
    queue_delays_seconds: list[float] = field(default_factory=list)
    #: size of every dispatched batch, dispatch order
    batch_sizes: list[int] = field(default_factory=list)

    def mean_queue_delay_seconds(self) -> float:
        """Mean virtual queueing delay over all completed requests."""
        if not self.queue_delays_seconds:
            return 0.0
        return sum(self.queue_delays_seconds) / len(self.queue_delays_seconds)

    def percentile_queue_delay_seconds(self, q: float) -> float:
        """Nearest-rank percentile of the virtual queueing delay."""
        if not (0.0 < q <= 1.0):
            raise ValueError("q must be in (0, 1]")
        if not self.queue_delays_seconds:
            return 0.0
        ordered = sorted(self.queue_delays_seconds)
        return ordered[math.ceil(q * len(ordered)) - 1]

    def p95_queue_delay_seconds(self) -> float:
        """95th-percentile virtual queueing delay."""
        return self.percentile_queue_delay_seconds(0.95)

    def mean_batch_size(self) -> float:
        """Mean dispatched micro-batch size."""
        if not self.batch_sizes:
            return 0.0
        return sum(self.batch_sizes) / len(self.batch_sizes)

    def fingerprint(self) -> tuple:
        """Hashable digest of everything deterministic in this report.

        Two replays of the same trace under the same policy must produce
        equal fingerprints — the load-replay determinism acceptance.
        """
        return (
            self.admitted,
            self.shed,
            self.completed,
            self.batches,
            self.size_triggered,
            self.deadline_triggered,
            tuple(self.shed_by_lane),
            tuple(self.admitted_by_lane),
            self.peak_queue_depth,
            tuple(self.queue_delays_seconds),
            tuple(self.batch_sizes),
        )


class _Lane:
    """FIFO of pending requests for one (kind, priority) pair."""

    __slots__ = ("pending",)

    def __init__(self):
        self.pending: deque[ScheduledRequest] = deque()


class MicroBatchScheduler:
    """Virtual-clocked worker loop between single requests and the pipeline.

    Drive it with :meth:`submit` in arrival order, then :meth:`drain`.
    ``submit`` advances the shared clock to the request's arrival time,
    dispatching any batch whose size or deadline trigger fires on the
    way, so the caller never manages batch boundaries — exactly the
    contract a request-at-a-time client has with a serving tier.

    ``on_batch`` (optional) is called once per dispatched batch with the
    list of :class:`CompletedRequest` — the hook the traffic replay uses
    for staleness accounting at the moment each request is actually
    served.  Completions are also collected in :attr:`completed`.

    ``on_shed`` (optional) is called with each :class:`ScheduledRequest`
    that admission control sheds — the arriving request itself when
    nothing lower-priority is pending, or the evicted victim when the
    arrival displaces a queued request.  Together with ``on_batch`` this
    gives every submitted request exactly one completion *or* one shed
    notification, which is what lets an async front door (the
    :mod:`repro.gateway` bridge) resolve a future per request without
    polling.  Both callbacks observe only outcomes; they cannot change a
    scheduling decision, so fingerprints are callback-invariant.

    Not thread-safe by design: determinism comes from a single logical
    event loop.  Concurrency lives below (the pipeline's sharded engine
    fan-out) and above (independent scheduler instances per arm).
    """

    def __init__(
        self,
        pipeline: ServingPipeline,
        clock: VirtualClock,
        config: SchedulerConfig | None = None,
        *,
        on_batch=None,
        on_shed=None,
    ):
        """``pipeline`` must have a search engine if search requests are
        submitted; ``clock`` is shared with the cache/freshness stack."""
        self.pipeline = pipeline
        self.clock = clock
        self.config = config or SchedulerConfig()
        self.on_batch = on_batch
        self.on_shed = on_shed
        self.report = SchedulerReport(
            shed_by_lane=[0] * self.config.num_lanes,
            admitted_by_lane=[0] * self.config.num_lanes,
        )
        self.completed: list[CompletedRequest] = []
        self._lanes: dict[str, list[_Lane]] = {
            kind: [_Lane() for _ in range(self.config.num_lanes)]
            for kind in REQUEST_KINDS
        }
        self._depth = 0
        self._busy_until = 0.0

    # -- introspection -------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Pending requests across all kinds and lanes."""
        return self._depth

    def pending_of(self, kind: str) -> int:
        """Pending requests of one kind across its lanes."""
        return sum(len(lane.pending) for lane in self._lanes[kind])

    # -- event loop ----------------------------------------------------------
    def submit(self, request: ScheduledRequest) -> bool:
        """Admit (or shed) one request arriving at its stamped time.

        Advances the clock to ``request.arrival_seconds`` first,
        dispatching every batch due before then — the worker loop runs
        *between* arrivals, as it would in real time.  Returns True if
        the request was admitted.
        """
        if request.kind not in self._lanes:
            raise ValueError(
                f"unknown request kind {request.kind!r}; "
                f"expected one of {', '.join(REQUEST_KINDS)}"
            )
        if not 0 <= request.lane < self.config.num_lanes:
            raise ValueError(
                f"lane {request.lane} out of range for {self.config.num_lanes} lanes"
            )
        if request.arrival_seconds < self.clock.now():
            raise ValueError(
                f"arrival {request.arrival_seconds} is in the past "
                f"(now={self.clock.now()}); submit in arrival order"
            )
        self.advance_to(request.arrival_seconds)

        if self._depth >= self.config.max_queue_depth:
            victim = self._shed_victim(request.lane)
            if victim is None:
                # Nothing strictly less important is waiting: shed the arrival.
                self._shed(request)
                return False
            # Make room by shedding the youngest request of the lowest lane.
            victim_kind, victim_lane = victim
            victim_request = self._lanes[victim_kind][victim_lane].pending.pop()
            self._depth -= 1
            self._shed(victim_request)
        self._lanes[request.kind][request.lane].pending.append(request)
        self._depth += 1
        self.report.admitted += 1
        self.report.admitted_by_lane[request.lane] += 1
        self.report.peak_queue_depth = max(self.report.peak_queue_depth, self._depth)
        self.pipeline.stats.admitted += 1
        # The arrival itself may complete a batch: dispatch immediately.
        self._run_due(self.clock.now())
        return True

    def advance_to(self, t: float) -> None:
        """Move virtual time forward to ``t``, dispatching batches due
        on the way (each at its own trigger time, in order)."""
        self._run_due(t)
        now = self.clock.now()
        if t > now:
            self.clock.advance(t - now)

    def drain(self) -> SchedulerReport:
        """Dispatch everything still pending (advancing the clock past
        each remaining trigger) and return the final report."""
        while self._depth:
            due = self._next_dispatch()
            assert due is not None  # _depth > 0 guarantees a trigger exists
            self._dispatch(*due)
        return self.report

    # -- internals -----------------------------------------------------------
    def _shed(self, request: ScheduledRequest) -> None:
        self.report.shed += 1
        self.report.shed_by_lane[request.lane] += 1
        self.pipeline.stats.shed += 1
        if self.on_shed is not None:
            self.on_shed(request)

    def _shed_victim(self, arriving_lane: int) -> tuple[str, int] | None:
        """The (kind, lane) whose youngest pending request should be shed
        to admit an arrival in ``arriving_lane``.

        The queue bound is global across kinds, so the victim search is
        too: the lowest-priority non-empty lane of *any* kind, provided
        it is strictly lower priority than the arrival; within that lane
        the youngest request across kinds (latest arrival, ties broken
        by fixed kind order).  None if nothing strictly less important
        is pending."""
        for lane in range(self.config.num_lanes - 1, arriving_lane, -1):
            best: tuple[float, int, str] | None = None
            for order, kind in enumerate(REQUEST_KINDS):
                pending = self._lanes[kind][lane].pending
                if pending:
                    key = (pending[-1].arrival_seconds, order, kind)
                    if best is None or key > best:
                        best = key
            if best is not None:
                return best[2], lane
        return None

    def _oldest_arrival(self, kind: str) -> float | None:
        heads = [
            lane.pending[0].arrival_seconds
            for lane in self._lanes[kind]
            if lane.pending
        ]
        return min(heads) if heads else None

    def _next_dispatch(self) -> tuple[float, str, str] | None:
        """Earliest (time, kind, trigger) any pending batch can dispatch.

        Size-triggered kinds can go as soon as the worker frees up;
        otherwise the oldest request's deadline fires the batch.  Ties
        resolve by older oldest-arrival, then by fixed kind order, so
        the loop is deterministic.
        """
        now = self.clock.now()
        best: tuple[float, float, int, str, str] | None = None
        for order, kind in enumerate(REQUEST_KINDS):
            oldest = self._oldest_arrival(kind)
            if oldest is None:
                continue
            if self.pending_of(kind) >= self.config.max_batch_size:
                at = max(now, self._busy_until)
                trigger = "size"
            else:
                at = max(oldest + self.config.max_wait_seconds, self._busy_until)
                trigger = "deadline"
            key = (at, oldest, order, kind, trigger)
            if best is None or key < best:
                best = key
        if best is None:
            return None
        at, _, _, kind, trigger = best
        return at, kind, trigger

    def _run_due(self, until: float) -> None:
        while True:
            due = self._next_dispatch()
            if due is None or due[0] > until:
                return
            self._dispatch(*due)

    def _take_batch(self, kind: str) -> list[ScheduledRequest]:
        batch: list[ScheduledRequest] = []
        for lane in self._lanes[kind]:
            while lane.pending and len(batch) < self.config.max_batch_size:
                batch.append(lane.pending.popleft())
            if len(batch) == self.config.max_batch_size:
                break
        self._depth -= len(batch)
        return batch

    def _dispatch(self, at: float, kind: str, trigger: str) -> None:
        now = self.clock.now()
        if at > now:
            self.clock.advance(at - now)
        batch = self._take_batch(kind)
        if kind == "search":
            modes = [request.mode for request in batch]
            if all(mode is None for mode in modes):
                modes = None  # mode-less engines take no mode kwarg
            outcomes = self.pipeline.search_batch(
                [request.query for request in batch], modes=modes
            )
        else:
            outcomes = self.pipeline.serve_batch(
                [request.query for request in batch]
            )
        self._busy_until = at + (
            self.config.batch_cost_seconds
            + len(batch) * self.config.request_cost_seconds
        )
        completions = [
            CompletedRequest(
                request=request,
                outcome=outcome,
                dispatched_at=at,
                queue_delay_seconds=at - request.arrival_seconds,
                batch_size=len(batch),
            )
            for request, outcome in zip(batch, outcomes)
        ]
        self.completed.extend(completions)
        self.report.completed += len(completions)
        self.report.batches += 1
        if trigger == "size":
            self.report.size_triggered += 1
        else:
            self.report.deadline_triggered += 1
        self.report.queue_delays_seconds.extend(
            c.queue_delay_seconds for c in completions
        )
        self.report.batch_sizes.append(len(batch))
        if self.on_batch is not None:
            self.on_batch(completions)
