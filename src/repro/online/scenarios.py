"""Multi-tenant scenario library with adversarial replay arms.

Every online harness so far answered one question well ("does freshness
beat no-freshness", "does admission control shed under overload") but
each invented its own driver.  This module turns those one-off drivers
into a **library of pinned scenarios**: a :class:`Scenario` couples a
deterministic trace builder with a set of pass/fail **invariants** whose
bars are pinned in code, so any regression in the serving stack — a
cache leak across tenants, a dead document served after delisting, a
batch scheduler stall — fails a named bar instead of shifting a number
nobody is watching.

The library drives the *existing* stack — :class:`~repro.online.replay.
TrafficReplay` builds each tenant's schedule, a per-tenant
:class:`~repro.online.scheduler.MicroBatchScheduler` forms batches over
one shared :class:`~repro.online.clock.VirtualClock`, and a per-tenant
:class:`~repro.online.freshness.FreshnessController` keeps head entries
fresh — so scenario semantics (churn lockstep, staleness definition)
can never diverge from the single-arm harnesses.

Registered scenarios (:data:`SCENARIOS`):

* ``multi_tenant`` — N marketplaces with disjoint catalogs and
  namespaced cache views interleave traffic through per-tenant
  schedulers; isolation invariants pin zero cross-tenant serves and
  per-tenant counters summing to the global totals.
* ``hot_key_storm`` — a mid-trace window collapses onto the single
  hottest head query; bars pin cache absorption (no shedding, high
  storm-window hit rate, bounded queue delay).
* ``churn_storm`` — churn cadence and payload multiplied; bars pin
  zero dead-document serves, index-size lockstep, and a stale-serve
  ceiling the freshness controller must hold.
* ``cold_restart`` — the cache node restarts mid-trace (a fresh, empty
  cache swaps in); bars pin the hit-rate crater *and* the recovery.
* ``cold_restart_persistent`` — the same incident, but the node also
  loses its index and restores it from on-disk :mod:`repro.store`
  segments instead of rebuilding from the catalog; bars additionally
  pin that the restored index matches the live one exactly and that
  restore beats rebuild.
* ``vocab_drift`` — a new brand floods the query stream while its
  products list mid-trace; bars pin that the semantic-capable hybrid
  tier adopts the new vocabulary end to end.
* ``shard_failover`` — the tenant serves through a two-replica
  :class:`~repro.cluster.ReplicaRouter`; one replica is killed
  mid-trace and later respawned from a shipped snapshot.  Bars pin
  that failover is transparent: every retrieval result is
  byte-identical to a healthy twin run, the scheduler sheds nothing,
  and the respawned replica restores the same generation (equal
  per-shard digests).

Isolation is modelled physically: tenants share one physical
:class:`~repro.core.cache.RewriteCache` through
:meth:`~repro.core.cache.RewriteCache.tenant_view` namespacing, and
tenant catalogs live in disjoint document-id ranges
(``CatalogConfig.product_id_base``).  Setting
``ScenarioConfig.namespace_cache=False`` removes the namespacing — the
deliberately broken deployment whose isolation invariant must FAIL,
which is how ``benchmarks/test_scenarios.py`` proves the gates can
actually catch a regression.  See ``docs/SCENARIOS.md``.
"""

from __future__ import annotations

import dataclasses
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.baselines.rule_based import RuleBasedRewriter
from repro.cluster import ReplicaRouter
from repro.core.cache import RewriteCache
from repro.core.serving import (
    ServedSearch,
    ServingConfig,
    ServingPipeline,
    sum_counters,
)
from repro.data.catalog import CATEGORY_SPECS, CatalogConfig, CatalogGenerator
from repro.data.clicklog import ClickLogConfig
from repro.data.domain import Product
from repro.data.marketplace import MarketplaceConfig, generate_marketplace
from repro.data.synonyms import build_rule_dictionary
from repro.online.clock import VirtualClock
from repro.online.freshness import FreshnessController
from repro.online.replay import ChurnEvent, ReplayConfig, Request, TrafficReplay
from repro.online.scheduler import (
    MicroBatchScheduler,
    ScheduledRequest,
    SchedulerConfig,
)
from repro.online.stats import WindowedStats
from repro.search.engine import SearchConfig
from repro.search.sharded import ShardedIndex, ShardedSearchEngine, resolve_backend
from repro.store import SegmentStore
from repro.text import normalize


@dataclass(frozen=True)
class ScenarioConfig:
    """Shared knobs of every scenario (arms override via :meth:`Scenario.adjust`).

    One config drives tenant construction (marketplace size, id spaces),
    the replayed stream (length, churn cadence, probe cadence), the cache
    tier (capacity, TTL, namespacing) and the scheduler policy, so a
    scenario is reproducible from ``(scenario name, config)`` alone.
    """

    #: marketplaces replayed concurrently (arms may pin this to 1)
    num_tenants: int = 2
    #: requests each tenant's schedule emits
    requests_per_tenant: int = 400
    #: catalog size knob per tenant (products per category)
    products_per_category: int = 4
    #: click-log sessions simulated per tenant
    num_sessions: int = 300
    #: zipf-weighted query-universe size per tenant
    intent_pool_size: int = 60
    #: top fraction of click-ranked queries treated as the head set
    head_fraction: float = 0.4
    #: physical cache capacity shared by ALL tenants (views share the store)
    cache_capacity: int = 512
    #: cache TTL in virtual seconds (0 disables expiry)
    cache_ttl_seconds: float = 6.0
    #: shards of the physical cache
    cache_shards: int = 4
    #: scheduler size trigger
    max_batch_size: int = 16
    #: scheduler deadline trigger (virtual seconds)
    max_wait_seconds: float = 0.25
    #: scheduler admission bound (per tenant)
    max_queue_depth: int = 256
    #: mean Poisson inter-arrival gap (virtual seconds)
    seconds_per_request: float = 0.02
    #: a churn event lands after every this-many requests (per tenant)
    churn_every: int = 120
    #: products listed / delisted per churn event
    churn_adds: int = 3
    churn_removes: int = 3
    #: every ``search_every``-th request per tenant goes end to end
    #: through retrieval (deterministic, batch-size independent)
    search_every: int = 8
    #: sliding window of the streaming gauges
    window: int = 512
    #: refresh-ahead margin of the per-tenant freshness controller
    refresh_margin_seconds: float = 1.0
    #: minimum virtual time between controller maintenance scans
    tick_interval_seconds: float = 0.5
    #: document-id stride separating tenant catalogs; tenant ``i`` owns
    #: ids in ``[i * stride, (i+1) * stride)``
    tenant_id_stride: int = 1_000_000
    #: True: per-tenant namespaced views over the shared physical cache.
    #: False: every tenant uses the raw shared store — the deliberately
    #: broken deployment whose isolation invariant must fail.
    namespace_cache: bool = True
    seed: int = 0

    def __post_init__(self):
        """Reject configurations that cannot produce a meaningful run."""
        if self.num_tenants < 1:
            raise ValueError(f"num_tenants must be >= 1, got {self.num_tenants}")
        if self.requests_per_tenant < 1:
            raise ValueError(
                f"requests_per_tenant must be >= 1, got {self.requests_per_tenant}"
            )
        if self.tenant_id_stride < 10_000:
            raise ValueError(
                "tenant_id_stride must leave room for catalogs + churn "
                f"(>= 10000), got {self.tenant_id_stride}"
            )
        if self.search_every < 1:
            raise ValueError(f"search_every must be >= 1, got {self.search_every}")

    def scaled(self, factor: float) -> "ScenarioConfig":
        """This config with its workload shrunk/grown by ``factor``.

        Scales the per-tenant request count, marketplace size and churn
        cadence together (with floors that keep every scenario's windows
        non-degenerate), leaving policy knobs and bars untouched — the
        smoke-scale path of the experiments CLI.
        """
        if factor <= 0:
            raise ValueError(f"factor must be > 0, got {factor}")
        return dataclasses.replace(
            self,
            requests_per_tenant=max(120, int(self.requests_per_tenant * factor)),
            num_sessions=max(120, int(self.num_sessions * factor)),
            intent_pool_size=max(30, int(self.intent_pool_size * factor)),
            products_per_category=max(3, int(self.products_per_category * factor)),
            churn_every=max(30, int(self.churn_every * factor)),
        )


@dataclass(frozen=True)
class InvariantResult:
    """One pinned pass/fail bar, evaluated against an observed value."""

    #: stable invariant identifier (regression gates key on this)
    name: str
    passed: bool
    #: the measured quantity the bar was compared against
    observed: float
    #: human-readable bar, e.g. ``"== 0"`` or ``">= 0.90"``
    bar: str
    #: what the invariant protects (shown on failure)
    detail: str = ""

    def __str__(self) -> str:
        """``name: observed vs bar [PASS|FAIL]`` one-liner."""
        status = "PASS" if self.passed else "FAIL"
        return f"{self.name}: {self.observed:g} vs {self.bar} [{status}]"


def _freeze(value):
    """Recursively convert dicts/lists into hashable sorted tuples."""
    if isinstance(value, dict):
        return tuple(sorted((key, _freeze(val)) for key, val in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(val) for val in value)
    return value


@dataclass
class ScenarioOutcome:
    """Everything one scenario run produced: telemetry + judged invariants."""

    scenario: str
    config: ScenarioConfig
    invariants: list[InvariantResult]
    #: tenant name -> deterministic telemetry (serving counters, scheduler
    #: fingerprint, isolation tallies, streaming-gauge summaries)
    per_tenant: dict[str, dict]
    #: scenario-specific extras (drift adoption fractions, window rates, ...)
    notes: dict = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        """True when every pinned invariant held."""
        return all(result.passed for result in self.invariants)

    def failures(self) -> list[InvariantResult]:
        """The invariants that did NOT hold (empty on a clean run)."""
        return [result for result in self.invariants if not result.passed]

    def fingerprint(self) -> tuple:
        """Hashable digest of every deterministic quantity in this outcome.

        Two same-seed runs of the same scenario/config must produce equal
        fingerprints — the scenario determinism acceptance.  Includes the
        per-tenant scheduler fingerprints and serving counters, so any
        divergence in batching, admission, tiering or retrieval shows up.
        """
        return (self.scenario, _freeze(self.per_tenant))

    def totals(self) -> dict:
        """Micro-batch-size-invariant projection of the run.

        Batch grouping legitimately changes cache-hit/model splits and
        batch counts (duplicates sharing a batch all miss together), so
        full :meth:`fingerprint` equality only holds for identical
        configs.  These totals — work admitted, completed, shed, churn
        applied, and the isolation/dead-document tallies — must be
        identical across ``max_batch_size`` settings for non-adversarial
        traffic, which is what the determinism gate sweeps.
        """
        keys = (
            "requests",
            "submitted",
            "churn_events",
            "dead_doc_hits",
            "cross_tenant_cache_hits",
            "cross_tenant_doc_serves",
        )
        totals = {
            key: sum(tenant[key] for tenant in self.per_tenant.values())
            for key in keys
        }
        totals["admitted"] = sum(
            tenant["counters"]["admitted"] for tenant in self.per_tenant.values()
        )
        totals["shed"] = sum(
            tenant["counters"]["shed"] for tenant in self.per_tenant.values()
        )
        return totals


@dataclass
class TenantState:
    """Everything one marketplace tenant owns during a scenario run."""

    index: int
    #: tenant label (cache namespace, pipeline telemetry tag)
    name: str
    #: first document id of this tenant's disjoint id range
    id_base: int
    market: object
    engine: object
    cache: RewriteCache
    pipeline: ServingPipeline
    controller: FreshnessController
    replay: TrafficReplay
    scheduler: MicroBatchScheduler
    stats: WindowedStats
    #: head query -> category (pre-populated + freshness-managed set)
    head: dict[str, str]
    #: normalized queries THIS tenant has written into its cache view
    wrote: set[str]
    #: category -> virtual time of the last churn touching it
    last_churn: dict = field(default_factory=dict)
    #: document ids delisted so far (dead-document detection)
    removed_ids: set = field(default_factory=set)
    churn_events: int = 0
    adds_applied: int = 0
    removes_applied: int = 0
    searches: int = 0
    dead_doc_hits: int = 0
    #: cache serves of queries this tenant never wrote (leaks, live)
    cross_tenant_cache_hits: int = 0
    #: retrieved documents outside this tenant's id range
    cross_tenant_doc_serves: int = 0
    #: requests submitted to the scheduler so far
    submitted: int = 0
    #: (request sequence, served-from-cache, query) per completion,
    #: dispatch order
    serve_log: list = field(default_factory=list)
    #: (query, retrieved doc-id tuple) per search completion, dispatch
    #: order — the byte-identity surface for failover arms
    search_log: list = field(default_factory=list)
    #: arrival time -> request sequence number (for window analyses)
    seq_of: dict = field(default_factory=dict)
    initial_products: int = 0
    #: request sequence at which the cache node restarted (cold_restart)
    restarted_at: int | None = None
    #: scenario-specific scratch (drift queries, hot keys, ...)
    notes: dict = field(default_factory=dict)


class Scenario:
    """One named, deterministic serving scenario with pinned invariants.

    A scenario is **stateless**: all run state lives on the
    :class:`ScenarioRunner` and its :class:`TenantState` objects, so one
    registered instance can be run any number of times (and concurrently)
    from any config.  Subclasses override the four hooks below.
    """

    #: registry key (stable; regression gates and the CLI key on it)
    name = "base"
    #: one-line summary shown by the experiments CLI
    description = "abstract scenario"

    def adjust(self, config: ScenarioConfig) -> ScenarioConfig:
        """Pin scenario-specific knobs onto the caller's config."""
        return config

    def build_engine(self, market, config: ScenarioConfig):
        """The per-tenant retrieval engine (default: sharded BM25)."""
        return ShardedSearchEngine(
            market.catalog,
            SearchConfig(ranker="bm25"),
            num_shards=2,
            parallel=False,
        )

    def transform_trace(self, tenant: TenantState, events: list, config: ScenarioConfig) -> list:
        """Rewrite one tenant's arrival trace (inject storms, restarts, ...).

        ``events`` is the tenant's :meth:`TrafficReplay.arrival_trace`
        output — ``(kind, time, payload)`` tuples; the hook may replace
        request payloads or insert ``"churn"``/``"restart"`` events, but
        must keep times non-decreasing.
        """
        return events

    def on_restart(self, runner: "ScenarioRunner", tenant: TenantState) -> None:
        """Handle a ``"restart"`` trace event for ``tenant``.

        The default incident is a cache-node restart:
        :meth:`ScenarioRunner.swap_cache` replaces the tenant's cache
        with a fresh, empty one.  Arms that model a fuller node loss
        (e.g. ``cold_restart_persistent``, which also restores the
        retrieval index from :mod:`repro.store` segments) override this
        and layer their recovery on top of the cache swap.
        """
        runner.swap_cache(tenant)

    def on_failover(
        self, runner: "ScenarioRunner", tenant: TenantState, payload
    ) -> None:
        """Handle a ``"failover"`` trace event for ``tenant``.

        The payload names the injected incident (``"kill"`` /
        ``"respawn"``); the default scenario has no replica tier, so the
        event is a no-op.  ``shard_failover`` overrides this to kill and
        respawn one :class:`~repro.cluster.ReplicaRouter` replica.
        """

    def invariants(self, runner: "ScenarioRunner") -> list[InvariantResult]:
        """Arm-specific pinned bars, appended to the common invariants."""
        return []

    def drive(self, runner: "ScenarioRunner") -> "ScenarioOutcome | None":
        """Take over the whole run, bypassing the merged-trace replay.

        Most arms return None and let :meth:`ScenarioRunner.run` drive
        the standard interleaved replay.  Arms whose harness is not a
        virtual-clock trace — the ``gateway_soak`` arm runs live HTTP
        traffic against a wall-clocked :class:`~repro.gateway.app.Gateway`
        — return a complete :class:`ScenarioOutcome` instead.  The
        outcome's ``per_tenant`` entries must still carry the standard
        telemetry keys (``counters``, ``requests``, ``submitted``,
        ``churn_events``, ``dead_doc_hits``, ``cross_tenant_cache_hits``,
        ``cross_tenant_doc_serves``) so :meth:`ScenarioOutcome.totals`
        and the registry-wide gates keep working unchanged.
        """
        return None


def _engine_doc_ids(engine) -> list[int]:
    """Sorted live document ids of any scenario engine (hybrid or sharded)."""
    if hasattr(engine, "document_ids"):
        return engine.document_ids()
    return engine.lexical.document_ids()


def _weighted_stale_rate(tenants: list[TenantState]) -> float:
    """Lifetime stale-serve fraction pooled over all tenants' requests."""
    total = sum(tenant.stats.total_requests for tenant in tenants)
    if not total:
        return 0.0
    return sum(tenant.stats.total_stale for tenant in tenants) / total


class ScenarioRunner:
    """Drives one scenario: builds tenants, replays the merged trace,
    judges the invariants, and returns a :class:`ScenarioOutcome`.

    Per-tenant schedulers share ONE virtual clock; the runner advances
    every scheduler to each merged-event time (fixed tenant order) so
    batches dispatch at their exact trigger times regardless of which
    tenant's traffic is driving the clock — the property that makes the
    interleaved replay deterministic.
    """

    #: tail queries ride the lowest-priority lane of a 2-lane scheduler
    NUM_LANES = 2

    def __init__(self, scenario: Scenario, config: ScenarioConfig | None = None):
        """``config`` is the caller's base; the scenario may pin knobs
        on top of it through :meth:`Scenario.adjust`."""
        self.scenario = scenario
        self.config = scenario.adjust(config or ScenarioConfig())
        self.clock = VirtualClock()
        self.tenants: list[TenantState] = []
        self.outcome: ScenarioOutcome | None = None

    # -- construction --------------------------------------------------------
    def _build_tenant(self, index: int, physical: RewriteCache) -> TenantState:
        cfg = self.config
        name = f"tenant{index}"
        id_base = index * cfg.tenant_id_stride
        market = generate_marketplace(
            MarketplaceConfig(
                catalog=CatalogConfig(
                    products_per_category=cfg.products_per_category,
                    product_id_base=id_base,
                ),
                clicks=ClickLogConfig(
                    num_sessions=cfg.num_sessions,
                    intent_pool_size=cfg.intent_pool_size,
                ),
                seed=cfg.seed + index * 1000,
            )
        )
        engine = self.scenario.build_engine(market, cfg)
        cache = physical.tenant_view(name) if cfg.namespace_cache else physical
        rewriter = RuleBasedRewriter(build_rule_dictionary())
        pipeline = ServingPipeline(
            cache,
            rewriter,
            ServingConfig(cache_model_results=True),
            search_engine=engine,
            tenant=name,
        )
        replay = TrafficReplay(
            market.click_log,
            CatalogGenerator(market.config.catalog),
            ReplayConfig(
                num_requests=cfg.requests_per_tenant,
                batch_size=cfg.max_batch_size,
                churn_every=cfg.churn_every,
                churn_adds=cfg.churn_adds,
                churn_removes=cfg.churn_removes,
                head_fraction=cfg.head_fraction,
                seconds_per_request=cfg.seconds_per_request,
                search_every=cfg.search_every,
                window=cfg.window,
                seed=cfg.seed + 7 + index,
            ),
        )
        head = replay.head_queries()
        cache.populate(rewriter, list(head))
        wrote = {
            normalize(query) for query in head if cache.stored_at(query) is not None
        }
        controller = FreshnessController(
            cache,
            rewriter,
            head,
            refresh_margin_seconds=cfg.refresh_margin_seconds,
            tick_interval_seconds=cfg.tick_interval_seconds,
        )
        tenant = TenantState(
            index=index,
            name=name,
            id_base=id_base,
            market=market,
            engine=engine,
            cache=cache,
            pipeline=pipeline,
            controller=controller,
            replay=replay,
            scheduler=None,  # set below (needs the tenant for its hook)
            stats=WindowedStats(cfg.window),
            head=head,
            wrote=wrote,
            initial_products=len(market.catalog.products),
        )
        tenant.scheduler = MicroBatchScheduler(
            pipeline,
            self.clock,
            SchedulerConfig(
                max_batch_size=cfg.max_batch_size,
                max_wait_seconds=cfg.max_wait_seconds,
                max_queue_depth=cfg.max_queue_depth,
                num_lanes=self.NUM_LANES,
            ),
            on_batch=lambda completions, tenant=tenant: self._on_batch(
                tenant, completions
            ),
        )
        return tenant

    # -- per-batch accounting ------------------------------------------------
    def _on_batch(self, tenant: TenantState, completions) -> None:
        cfg = self.config
        tenant.controller.tick()
        for completion in completions:
            outcome = completion.outcome
            if isinstance(outcome, ServedSearch):
                served = outcome.served
                tenant.searches += 1
                tenant.search_log.append((outcome.query, tuple(outcome.doc_ids)))
                upper = tenant.id_base + cfg.tenant_id_stride
                for doc_id in outcome.doc_ids:
                    if doc_id in tenant.removed_ids:
                        tenant.dead_doc_hits += 1
                    if not tenant.id_base <= doc_id < upper:
                        tenant.cross_tenant_doc_serves += 1
            else:
                served = outcome
            query = completion.request.query
            key = normalize(query)
            if served.source == "cache":
                # Head entries are legitimately (re)written by the
                # tenant's own freshness controller at any time (e.g.
                # after a cold restart), so only non-head hits that this
                # tenant never wrote count as foreign.
                if key not in tenant.wrote and query not in tenant.head:
                    tenant.cross_tenant_cache_hits += 1
            elif (
                served.source == "model"
                and served.rewrites
                and tenant.pipeline.config.cache_model_results
            ):
                tenant.wrote.add(key)
            tenant.replay.record_serve(
                tenant.pipeline, tenant.stats, served, query, tenant.last_churn
            )
            seq = tenant.seq_of.get(completion.request.arrival_seconds)
            tenant.serve_log.append(
                (seq, 1 if served.source == "cache" else 0, query)
            )

    # -- restart (cold_restart arms) -----------------------------------------
    def swap_cache(self, tenant: TenantState) -> None:
        """Swap the tenant onto a fresh, empty cache (a node restart).

        The building block every restart arm shares;
        :meth:`Scenario.on_restart` decides what else the incident
        destroys (the persistent arm also swaps the retrieval engine
        for one restored from disk segments).
        """
        cfg = self.config
        root = RewriteCache(
            capacity=cfg.cache_capacity,
            ttl_seconds=cfg.cache_ttl_seconds or None,
            shards=cfg.cache_shards,
            clock=self.clock.now,
        )
        fresh = root.tenant_view(tenant.name) if cfg.namespace_cache else root
        tenant.cache = fresh
        tenant.pipeline.cache = fresh
        tenant.controller.cache = fresh
        tenant.wrote = set()
        tenant.restarted_at = tenant.submitted
        # Cold-window bookkeeping is in DISPATCH order: requests already
        # queued at restart are served (and written back) against the
        # fresh cache, so seq-based windows would miss them.
        tenant.notes["serve_log_at_restart"] = len(tenant.serve_log)

    # -- replay --------------------------------------------------------------
    def run(self) -> ScenarioOutcome:
        """Build the tenants, replay the merged trace, judge the bars."""
        driven = self.scenario.drive(self)
        if driven is not None:
            self.outcome = driven
            return driven
        cfg = self.config
        physical = RewriteCache(
            capacity=cfg.cache_capacity,
            ttl_seconds=cfg.cache_ttl_seconds or None,
            shards=cfg.cache_shards,
            clock=self.clock.now,
        )
        self.tenants = [
            self._build_tenant(index, physical) for index in range(cfg.num_tenants)
        ]
        merged: list[tuple[float, int, int, str, object]] = []
        for tenant in self.tenants:
            events = self.scenario.transform_trace(
                tenant, tenant.replay.arrival_trace(), cfg
            )
            for position, (kind, at, payload) in enumerate(events):
                merged.append((at, tenant.index, position, kind, payload))
        merged.sort(key=lambda event: (event[0], event[1], event[2]))

        for at, index, _, kind, payload in merged:
            # Every scheduler serves what is due before the event lands,
            # in fixed tenant order — the interleaving is deterministic.
            for tenant in self.tenants:
                tenant.scheduler.advance_to(at)
            tenant = self.tenants[index]
            if kind == "churn":
                # The first churn after a restart ends the deterministic
                # coldness window: on_churn repopulates head entries.
                if (
                    tenant.restarted_at is not None
                    and "serve_log_at_first_churn_after_restart" not in tenant.notes
                ):
                    tenant.notes["serve_log_at_first_churn_after_restart"] = len(
                        tenant.serve_log
                    )
                tenant.replay.apply_churn(
                    tenant.engine,
                    payload,
                    self.clock,
                    tenant.last_churn,
                    tenant.removed_ids,
                    tenant.controller,
                )
                tenant.churn_events += 1
                tenant.adds_applied += len(payload.added)
                tenant.removes_applied += len(payload.removed)
            elif kind == "restart":
                self.scenario.on_restart(self, tenant)
            elif kind == "failover":
                self.scenario.on_failover(self, tenant, payload)
            else:
                seq = tenant.submitted
                tenant.submitted += 1
                tenant.seq_of[at] = seq
                tenant.scheduler.submit(
                    ScheduledRequest(
                        query=payload.query,
                        arrival_seconds=at,
                        lane=0 if payload.query in tenant.head else self.NUM_LANES - 1,
                        # Deterministic, batch-size-independent probe pick
                        # (the rng probe of run_scheduled would perturb
                        # cross-batch-size comparisons).
                        kind="search" if seq % cfg.search_every == 0 else "rewrite",
                    )
                )
        for tenant in self.tenants:
            tenant.scheduler.drain()

        invariants = self._common_invariants()
        invariants.extend(self.scenario.invariants(self))
        self.outcome = ScenarioOutcome(
            scenario=self.scenario.name,
            config=cfg,
            invariants=invariants,
            per_tenant={
                tenant.name: self._tenant_telemetry(tenant)
                for tenant in self.tenants
            },
        )
        return self.outcome

    def _tenant_telemetry(self, tenant: TenantState) -> dict:
        return {
            "counters": tenant.pipeline.stats.counters(),
            "scheduler_fingerprint": tenant.scheduler.report.fingerprint(),
            "requests": tenant.stats.total_requests,
            "hits": tenant.stats.total_hits,
            "stale": tenant.stats.total_stale,
            "empty": tenant.stats.total_empty,
            "submitted": tenant.submitted,
            "churn_events": tenant.churn_events,
            "adds_applied": tenant.adds_applied,
            "removes_applied": tenant.removes_applied,
            "searches": tenant.searches,
            "dead_doc_hits": tenant.dead_doc_hits,
            "cross_tenant_cache_hits": tenant.cross_tenant_cache_hits,
            "cross_tenant_doc_serves": tenant.cross_tenant_doc_serves,
        }

    # -- invariants ----------------------------------------------------------
    def _audit_foreign_cache_entries(self) -> int:
        """Entries of tenant A's head visible through tenant B's cache
        that B never wrote — the post-run leak audit.  Zero under
        namespaced views; positive when namespacing is stripped."""
        violations = 0
        for owner in self.tenants:
            for query in owner.head:
                for other in self.tenants:
                    if other is owner:
                        continue
                    if (
                        other.cache.stored_at(query) is not None
                        and normalize(query) not in other.wrote
                        and query not in other.head
                    ):
                        violations += 1
        return violations

    def _common_invariants(self) -> list[InvariantResult]:
        cfg = self.config
        invariants: list[InvariantResult] = []

        live_leaks = sum(t.cross_tenant_cache_hits for t in self.tenants)
        audit_leaks = self._audit_foreign_cache_entries()
        leaks = live_leaks + audit_leaks
        invariants.append(
            InvariantResult(
                name="zero_cross_tenant_cache_serves",
                passed=leaks == 0,
                observed=float(leaks),
                bar="== 0",
                detail=(
                    f"{live_leaks} live cache serves of foreign entries + "
                    f"{audit_leaks} foreign entries visible in the post-run audit"
                ),
            )
        )

        cross_docs = sum(t.cross_tenant_doc_serves for t in self.tenants)
        invariants.append(
            InvariantResult(
                name="zero_cross_tenant_doc_serves",
                passed=cross_docs == 0,
                observed=float(cross_docs),
                bar="== 0",
                detail="retrieved document ids outside the serving tenant's id range",
            )
        )

        foreign_index = 0
        for tenant in self.tenants:
            upper = tenant.id_base + cfg.tenant_id_stride
            foreign_index += sum(
                1
                for doc_id in _engine_doc_ids(tenant.engine)
                if not tenant.id_base <= doc_id < upper
            )
        invariants.append(
            InvariantResult(
                name="index_id_ranges_disjoint",
                passed=foreign_index == 0,
                observed=float(foreign_index),
                bar="== 0",
                detail="indexed documents outside the owning tenant's id range",
            )
        )

        totals = sum_counters([t.pipeline.stats for t in self.tenants])
        served = totals["cache_served"] + totals["model_served"] + totals["unserved"]
        submitted = sum(t.submitted for t in self.tenants)
        completed = sum(t.scheduler.report.completed for t in self.tenants)
        consistent = (
            served == totals["admitted"] == completed
            and totals["admitted"] + totals["shed"] == submitted
        )
        invariants.append(
            InvariantResult(
                name="tenant_counters_sum_to_global",
                passed=consistent,
                observed=float(served),
                bar=f"served == admitted == completed, admitted + shed == {submitted}",
                detail=(
                    f"served={served} admitted={totals['admitted']} "
                    f"completed={completed} shed={totals['shed']} submitted={submitted}"
                ),
            )
        )

        dead = sum(t.dead_doc_hits for t in self.tenants)
        invariants.append(
            InvariantResult(
                name="zero_dead_document_serves",
                passed=dead == 0,
                observed=float(dead),
                bar="== 0",
                detail="end-to-end probes surfacing delisted products",
            )
        )
        return invariants


# ---------------------------------------------------------------------------
# Scenario arms
# ---------------------------------------------------------------------------
class MultiTenantScenario(Scenario):
    """Baseline multi-tenant interleave: isolation + accounting bars.

    N tenants with disjoint catalogs and namespaced cache views replay
    interleaved traffic with churn; on top of the common isolation
    invariants it pins the freshness controller's stale-serve ceiling
    and that the baseline load sheds nothing.
    """

    name = "multi_tenant"
    description = "interleaved tenants; isolation, accounting and staleness bars"
    #: pooled lifetime stale-serve ceiling (controller active).  The
    #: controller keeps head entries fresh; the residual comes from tail
    #: write-backs churned before they expire (~2% at baseline cadence).
    STALE_BAR = 0.03
    #: finite-sample allowance, in requests: on short smoke-scale streams
    #: a couple of residual stale serves are quantization, not regression
    STALE_SLACK_REQUESTS = 4.0

    def invariants(self, runner: ScenarioRunner) -> list[InvariantResult]:
        """Stale-rate ceiling + zero shedding at baseline load."""
        stale = _weighted_stale_rate(runner.tenants)
        total = sum(t.stats.total_requests for t in runner.tenants) or 1
        bar = self.STALE_BAR + self.STALE_SLACK_REQUESTS / total
        shed = sum(t.scheduler.report.shed for t in runner.tenants)
        return [
            InvariantResult(
                name="stale_serve_rate_bounded",
                passed=stale <= bar,
                observed=stale,
                bar=f"<= {bar:.4f}",
                detail="pooled lifetime stale-serve fraction under the controller",
            ),
            InvariantResult(
                name="no_shedding_at_baseline_load",
                passed=shed == 0,
                observed=float(shed),
                bar="== 0",
                detail="admission control must not shed at baseline arrival rates",
            ),
        ]


class HotKeyStormScenario(Scenario):
    """Hot-key query storm: a window of traffic collapses onto one head key.

    The middle fifth of the trace is replaced by the hottest head query
    that has precomputed rewrites.  The cache tier must absorb the storm:
    no shedding, a near-total storm-window hit rate, and the scheduler's
    deadline bound intact.
    """

    name = "hot_key_storm"
    description = "mid-trace traffic collapses onto one hot head query"
    STORM_START = 0.4
    STORM_END = 0.6
    #: storm-window cache-hit floor
    HIT_BAR = 0.90

    def adjust(self, config: ScenarioConfig) -> ScenarioConfig:
        """Single tenant — the storm is a per-tenant phenomenon."""
        return dataclasses.replace(config, num_tenants=1)

    def _storm_window(self, config: ScenarioConfig) -> tuple[int, int]:
        n = config.requests_per_tenant
        return int(n * self.STORM_START), int(n * self.STORM_END)

    def transform_trace(self, tenant: TenantState, events: list, config: ScenarioConfig) -> list:
        """Replace the storm window's requests with the hot key."""
        hot = next(
            (q for q in tenant.head if normalize(q) in tenant.wrote),
            next(iter(tenant.head)),
        )
        tenant.notes["hot_query"] = hot
        storm = Request(query=hot, category=tenant.head[hot])
        start, end = self._storm_window(config)
        out = []
        seq = 0
        for kind, at, payload in events:
            if kind == "request":
                if start <= seq < end:
                    payload = storm
                seq += 1
            out.append((kind, at, payload))
        return out

    def invariants(self, runner: ScenarioRunner) -> list[InvariantResult]:
        """Cache absorption bars: hit floor, zero shed, delay bound."""
        tenant = runner.tenants[0]
        start, end = self._storm_window(runner.config)
        window = [
            hit
            for seq, hit, _ in tenant.serve_log
            if seq is not None and start <= seq < end
        ]
        rate = sum(window) / len(window) if window else 0.0
        shed = tenant.scheduler.report.shed
        p95 = tenant.scheduler.report.p95_queue_delay_seconds()
        bound = runner.config.max_wait_seconds + 1e-9
        return [
            InvariantResult(
                name="storm_window_absorbed_by_cache",
                passed=rate >= self.HIT_BAR,
                observed=rate,
                bar=f">= {self.HIT_BAR}",
                detail=f"cache-hit rate over storm requests [{start}, {end})",
            ),
            InvariantResult(
                name="no_shedding_under_storm",
                passed=shed == 0,
                observed=float(shed),
                bar="== 0",
                detail="a cache-absorbed storm must not trip admission control",
            ),
            InvariantResult(
                name="queue_delay_bound_holds",
                passed=p95 <= bound,
                observed=p95,
                bar=f"<= {bound:g}",
                detail="p95 virtual queueing delay vs the deadline trigger",
            ),
        ]


class ChurnStormScenario(Scenario):
    """Churn storm: churn cadence quadrupled, payloads amplified.

    The index and catalog must stay in lockstep (size accounting exact,
    zero dead-document serves) and the freshness controller must hold a
    stale-serve ceiling even with categories churning several times per
    TTL window.
    """

    name = "churn_storm"
    description = "aggressive listing/delisting; lockstep + staleness bars"
    #: stale ceiling under storm churn (looser than baseline, still pinned)
    STALE_BAR = 0.06
    #: finite-sample allowance, in requests: smoke-scale streams see the
    #: same storm cadence over far fewer serves, so each residual stale
    #: serve moves the fraction by ~1%
    STALE_SLACK_REQUESTS = 8.0
    ADDS = 8
    REMOVES = 8

    def adjust(self, config: ScenarioConfig) -> ScenarioConfig:
        """Single tenant, churn every ~eighth of the trace length."""
        return dataclasses.replace(
            config,
            num_tenants=1,
            churn_every=max(20, config.requests_per_tenant // 8),
            churn_adds=self.ADDS,
            churn_removes=self.REMOVES,
        )

    def invariants(self, runner: ScenarioRunner) -> list[InvariantResult]:
        """Index-size lockstep + stale ceiling + full completion."""
        tenant = runner.tenants[0]
        expected = (
            tenant.initial_products + tenant.adds_applied - tenant.removes_applied
        )
        observed = len(_engine_doc_ids(tenant.engine))
        stale = _weighted_stale_rate(runner.tenants)
        total = sum(t.stats.total_requests for t in runner.tenants) or 1
        storm_bar = self.STALE_BAR + self.STALE_SLACK_REQUESTS / total
        return [
            InvariantResult(
                name="index_size_lockstep",
                passed=observed == expected,
                observed=float(observed),
                bar=f"== {expected}",
                detail="live index size vs initial + adds - removes",
            ),
            InvariantResult(
                name="churned_some_catalog",
                passed=tenant.churn_events >= 2,
                observed=float(tenant.churn_events),
                bar=">= 2",
                detail="the storm must actually churn (guards trace construction)",
            ),
            InvariantResult(
                name="stale_serve_rate_bounded_under_storm",
                passed=stale <= storm_bar,
                observed=stale,
                bar=f"<= {storm_bar:.4f}",
                detail="lifetime stale-serve fraction under storm churn",
            ),
        ]


class ColdRestartScenario(Scenario):
    """Cache-cold restart mid-trace: crater then recover.

    At the halfway request the tenant's cache node is replaced by a
    fresh, empty one.  The bars pin both sides of the incident: the
    post-restart window must actually crater (proving the swap is real)
    and the final window must recover as write-back and the freshness
    controller refill the head set.
    """

    name = "cold_restart"
    description = "fresh empty cache swaps in mid-trace; coldness + recovery bars"
    #: final-window hit-rate floor after recovery
    RECOVERY_BAR = 0.40

    def adjust(self, config: ScenarioConfig) -> ScenarioConfig:
        """Single tenant — the restart is a per-node incident."""
        return dataclasses.replace(config, num_tenants=1)

    def transform_trace(self, tenant: TenantState, events: list, config: ScenarioConfig) -> list:
        """Insert the restart right after the first churn past halfway.

        Anchoring the restart to a churn boundary gives the coldness bar
        the widest possible churn-free window (a full churn period) at
        every scale; a restart dropped mid-batch just before a churn
        would leave the window empty.  Traces with no churn after the
        halfway request fall back to restarting just before it.
        """
        halfway = config.requests_per_tenant // 2
        out = []
        seq = 0
        inserted = False
        for kind, at, payload in events:
            out.append((kind, at, payload))
            if kind == "request":
                seq += 1
            elif kind == "churn" and not inserted and seq >= halfway:
                out.append(("restart", at, None))
                inserted = True
        if inserted:
            return out
        out = []
        seq = 0
        for kind, at, payload in events:
            if kind == "request":
                if seq == halfway:
                    out.append(("restart", at, None))
                seq += 1
            out.append((kind, at, payload))
        return out

    def invariants(self, runner: ScenarioRunner) -> list[InvariantResult]:
        """Coldness + recovery bars around the restart point.

        Coldness is judged deterministically: between the restart and the
        first post-restart churn event (which repopulates head entries),
        the ONLY writer to the fresh cache is this tenant's own
        write-back, so the *first* serve of every distinct query in that
        window must be a cache miss.  A restart swap that silently keeps
        the old store fails this bar immediately.
        """
        tenant = runner.tenants[0]
        n = runner.config.requests_per_tenant
        restart = tenant.restarted_at if tenant.restarted_at is not None else n // 2
        width = max(20, n // 8)
        cold_start = tenant.notes.get("serve_log_at_restart", len(tenant.serve_log))
        cold_end = tenant.notes.get(
            "serve_log_at_first_churn_after_restart", len(tenant.serve_log)
        )
        first_hits = 0
        first_total = 0
        seen: set[str] = set()
        for _, hit, query in tenant.serve_log[cold_start:cold_end]:
            if query in seen:
                continue
            seen.add(query)
            first_total += 1
            first_hits += hit

        def window_rate(lo: int, hi: int) -> float:
            window = [
                hit
                for seq, hit, _ in tenant.serve_log
                if seq is not None and lo <= seq < hi
            ]
            return sum(window) / len(window) if window else 0.0

        post_rate = window_rate(restart, restart + width)
        final_rate = window_rate(n - width, n)
        return [
            InvariantResult(
                name="restart_applied",
                passed=tenant.restarted_at is not None and first_total >= 5,
                observed=float(first_total),
                bar="restart executed, >= 5 distinct cold-window queries",
                detail="the trace must actually swap the cache mid-run",
            ),
            InvariantResult(
                name="cold_cache_serves_nothing_unseen",
                passed=first_hits == 0,
                observed=float(first_hits),
                bar="== 0",
                detail=(
                    f"first serves of {first_total} distinct queries dispatched "
                    "between the restart and the next churn must all miss"
                ),
            ),
            InvariantResult(
                name="hit_rate_recovers",
                passed=final_rate >= self.RECOVERY_BAR,
                observed=final_rate,
                bar=f">= {self.RECOVERY_BAR}",
                detail=(
                    "write-back + freshness refill must recover the final-"
                    f"window hit rate (post-restart window: {post_rate:.3f})"
                ),
            ),
        ]


class ColdRestartPersistentScenario(ColdRestartScenario):
    """Cold restart where the node restores its index from disk segments.

    Same incident shape as ``cold_restart`` — the cache node dies
    mid-trace and a fresh, empty cache swaps in — but this node also
    loses its in-memory retrieval index and recovers it from
    :mod:`repro.store` segments instead of re-adding every catalog
    document.  On top of the inherited crater/recovery bars, three new
    bars pin the recovery path itself: the restored index must match
    the live one *exactly* (same documents, same ranked results with
    identical scores — churn included, which a catalog rebuild would
    miss), restoring must not be slower than rebuilding, and the save
    must actually have produced per-shard segment files.
    """

    name = "cold_restart_persistent"
    description = (
        "restart restores the index from on-disk segments; equality + speed bars"
    )
    #: additive timing slack (seconds) so the restore-vs-rebuild bar is
    #: not flaky at smoke scale, where both sides take ~milliseconds;
    #: the real 5x separation is pinned at 50k docs by
    #: ``benchmarks/test_persistence.py``
    SLACK_SECONDS = 0.025
    #: head queries probed for exact result equality after the restore
    PROBE_QUERIES = 5
    #: timing repetitions (best-of, to shed scheduler noise)
    TIMING_ROUNDS = 3

    def on_restart(self, runner: ScenarioRunner, tenant: TenantState) -> None:
        """Swap the cache, then save + restore the retrieval index.

        The live engine (with all churn applied) is saved to a scratch
        :class:`~repro.store.SegmentStore`, a fresh engine is restored
        from those segments, and the tenant is swapped onto the
        restored engine for the rest of the trace — so every
        post-restart search bar in the suite exercises the *restored*
        index, not the one that "survived" the crash.  Rebuild-from-
        catalog is timed as the baseline the restore must beat.  All
        timings land in ``tenant.notes`` (never in the per-tenant
        telemetry, which must stay run-to-run fingerprint-identical).
        """
        runner.swap_cache(tenant)
        live = tenant.engine
        live_docs = _engine_doc_ids(live)
        probes = sorted(tenant.head)[: self.PROBE_QUERIES]
        expected = {query: live.search(query) for query in probes}

        root = Path(tempfile.mkdtemp(prefix="repro-store-"))
        try:
            start = time.perf_counter()
            live.save(root)
            save_seconds = time.perf_counter() - start

            restored = None
            restore_seconds = float("inf")
            for _ in range(self.TIMING_ROUNDS):
                start = time.perf_counter()
                restored = ShardedSearchEngine.load(
                    tenant.market.catalog,
                    root,
                    SearchConfig(ranker="bm25"),
                    parallel=False,
                )
                restore_seconds = min(restore_seconds, time.perf_counter() - start)

            rebuild_seconds = float("inf")
            for _ in range(self.TIMING_ROUNDS):
                start = time.perf_counter()
                self.build_engine(tenant.market, runner.config)
                rebuild_seconds = min(rebuild_seconds, time.perf_counter() - start)

            mismatches = 0
            if _engine_doc_ids(restored) != live_docs:
                mismatches += 1
            for query, want in expected.items():
                got = restored.search(query)
                if got.doc_ids != want.doc_ids or got.scores != want.scores:
                    mismatches += 1

            segment_files = sorted(root.glob("*.seg"))
            tenant.notes["persist_save_seconds"] = save_seconds
            tenant.notes["persist_restore_seconds"] = restore_seconds
            tenant.notes["persist_rebuild_seconds"] = rebuild_seconds
            tenant.notes["persist_mismatches"] = mismatches
            tenant.notes["persist_segment_files"] = len(segment_files)
            tenant.notes["persist_segment_bytes"] = sum(
                path.stat().st_size for path in segment_files
            )
            tenant.notes["persist_num_shards"] = restored.index.num_shards
        finally:
            shutil.rmtree(root, ignore_errors=True)

        tenant.engine = restored
        tenant.pipeline.search_engine = restored

    def invariants(self, runner: ScenarioRunner) -> list[InvariantResult]:
        """Inherited crater/recovery bars plus the recovery-path bars."""
        tenant = runner.tenants[0]
        notes = tenant.notes
        mismatches = notes.get("persist_mismatches", -1)
        restore = notes.get("persist_restore_seconds", float("inf"))
        rebuild = notes.get("persist_rebuild_seconds", 0.0)
        files = notes.get("persist_segment_files", 0)
        shards = notes.get("persist_num_shards", 1)
        results = super().invariants(runner)
        results.extend(
            [
                InvariantResult(
                    name="restore_matches_live_index",
                    passed=mismatches == 0,
                    observed=float(mismatches),
                    bar="== 0",
                    detail=(
                        "restored engine must hold the exact live document "
                        f"set and rank {self.PROBE_QUERIES} probe queries "
                        "with identical scores (churn included)"
                    ),
                ),
                InvariantResult(
                    name="restore_faster_than_rebuild",
                    passed=restore <= rebuild + self.SLACK_SECONDS,
                    observed=restore,
                    bar=f"<= rebuild ({rebuild:.4f}s) + {self.SLACK_SECONDS}s",
                    detail=(
                        "loading segments must not lose to re-adding every "
                        "catalog document (best of "
                        f"{self.TIMING_ROUNDS} rounds each)"
                    ),
                ),
                InvariantResult(
                    name="segments_persisted",
                    passed=files >= shards,
                    observed=float(files),
                    bar=f">= {shards} (one full segment per shard)",
                    detail="the save must write at least one segment per shard",
                ),
            ]
        )
        return results


class VocabDriftScenario(Scenario):
    """New-brand vocabulary drift stressing the semantic-capable tier.

    A brand unseen at build time ("zephyrion") floods a late window of
    the query stream; its products list mid-trace through an ADD-only
    churn event.  The tenant runs the hybrid lexical+vector engine, and
    the bars pin end-to-end adoption: post-listing, drift queries must
    surface the new products, and both retrieval tiers must track the
    catalog in lockstep.
    """

    name = "vocab_drift"
    description = "unseen brand floods queries while its products list mid-trace"
    BRAND = "zephyrion"
    #: listing lands before this fraction of the trace
    ADOPT_AT = 0.6
    DRIFT_START = 0.65
    DRIFT_END = 0.85
    #: categories the new brand launches in
    NUM_CATEGORIES = 3
    PRODUCTS_PER_CATEGORY = 2
    #: post-listing fraction of drift queries that must surface the brand
    ADOPTION_BAR = 1.0

    def adjust(self, config: ScenarioConfig) -> ScenarioConfig:
        """Single tenant on the hybrid engine."""
        return dataclasses.replace(config, num_tenants=1)

    def build_engine(self, market, config: ScenarioConfig):
        """Hybrid BM25 + IVF-vector engine over an (untrained) dual encoder."""
        from repro.embedding import DualEncoder
        from repro.search.hybrid import HybridSearchEngine

        return HybridSearchEngine(
            market.catalog,
            DualEncoder(market.vocab),
            SearchConfig(ranker="bm25"),
            num_shards=2,
            num_clusters=4,
            parallel=False,
            seed=config.seed,
        )

    def _drift_catalog(self, tenant: TenantState, config: ScenarioConfig):
        """The new brand's products + the queries that look for them."""
        categories = sorted(CATEGORY_SPECS)[: self.NUM_CATEGORIES]
        base = tenant.id_base + config.tenant_id_stride - 1000
        products = []
        queries = []
        pid = base
        for category in categories:
            canon = CATEGORY_SPECS[category].canonical
            queries.append((f"{self.BRAND} {' '.join(canon)}", category))
            for _ in range(self.PRODUCTS_PER_CATEGORY):
                products.append(
                    Product(
                        product_id=pid,
                        category=category,
                        brand=self.BRAND,
                        audience=None,
                        features=(),
                        title_tokens=(self.BRAND, *canon),
                        price=99.0,
                    )
                )
                pid += 1
        return products, queries

    def transform_trace(self, tenant: TenantState, events: list, config: ScenarioConfig) -> list:
        """Inject the ADD-only listing + the drift-query flood window."""
        n = config.requests_per_tenant
        adopt_seq = int(n * self.ADOPT_AT)
        drift_lo, drift_hi = int(n * self.DRIFT_START), int(n * self.DRIFT_END)
        products, queries = self._drift_catalog(tenant, config)
        tenant.notes["drift_queries"] = [q for q, _ in queries]
        tenant.notes["drift_ids"] = {p.product_id for p in products}
        listing = ChurnEvent(added=tuple(products), removed=())
        out = []
        seq = 0
        for kind, at, payload in events:
            if kind == "request":
                if seq == adopt_seq:
                    out.append(("churn", at, listing))
                if drift_lo <= seq < drift_hi:
                    text, category = queries[seq % len(queries)]
                    payload = Request(query=text, category=category)
                seq += 1
            out.append((kind, at, payload))
        return out

    def invariants(self, runner: ScenarioRunner) -> list[InvariantResult]:
        """Adoption + two-tier lockstep bars."""
        tenant = runner.tenants[0]
        engine = tenant.engine
        drift_queries = tenant.notes.get("drift_queries", [])
        drift_ids = tenant.notes.get("drift_ids", set())
        adopted = 0
        for query in drift_queries:
            outcome = engine.search(query, [])
            if any(doc_id in drift_ids for doc_id in outcome.doc_ids):
                adopted += 1
        fraction = adopted / len(drift_queries) if drift_queries else 0.0
        lexical_docs = len(_engine_doc_ids(engine))
        vector_docs = len(engine.vector)
        catalog_docs = len(engine.catalog.products)
        return [
            InvariantResult(
                name="new_brand_adopted_end_to_end",
                passed=fraction >= self.ADOPTION_BAR,
                observed=fraction,
                bar=f">= {self.ADOPTION_BAR}",
                detail="post-listing drift queries surfacing a new-brand product",
            ),
            InvariantResult(
                name="retrieval_tiers_in_lockstep",
                passed=lexical_docs == vector_docs == catalog_docs,
                observed=float(vector_docs),
                bar=f"lexical == vector == catalog == {catalog_docs}",
                detail=(
                    f"lexical={lexical_docs} vector={vector_docs} "
                    f"catalog={catalog_docs}"
                ),
            ),
        ]


class ShardFailoverScenario(Scenario):
    """Replica death and snapshot respawn under live traffic.

    The tenant serves through a two-replica
    :class:`~repro.cluster.ReplicaRouter` (both replicas restored from
    the same segment-store generation, kept in lockstep by broadcast
    writes).  Mid-trace one replica is killed — the router must discover
    the death organically and fail over — and later respawned from a
    snapshot quiesced off the surviving replica and shipped with
    :meth:`~repro.store.SegmentStore.ship_snapshot`.  The bars pin what
    "transparent" means: every retrieval result in the whole trace is
    byte-identical to a healthy twin run (same config, no injection),
    the scheduler sheds nothing, and the respawned replica carries the
    shipped generation with per-shard digests equal to the survivor's.
    """

    name = "shard_failover"
    description = (
        "a replica dies mid-trace and respawns from a shipped snapshot; "
        "byte-identity + zero-shed bars"
    )
    #: request-sequence fractions where the injected incidents land
    KILL_AT = 0.45
    RESPAWN_AT = 0.75
    NUM_REPLICAS = 2

    def __init__(self, inject: bool = True):
        """``inject=False`` builds the identical replica deployment but
        skips the kill/respawn — the healthy twin the byte-identity bar
        replays against."""
        self.inject = inject

    def adjust(self, config: ScenarioConfig) -> ScenarioConfig:
        """Single tenant — the incident is a per-deployment event."""
        return dataclasses.replace(config, num_tenants=1)

    def build_engine(self, market, config: ScenarioConfig):
        """Two state-identical inproc replicas behind a router.

        The catalog is indexed once, saved to a scratch segment store,
        and both replicas are restored from that one generation — the
        same-state precondition failover correctness rests on.  The
        scratch root rides on the engine (``cluster_root``) for the
        respawn event; :meth:`invariants` removes it.
        """
        seed = ShardedSearchEngine(
            market.catalog, SearchConfig(ranker="bm25"), num_shards=2, parallel=False
        )
        root = Path(tempfile.mkdtemp(prefix="repro-failover-"))
        seed.save(root / "gen")
        seed.close()
        replicas = [
            resolve_backend("lexical", "inproc", root / "gen", parallel=False)
            for _ in range(self.NUM_REPLICAS)
        ]
        engine = ShardedSearchEngine(
            market.catalog,
            SearchConfig(ranker="bm25"),
            index=ShardedIndex(backend=ReplicaRouter(replicas)),
        )
        engine.cluster_root = root
        return engine

    def transform_trace(self, tenant: TenantState, events: list, config: ScenarioConfig) -> list:
        """Insert the kill and the respawn at fixed request fractions.

        The twin (``inject=False``) gets the same events — its
        :meth:`on_failover` ignores them — so both runs replay exactly
        the same trace structure.
        """
        n = config.requests_per_tenant
        kill_seq = int(n * self.KILL_AT)
        respawn_seq = int(n * self.RESPAWN_AT)
        out = []
        seq = 0
        for kind, at, payload in events:
            if kind == "request":
                if seq == kill_seq:
                    out.append(("failover", at, "kill"))
                if seq == respawn_seq:
                    out.append(("failover", at, "respawn"))
                seq += 1
            out.append((kind, at, payload))
        return out

    def on_failover(self, runner: ScenarioRunner, tenant: TenantState, payload) -> None:
        """Kill replica 0, or respawn it from a shipped snapshot.

        The kill deliberately does NOT tell the router — the next
        request that touches the dead replica must discover it and fail
        over organically.  The respawn is the full production path:
        quiesce a healthy replica (itself failover-protected), save its
        shards, ship the snapshot with per-segment checksum
        re-verification, restore a fresh backend from the shipped copy,
        and attach it.  Digest/generation evidence lands in
        ``tenant.notes`` (never in telemetry, which must stay
        fingerprint-identical run to run).
        """
        if not self.inject:
            return
        router = tenant.engine.index.backend
        if payload == "kill":
            router.kill_replica(0)
            return
        root = tenant.engine.cluster_root
        save_dir = root / "respawn-save"
        saved = tenant.engine.save(save_dir)
        shipped = SegmentStore(save_dir, "lexical").ship_snapshot(
            root / "respawn-dest"
        )
        replacement = resolve_backend(
            "lexical", "inproc", root / "respawn-dest", parallel=False
        )
        survivor_digests = router.fanout("digest")
        respawn_digests = replacement.fanout("digest")
        router.respawn_replica(0, replacement)
        tenant.notes["failover_generation_match"] = (
            shipped.generation == saved.generation
        )
        tenant.notes["failover_digest_match"] = survivor_digests == respawn_digests

    def invariants(self, runner: ScenarioRunner) -> list[InvariantResult]:
        """Transparency bars: discovery, zero sheds, restore, byte-identity.

        The byte-identity bar replays the healthy twin
        (``inject=False``, same config) and compares the full per-search
        ``(query, doc_ids)`` logs — rerouted retrievals must be
        indistinguishable from never having failed at all.
        """
        tenant = runner.tenants[0]
        root = getattr(tenant.engine, "cluster_root", None)
        if not self.inject:
            # The twin judges nothing arm-specific; just drop its scratch.
            if root is not None:
                shutil.rmtree(root, ignore_errors=True)
            return []
        router = tenant.engine.index.backend
        stats = router.stats()
        try:
            twin_runner = ScenarioRunner(type(self)(inject=False), runner.config)
            twin_runner.run()
            twin_log = twin_runner.tenants[0].search_log
        finally:
            if root is not None:
                shutil.rmtree(root, ignore_errors=True)
        mismatches = sum(
            1 for mine, theirs in zip(tenant.search_log, twin_log) if mine != theirs
        ) + abs(len(tenant.search_log) - len(twin_log))
        totals = sum_counters([t.pipeline.stats for t in runner.tenants])
        return [
            InvariantResult(
                name="failover_discovered_organically",
                passed=stats["failovers"] >= 1
                and stats["respawns"] == 1
                and stats["healthy_replicas"] == self.NUM_REPLICAS,
                observed=float(stats["failovers"]),
                bar=">= 1 failover, 1 respawn, all replicas healthy at end",
                detail=(
                    f"failovers={stats['failovers']} respawns={stats['respawns']} "
                    f"healthy={stats['healthy_replicas']}/{stats['replicas']} "
                    f"rerouted={stats['rerouted_requests']}"
                ),
            ),
            InvariantResult(
                name="failover_sheds_nothing",
                passed=totals["shed"] == 0,
                observed=float(totals["shed"]),
                bar="== 0",
                detail="a replica death must not push the scheduler into shedding",
            ),
            InvariantResult(
                name="respawn_restores_generation",
                passed=tenant.notes.get("failover_generation_match", False)
                and tenant.notes.get("failover_digest_match", False),
                observed=float(tenant.notes.get("failover_digest_match", False)),
                bar="shipped generation + per-shard digests match the survivor",
                detail=(
                    f"generation_match="
                    f"{tenant.notes.get('failover_generation_match')} "
                    f"digest_match={tenant.notes.get('failover_digest_match')}"
                ),
            ),
            InvariantResult(
                name="rerouted_results_byte_identical",
                passed=mismatches == 0 and len(tenant.search_log) > 0,
                observed=float(mismatches),
                bar="== 0 (against a healthy twin replay)",
                detail=(
                    f"{len(tenant.search_log)} retrievals compared against the "
                    "no-injection twin; every (query, doc_ids) pair must match"
                ),
            ),
        ]


class GatewaySoakScenario(Scenario):
    """Socket-path soak: live HTTP gateway vs in-process twin replay.

    The only arm that leaves virtual time: it boots a real
    :class:`~repro.gateway.app.Gateway` on an ephemeral loopback port
    (wall-clock scheduling, asyncio sockets, concurrent clients) and
    replays a deterministic churn-free trace through it, then replays
    the *same* trace in process on a :class:`VirtualClock` and demands
    the two arms' deterministic serving counters be **byte-identical** —
    plus zero HTTP 500s, schema-valid responses throughout, and a
    drain receipt conserving every admitted request.  Implemented via
    :meth:`Scenario.drive`; the shared harness lives in
    :mod:`repro.gateway.soak`.
    """

    name = "gateway_soak"
    description = "live HTTP soak; socket-path counters byte-match the virtual twin"

    def drive(self, runner: ScenarioRunner) -> ScenarioOutcome:
        """Run both soak arms and judge the conformance bars."""
        # Imported lazily: repro.gateway imports this package at module
        # load, so a top-level import here would be circular.
        from repro.gateway.soak import SoakConfig, run_soak

        cfg = runner.config
        tenants = tuple(f"tenant{i}" for i in range(cfg.num_tenants))
        outcome = run_soak(
            SoakConfig(
                seed=cfg.seed,
                num_requests=cfg.requests_per_tenant * cfg.num_tenants,
                tenants=tenants,
                search_every=cfg.search_every,
                products_per_category=cfg.products_per_category,
                sessions_per_tenant=cfg.num_sessions,
            )
        )
        per_tenant = {}
        for tenant in tenants:
            counters = outcome.twin_counters[tenant]
            per_tenant[tenant] = {
                "counters": counters,
                "requests": counters["admitted"],
                "submitted": counters["admitted"] + counters["shed"],
                "searches": counters["search_requests"],
                "churn_events": 0,  # the conformance trace is pure traffic
                "dead_doc_hits": 0,
                "cross_tenant_cache_hits": 0,
                "cross_tenant_doc_serves": 0,
                "counters_byte_identical": outcome.identical,
            }
        answered_200 = outcome.responses_by_status.get("200", 0)
        receipt = outcome.receipt or {}
        invariants = [
            InvariantResult(
                name="socket_counters_byte_identical",
                passed=outcome.identical,
                observed=float(outcome.identical),
                bar="== virtual-clock twin",
                detail=(
                    "per-tenant ServingStats.counters() over the socket path "
                    "must byte-match the same-seed in-process replay"
                ),
            ),
            InvariantResult(
                name="zero_http_500s",
                passed=outcome.http_500s == 0,
                observed=float(outcome.http_500s),
                bar="== 0",
                detail="no request may surface an internal error",
            ),
            InvariantResult(
                name="all_responses_schema_valid",
                passed=outcome.schema_failures == 0,
                observed=float(outcome.schema_failures),
                bar="== 0",
                detail="every 200 body re-validates against its typed response model",
            ),
            InvariantResult(
                name="every_request_answered_200",
                passed=answered_200 == outcome.requests,
                observed=float(answered_200),
                bar=f"== {outcome.requests}",
                detail=f"responses by status: {outcome.responses_by_status}",
            ),
            InvariantResult(
                name="zero_lost_requests",
                passed=outcome.receipt is not None and outcome.lost_requests == 0,
                observed=float(outcome.lost_requests),
                bar="== 0",
                detail=(
                    f"drain receipt admitted={receipt.get('admitted')} "
                    f"completed={receipt.get('completed')} shed={receipt.get('shed')}"
                ),
            ),
            InvariantResult(
                name="soak_sheds_nothing",
                passed=receipt.get("shed", -1) == 0,
                observed=float(receipt.get("shed", -1)),
                bar="== 0",
                detail="the conformance trace runs far below the admission bound",
            ),
        ]
        return ScenarioOutcome(
            scenario=self.name,
            config=cfg,
            invariants=invariants,
            per_tenant=per_tenant,
            notes={
                "responses_by_status": dict(outcome.responses_by_status),
                "gateway_stats": dict(outcome.gateway_stats),
                "receipt": dict(receipt),
            },
        )


#: registry of every pinned scenario, keyed by stable name
SCENARIOS: dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        MultiTenantScenario(),
        HotKeyStormScenario(),
        ChurnStormScenario(),
        ColdRestartScenario(),
        ColdRestartPersistentScenario(),
        VocabDriftScenario(),
        ShardFailoverScenario(),
        GatewaySoakScenario(),
    )
}


def get_scenario(name: str) -> Scenario:
    """Look up a registered scenario by name (ValueError on unknown)."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; registered: {', '.join(sorted(SCENARIOS))}"
        ) from None


def run_scenario(name: str, config: ScenarioConfig | None = None) -> ScenarioOutcome:
    """Run one registered scenario end to end and return its outcome."""
    return ScenarioRunner(get_scenario(name), config).run()
