"""Virtual time for deterministic online replays.

A replay must control time: TTL expiry, staleness-vs-churn comparisons,
and refresh-ahead margins all compare timestamps, and wall-clock time
would make every run (and every CI machine) see a different expiry
schedule.  :class:`VirtualClock` is a monotonic counter the replay driver
advances explicitly — typically by a fixed number of virtual seconds per
request — and everything that needs a clock (``RewriteCache``,
``FreshnessController``, staleness accounting) reads the same instance.
"""

from __future__ import annotations


class VirtualClock:
    """Explicitly-advanced monotonic clock.

    Pass ``clock.now`` wherever a zero-argument time source is expected
    (e.g. ``RewriteCache(clock=clock.now)``).
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; returns the new time. Never goes backwards."""
        if seconds < 0:
            raise ValueError("a monotonic clock cannot go backwards")
        self._now += seconds
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(t={self._now:.3f})"
