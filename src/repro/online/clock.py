"""Time sources for the online stack: virtual (replays) and wall (serving).

A replay must control time: TTL expiry, staleness-vs-churn comparisons,
and refresh-ahead margins all compare timestamps, and wall-clock time
would make every run (and every CI machine) see a different expiry
schedule.  :class:`VirtualClock` is a monotonic counter the replay driver
advances explicitly — typically by a fixed number of virtual seconds per
request — and everything that needs a clock (``RewriteCache``,
``FreshnessController``, staleness accounting) reads the same instance.

A *live* deployment (the :mod:`repro.gateway` front door) needs the same
protocol driven by real time.  :class:`WallClock` implements it over
``time.monotonic()`` with **latched** reads: real time flows in only at
explicit :meth:`WallClock.sync` points, so between two synchronizations
the clock behaves exactly like a :class:`VirtualClock` — ``now()`` is
stable, ``advance()`` moves it forward deterministically — which is what
lets the :class:`~repro.online.scheduler.MicroBatchScheduler` run
unmodified (and keep its arrival-ordering contract) against either
implementation.

The **clock protocol** both classes satisfy:

* ``now() -> float`` — current time in seconds; never decreases, and
  stable between mutations (``advance``/``sync``).
* ``advance(seconds) -> float`` — move time forward by ``seconds >= 0``
  and return the new time; negative deltas raise ``ValueError``.

``tests/test_online.py`` holds the property-based conformance suite that
pins this contract for every implementation.
"""

from __future__ import annotations

import time


class VirtualClock:
    """Explicitly-advanced monotonic clock.

    Pass ``clock.now`` wherever a zero-argument time source is expected
    (e.g. ``RewriteCache(clock=clock.now)``).
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; returns the new time. Never goes backwards."""
        if seconds < 0:
            raise ValueError("a monotonic clock cannot go backwards")
        self._now += seconds
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(t={self._now:.3f})"


class WallClock:
    """Real time behind the same protocol as :class:`VirtualClock`.

    Reads are **latched**: ``now()`` returns the last synchronized (or
    advanced) value and does not move on its own.  Call :meth:`sync` at
    each observation point — the gateway does so once per incoming
    request and once per scheduler pump tick — to fold elapsed
    ``time.monotonic()`` into the latch.  Latching is what makes the
    scheduler's ``submit`` contract (arrival stamps are never in the
    past) race-free under real time: the caller reads ``sync()`` and
    submits with that exact stamp before time can move again.

    ``advance()`` keeps the :class:`VirtualClock` semantics — it may push
    the latch *ahead* of real time (e.g. a drain flushing deadline
    triggers); a later ``sync()`` simply waits for real time to catch up
    (it never goes backwards).
    """

    __slots__ = ("_origin", "_now")

    def __init__(self, start: float = 0.0):
        """``start`` anchors ``now()`` at construction, like VirtualClock."""
        self._origin = time.monotonic() - float(start)
        self._now = float(start)

    def now(self) -> float:
        """Current latched time in seconds (stable between sync/advance)."""
        return self._now

    def sync(self) -> float:
        """Fold elapsed real time into the latch; returns the new time.

        Monotonic: if ``advance()`` pushed the latch ahead of real time,
        the latch stays put until real time passes it.
        """
        real = time.monotonic() - self._origin
        if real > self._now:
            self._now = real
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; returns the new time. Never goes backwards."""
        if seconds < 0:
            raise ValueError("a monotonic clock cannot go backwards")
        self._now += seconds
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WallClock(t={self._now:.3f})"
