"""Live-traffic replay with catalog churn.

:class:`TrafficReplay` turns a simulated click log into the workload the
paper's serving tier actually faces: a head-skewed request stream (head
queries dominate, a long tail trickles) interleaved with **catalog churn
events** — products listed and delisted while traffic is in flight.  The
schedule (request batches, churn payloads, removal targets) is
precomputed once from a seed, so two serving stacks can replay the *same*
stream and differ only in policy — e.g. a no-freshness baseline versus a
:class:`~repro.online.freshness.FreshnessController` arm.

Per request the driver records, into a
:class:`~repro.online.stats.WindowedStats`:

* **hit** — served from the cache tier;
* **stale** — served from cache by an entry written *before* the last
  churn event that touched the query's category (the rewrites predate the
  catalog the user is searching);
* **empty** — no tier produced rewrites.

Churn is applied through
:meth:`~repro.search.sharded.ShardedSearchEngine.add_product` /
``remove_product``, so the catalog and the live sharded index move in
lockstep; periodic end-to-end probes (``search_batch``) verify that
retrieval never surfaces a delisted product.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.serving import ServedSearch, ServingPipeline
from repro.data.catalog import CATEGORY_SPECS, CatalogGenerator
from repro.data.clicklog import ClickLog
from repro.data.domain import Product
from repro.online.clock import VirtualClock
from repro.online.freshness import FreshnessController, FreshnessReport
from repro.online.scheduler import (
    MicroBatchScheduler,
    ScheduledRequest,
    SchedulerConfig,
    SchedulerReport,
)
from repro.online.stats import WindowedStats


@dataclass(frozen=True)
class ReplayConfig:
    """Shape of the replayed stream."""

    num_requests: int = 10_000
    #: requests per serving batch (misses share one stacked decode)
    batch_size: int = 32
    #: a churn event lands after every this-many requests
    churn_every: int = 1_000
    #: products listed / delisted per churn event
    churn_adds: int = 6
    churn_removes: int = 6
    #: top fraction of click-ranked queries treated as the head set
    head_fraction: float = 0.5
    #: virtual seconds the clock advances per request
    seconds_per_request: float = 0.05
    #: every Nth batch goes end-to-end through retrieval (search_batch)
    search_every: int = 8
    #: sliding-window size for the streaming gauges
    window: int = 2048
    seed: int = 0


@dataclass(frozen=True)
class Request:
    """One serving request plus its ground-truth category."""

    query: str
    category: str


@dataclass(frozen=True)
class ChurnEvent:
    """One catalog change: products listed and delisted atomically."""

    added: tuple[Product, ...]
    #: (product_id, category) of delisted products
    removed: tuple[tuple[int, str], ...]

    @property
    def categories(self) -> frozenset[str]:
        """Every category this event touched (drives cache invalidation)."""
        return frozenset(p.category for p in self.added) | frozenset(
            category for _, category in self.removed
        )


@dataclass
class ReplayReport:
    """Outcome of one replay arm."""

    arm: str
    requests: int
    seconds: float
    churn_events: int
    stats: WindowedStats
    #: tier counters mirrored from the pipeline at end of run
    cache_served: int = 0
    model_served: int = 0
    unserved: int = 0
    cache_expirations: int = 0
    cache_evictions: int = 0
    #: end-to-end retrieval probes and delisted products they surfaced
    searches: int = 0
    dead_doc_hits: int = 0
    freshness: FreshnessReport | None = None
    #: micro-batching/admission accounting when the arm ran through
    #: :meth:`TrafficReplay.run_scheduled` (None for pre-batched arms)
    scheduler: SchedulerReport | None = None
    #: retained for introspection/rendering
    notes: dict = field(default_factory=dict)

    @property
    def qps(self) -> float:
        """Wall-clock request throughput of this arm."""
        return self.requests / self.seconds if self.seconds > 0 else 0.0

    @property
    def stale_rate(self) -> float:
        """Lifetime stale-serve fraction (see :class:`WindowedStats`)."""
        return self.stats.lifetime_stale_rate

    @property
    def empty_rate(self) -> float:
        """Lifetime empty-serve fraction."""
        return self.stats.lifetime_empty_rate

    @property
    def stale_or_empty_rate(self) -> float:
        """Lifetime degraded-serve fraction (stale OR empty counts once)."""
        return self.stats.lifetime_stale_or_empty_rate


class TrafficReplay:
    """Deterministic head/tail traffic + churn schedule, replayable N times.

    Parameters
    ----------
    click_log:
        The simulated click log; its queries (with click counts and
        ground-truth categories) become the request universe, and its
        catalog defines the initial live product set.
    generator:
        The catalog generator used to sample churn products.  Arms must
        build their catalogs from the *same* generator config/seed so the
        precomputed removal targets exist in every arm.
    config:
        Stream shape (length, batching, churn cadence, head fraction).
    """

    def __init__(
        self,
        click_log: ClickLog,
        generator: CatalogGenerator,
        config: ReplayConfig | None = None,
    ):
        self.config = config or ReplayConfig()
        cfg = self.config
        if cfg.num_requests < 1 or cfg.batch_size < 1:
            raise ValueError("num_requests and batch_size must be >= 1")

        traffic = click_log.traffic()
        if not traffic:
            raise ValueError("click log has no queries to replay")
        self._texts = [text for text, _, _ in traffic]
        self._categories = {text: category for text, category, _ in traffic}
        clicks = np.array([max(c, 1) for _, _, c in traffic], dtype=float)
        self._weights = clicks / clicks.sum()

        head_count = max(1, int(len(traffic) * cfg.head_fraction))
        self._head = {text: self._categories[text] for text in self._texts[:head_count]}

        self._schedule = self._build_schedule(click_log, generator)

    # -- derived views -------------------------------------------------------
    def head_queries(self) -> dict[str, str]:
        """query text -> category for the head set (cache pre-population
        and the freshness controller's managed set)."""
        return dict(self._head)

    @property
    def num_churn_events(self) -> int:
        """Churn events in the precomputed schedule."""
        return sum(1 for kind, _ in self._schedule if kind == "churn")

    # -- schedule ------------------------------------------------------------
    def _build_schedule(self, click_log: ClickLog, generator: CatalogGenerator):
        """Precompute the full event stream: request batches + churn.

        Removal targets are drawn against a simulated live-id set that
        starts from the base catalog and follows the schedule's own
        adds/removes, so every removal is valid in any arm that starts
        from an identical catalog and applies events in order.
        """
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        names = sorted(CATEGORY_SPECS)
        live: dict[int, str] = {
            p.product_id: p.category for p in click_log.catalog.products
        }
        next_id = click_log.catalog.next_product_id()

        schedule: list[tuple[str, object]] = []
        emitted = 0
        since_churn = 0
        while emitted < cfg.num_requests:
            size = min(cfg.batch_size, cfg.num_requests - emitted)
            picks = rng.choice(len(self._texts), size=size, p=self._weights)
            batch = [
                Request(query=self._texts[int(i)], category=self._categories[self._texts[int(i)]])
                for i in picks
            ]
            schedule.append(("batch", batch))
            emitted += size
            since_churn += size
            if since_churn >= cfg.churn_every and emitted < cfg.num_requests:
                since_churn = 0
                added = []
                for _ in range(cfg.churn_adds):
                    category = str(rng.choice(names))
                    added.append(generator.sample_product(category, next_id, rng))
                    live[next_id] = category
                    next_id += 1
                removed = []
                if cfg.churn_removes and live:
                    ids = np.array(sorted(live), dtype=np.int64)
                    count = min(cfg.churn_removes, len(ids))
                    for doc_id in rng.choice(ids, size=count, replace=False):
                        doc_id = int(doc_id)
                        removed.append((doc_id, live.pop(doc_id)))
                schedule.append(
                    ("churn", ChurnEvent(added=tuple(added), removed=tuple(removed)))
                )
        return schedule

    # -- shared replay mechanics ----------------------------------------------
    def apply_churn(
        self,
        engine,
        event: ChurnEvent,
        clock: VirtualClock,
        last_churn: dict[str, float],
        removed_ids: set[int],
        controller: FreshnessController | None,
    ) -> None:
        """Apply one churn event to catalog + live index in lockstep, stamp
        the affected categories, and notify the controller.  Shared by the
        pre-batched and scheduled replay paths — and by the scenario
        library's drivers (:mod:`repro.online.scenarios`) — so churn (and
        thus staleness) semantics can never diverge between harnesses."""
        for product in event.added:
            engine.add_product(product)
        for doc_id, _ in event.removed:
            engine.remove_product(doc_id)
            removed_ids.add(doc_id)
        now = clock.now()
        for category in event.categories:
            last_churn[category] = now
        if controller is not None:
            controller.on_churn(event.categories)

    def record_serve(
        self,
        pipeline: ServingPipeline,
        stats: WindowedStats,
        served,
        query: str,
        last_churn: dict[str, float],
    ) -> None:
        """Record one served request's hit/stale/empty gauges.

        A *stale* serve is a cache hit whose entry was written before the
        last churn event touching the query's category (an entry that
        vanished since — ``stored_at`` None — also counts).  One
        definition, used by both replay paths and by the scenario
        drivers."""
        hit = served.source == "cache"
        empty = not served.rewrites
        stale = False
        if hit:
            category = self._categories.get(query)
            churned_at = last_churn.get(category) if category is not None else None
            if churned_at is not None:
                written_at = pipeline.cache.stored_at(query)
                stale = written_at is None or written_at < churned_at
        stats.record(served.latency_ms, hit=hit, stale=stale, empty=empty)

    # -- replay --------------------------------------------------------------
    def run(
        self,
        pipeline: ServingPipeline,
        clock: VirtualClock,
        controller: FreshnessController | None = None,
        *,
        arm: str = "",
    ) -> ReplayReport:
        """Replay the schedule through one serving stack.

        ``pipeline`` must be constructed with a churn-capable search
        engine (``ShardedSearchEngine``) and a cache whose clock is
        ``clock.now``; ``controller`` is optional — omit it for the
        no-freshness baseline.  The wall-clock ``seconds`` measured here
        cover serving *and* any controller work, so throughput
        comparisons between arms charge freshness its true cost.
        """
        engine = pipeline.search_engine
        if engine is None or not hasattr(engine, "add_product"):
            raise ValueError(
                "replay needs a churn-capable engine on the pipeline "
                "(ShardedSearchEngine with add_product/remove_product)"
            )
        cfg = self.config
        stats = WindowedStats(cfg.window)
        last_churn: dict[str, float] = {}
        removed_ids: set[int] = set()
        churn_events = 0
        searches = 0
        dead_doc_hits = 0
        batch_index = 0

        started = time.perf_counter()
        for kind, payload in self._schedule:
            if kind == "churn":
                self.apply_churn(
                    engine, payload, clock, last_churn, removed_ids, controller
                )
                churn_events += 1
                continue

            clock.advance(len(payload) * cfg.seconds_per_request)
            if controller is not None:
                controller.tick()
            queries = [request.query for request in payload]
            if batch_index % cfg.search_every == 0:
                outcomes = pipeline.search_batch(queries)
                served_batch = [outcome.served for outcome in outcomes]
                searches += len(outcomes)
                for outcome in outcomes:
                    dead_doc_hits += sum(
                        1 for doc_id in outcome.doc_ids if doc_id in removed_ids
                    )
            else:
                served_batch = pipeline.serve_batch(queries)
            batch_index += 1

            for request, served in zip(payload, served_batch):
                self.record_serve(pipeline, stats, served, request.query, last_churn)
        seconds = time.perf_counter() - started

        serving = pipeline.stats
        return ReplayReport(
            arm=arm,
            requests=stats.total_requests,
            seconds=seconds,
            churn_events=churn_events,
            stats=stats,
            cache_served=serving.cache_served,
            model_served=serving.model_served,
            unserved=serving.unserved,
            cache_expirations=serving.cache_expirations,
            cache_evictions=serving.cache_evictions,
            searches=searches,
            dead_doc_hits=dead_doc_hits,
            freshness=controller.report if controller is not None else None,
        )

    # -- scheduled replay ------------------------------------------------------
    def arrival_trace(self) -> list[tuple[str, float, object]]:
        """The schedule as timed single-request arrivals, oldest first.

        Flattens the precomputed request batches into ``("request", t,
        Request)`` events with exponential (Poisson-process) inter-arrival
        gaps of mean ``seconds_per_request``, drawn from their own seeded
        stream so the request *content* is identical to the pre-batched
        schedule.  Churn events become ``("churn", t, ChurnEvent)`` pinned
        at the arrival time of the request they followed.  This is the
        workload shape a :class:`~repro.online.scheduler.MicroBatchScheduler`
        faces: nobody hands it batches, traffic just arrives.
        """
        cfg = self.config
        rng = np.random.default_rng(cfg.seed + 1)
        events: list[tuple[str, float, object]] = []
        t = 0.0
        for kind, payload in self._schedule:
            if kind == "batch":
                gaps = rng.exponential(cfg.seconds_per_request, size=len(payload))
                for request, gap in zip(payload, gaps):
                    t += float(gap)
                    events.append(("request", t, request))
            else:
                events.append(("churn", t, payload))
        return events

    def run_scheduled(
        self,
        pipeline: ServingPipeline,
        clock: VirtualClock,
        scheduler_config: SchedulerConfig | None = None,
        controller: FreshnessController | None = None,
        *,
        arm: str = "",
    ) -> ReplayReport:
        """Replay the arrival trace through a micro-batch scheduler.

        Same serving-stack requirements as :meth:`run`, but requests
        enter one at a time through a
        :class:`~repro.online.scheduler.MicroBatchScheduler` that forms
        batches under ``scheduler_config``'s policy.  Head queries ride
        lane 0, tail queries the lowest-priority lane; a deterministic
        ``1/search_every`` fraction of requests goes end-to-end through
        retrieval (``kind="search"``), mirroring :meth:`run`'s probe
        cadence.  Staleness/hit accounting happens per dispatched batch,
        at the virtual time each request is actually served, and the
        returned report carries the scheduler's own
        :class:`~repro.online.scheduler.SchedulerReport` (queue delays,
        batch sizes, admission counters).
        """
        engine = pipeline.search_engine
        if engine is None or not hasattr(engine, "add_product"):
            raise ValueError(
                "replay needs a churn-capable engine on the pipeline "
                "(ShardedSearchEngine with add_product/remove_product)"
            )
        cfg = self.config
        sched_cfg = scheduler_config or SchedulerConfig()
        stats = WindowedStats(cfg.window)
        last_churn: dict[str, float] = {}
        removed_ids: set[int] = set()
        churn_events = 0
        searches = 0
        dead_doc_hits = 0
        tail_lane = min(1, sched_cfg.num_lanes - 1)

        def on_batch(completions) -> None:
            nonlocal searches, dead_doc_hits
            if controller is not None:
                controller.tick()
            for completion in completions:
                outcome = completion.outcome
                if isinstance(outcome, ServedSearch):
                    served = outcome.served
                    searches += 1
                    dead_doc_hits += sum(
                        1 for doc_id in outcome.doc_ids if doc_id in removed_ids
                    )
                else:
                    served = outcome
                self.record_serve(
                    pipeline, stats, served, completion.request.query, last_churn
                )

        scheduler = MicroBatchScheduler(pipeline, clock, sched_cfg, on_batch=on_batch)
        # Its own stream: the end-to-end probe picks must not perturb the
        # arrival-gap draws (or the schedule's), so replays stay comparable.
        probe_rng = np.random.default_rng(cfg.seed + 2)
        started = time.perf_counter()
        for kind, at, payload in self.arrival_trace():
            if kind == "churn":
                # Serve everything due strictly before the churn lands,
                # then apply it to catalog + index in lockstep.
                scheduler.advance_to(at)
                self.apply_churn(
                    engine, payload, clock, last_churn, removed_ids, controller
                )
                churn_events += 1
                continue
            probe = probe_rng.random() < 1.0 / cfg.search_every
            scheduler.submit(
                ScheduledRequest(
                    query=payload.query,
                    arrival_seconds=at,
                    lane=0 if payload.query in self._head else tail_lane,
                    kind="search" if probe else "rewrite",
                )
            )
        scheduler_report = scheduler.drain()
        seconds = time.perf_counter() - started

        serving = pipeline.stats
        return ReplayReport(
            arm=arm,
            requests=stats.total_requests,
            seconds=seconds,
            churn_events=churn_events,
            stats=stats,
            cache_served=serving.cache_served,
            model_served=serving.model_served,
            unserved=serving.unserved,
            cache_expirations=serving.cache_expirations,
            cache_evictions=serving.cache_evictions,
            searches=searches,
            dead_doc_hits=dead_doc_hits,
            freshness=controller.report if controller is not None else None,
            scheduler=scheduler_report,
        )
