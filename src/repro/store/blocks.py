"""Checksummed, zlib-compressed block container for segment files.

One segment file is a small struct-packed header followed by N
*sections* — independent zlib streams, each carrying the CRC32 and
length of its **uncompressed** payload:

```
offset  size  field
0       4     magic  b"RSEG"
4       2     format version (little-endian u16)
6       2     segment kind code (u16; postings/vectors, full/delta)
8       4     section count (u32)
12      ...   per section: u32 crc32(raw) | u64 raw_len | u64 comp_len
              followed by comp_len bytes of zlib data
              (comp_len == raw_len: raw bytes, stored uncompressed)
```

Sections that zlib cannot shrink — dense float embedding matrices,
mostly — are *stored*: the raw bytes are written as-is and flagged by
``comp_len == raw_len`` (the writer never emits an equal-length zlib
stream, so the flag is unambiguous).  Cold-start loads then skip
decompression entirely for exactly the payloads where it buys nothing,
which is most of the restore's bytes.

Checksums always cover the *uncompressed* bytes, and the manifest-level
payload checksum (:func:`payload_checksum`) chains the same raw bytes —
never the compressed stream — so checksums are stable across zlib
builds and compression levels, which is what keeps the pinned golden
manifest fixture deterministic.

Every decode failure — bad magic, truncated header, section lengths
that overrun the file, zlib errors, length or CRC mismatches — raises
:class:`~repro.store.errors.SegmentCorruptError`; a future format
version raises :class:`~repro.store.errors.SegmentVersionError`.
"""

from __future__ import annotations

import struct
import zlib

from repro.store.errors import SegmentCorruptError, SegmentVersionError

#: four-byte magic at offset 0 of every segment file
MAGIC = b"RSEG"
#: the segment container version this library reads and writes
SEGMENT_VERSION = 1

#: segment kind codes (the manifest carries the matching kind strings)
KIND_POSTINGS = 1
KIND_POSTINGS_DELTA = 2
KIND_VECTORS = 3
KIND_VECTORS_DELTA = 4

_FILE_HEADER = struct.Struct("<4sHHI")
_SECTION_HEADER = struct.Struct("<IQQ")

#: sanity bound on the section count — no codec writes more than a
#: handful, so a huge count is corruption, not a big segment
MAX_SECTIONS = 64


def payload_checksum(sections: list[bytes]) -> int:
    """CRC32 chained over the raw (uncompressed) section payloads.

    This is the per-segment checksum recorded in the manifest; covering
    raw bytes keeps it independent of the zlib build and level.
    """
    crc = 0
    for section in sections:
        crc = zlib.crc32(section, crc)
    return crc & 0xFFFFFFFF


def pack_segment(
    kind: int, sections: list[bytes], *, level: int = 6, stored: tuple[int, ...] = ()
) -> bytes:
    """Serialize raw ``sections`` into one checksummed segment file body.

    Section indexes named in ``stored`` skip zlib outright — dense
    float payloads compress a little but cost real decompression time
    on every cold start, a bad trade for the restore path.
    """
    if len(sections) > MAX_SECTIONS:
        raise ValueError(f"too many sections: {len(sections)} > {MAX_SECTIONS}")
    parts = [_FILE_HEADER.pack(MAGIC, SEGMENT_VERSION, kind, len(sections))]
    for at, section in enumerate(sections):
        compressed = section if at in stored else zlib.compress(section, level)
        # store incompressible sections raw; comp_len == raw_len is the
        # stored flag, so an equal-length zlib stream must never be written
        if len(compressed) >= len(section):
            compressed = section
        parts.append(
            _SECTION_HEADER.pack(
                zlib.crc32(section) & 0xFFFFFFFF, len(section), len(compressed)
            )
        )
        parts.append(compressed)
    return b"".join(parts)


def unpack_segment(
    data: bytes, *, expected_kind: int | None = None, expected_crc: int | None = None
) -> tuple[int, list[bytes]]:
    """Parse and verify a segment file body into ``(kind, sections)``.

    Verifies, in order: magic, container version (future versions raise
    :class:`SegmentVersionError`), section count bound, per-section
    bounds against the file size, zlib integrity, decompressed length,
    per-section CRC32, trailing garbage, the expected kind code, and —
    when ``expected_crc`` is given (the manifest's record) — the chained
    payload checksum.  Any failure raises
    :class:`SegmentCorruptError`.
    """
    if len(data) < _FILE_HEADER.size:
        raise SegmentCorruptError(
            f"segment too short for its header: {len(data)} bytes"
        )
    magic, version, kind, count = _FILE_HEADER.unpack_from(data, 0)
    if magic != MAGIC:
        raise SegmentCorruptError(f"bad segment magic {magic!r}")
    if version > SEGMENT_VERSION:
        raise SegmentVersionError(
            f"segment container version {version} is newer than the supported "
            f"version {SEGMENT_VERSION}; refusing to guess at its layout"
        )
    if version < 1:
        raise SegmentCorruptError(f"invalid segment container version {version}")
    if count > MAX_SECTIONS:
        raise SegmentCorruptError(f"implausible section count {count}")
    if expected_kind is not None and kind != expected_kind:
        raise SegmentCorruptError(
            f"segment kind {kind} does not match expected kind {expected_kind}"
        )

    sections: list[bytes] = []
    offset = _FILE_HEADER.size
    for index in range(count):
        if offset + _SECTION_HEADER.size > len(data):
            raise SegmentCorruptError(f"section {index} header truncated")
        crc, raw_len, comp_len = _SECTION_HEADER.unpack_from(data, offset)
        offset += _SECTION_HEADER.size
        if offset + comp_len > len(data):
            raise SegmentCorruptError(
                f"section {index} body overruns the file "
                f"({comp_len} bytes at offset {offset}, file is {len(data)})"
            )
        compressed = data[offset : offset + comp_len]
        offset += comp_len
        if comp_len == raw_len:
            raw = compressed  # stored section: raw bytes, no zlib stream
        else:
            try:
                raw = zlib.decompress(compressed)
            except zlib.error as error:
                raise SegmentCorruptError(
                    f"section {index} failed to decompress: {error}"
                ) from None
            if len(raw) != raw_len:
                raise SegmentCorruptError(
                    f"section {index} decompressed to {len(raw)} bytes, "
                    f"header says {raw_len}"
                )
        if zlib.crc32(raw) & 0xFFFFFFFF != crc:
            raise SegmentCorruptError(f"section {index} checksum mismatch")
        sections.append(raw)
    if offset != len(data):
        raise SegmentCorruptError(
            f"{len(data) - offset} trailing bytes after the last section"
        )
    if expected_crc is not None and payload_checksum(sections) != expected_crc:
        raise SegmentCorruptError(
            "segment payload checksum does not match the manifest record"
        )
    return kind, sections
