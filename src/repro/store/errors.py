"""Typed error hierarchy of the persistent segment store.

Every failure the store can produce — unreadable files, checksum
mismatches, truncated blocks, malformed or future-version manifests —
is surfaced as a subclass of :class:`StoreError`.  Nothing below this
package ever leaks a raw ``zlib.error`` / ``struct.error`` /
``json.JSONDecodeError`` / ``KeyError`` to a caller: the corruption-fuzz
suite (``tests/test_store_corruption.py``) injects bit-flips,
truncations and field mutations and requires that every load either
round-trips byte-identically or raises one of these types — never a
foreign exception, and never silently wrong search results.
"""

from __future__ import annotations


class StoreError(Exception):
    """Base class of every error raised by :mod:`repro.store`."""


class SegmentCorruptError(StoreError):
    """A segment file failed an integrity check.

    Raised for bad magic, truncated or oversized blocks, checksum
    mismatches (block-level or manifest-level), undecodable payloads,
    internal inconsistencies (postings out of order, cell sizes not
    summing to the doc count), and segment files missing on disk.
    """


class SegmentVersionError(SegmentCorruptError):
    """A segment file was written by a newer format version.

    Subclasses :class:`SegmentCorruptError` so "reject the file with a
    typed error" handlers need only catch the parent; the distinct type
    keeps version skew distinguishable from bit rot.
    """


class ManifestError(StoreError):
    """The manifest is missing, unparseable, or structurally invalid.

    Covers absent manifest files, JSON syntax errors, wrong format
    markers, missing or mistyped fields, unknown segment kinds, and
    checksum mismatches of the manifest body itself.
    """


class ManifestVersionError(ManifestError):
    """The manifest declares a format version newer than this library.

    Loading must fail closed: a future writer may have changed segment
    semantics in ways this reader cannot detect, so the error message
    names both versions instead of guessing.
    """
