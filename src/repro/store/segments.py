"""Struct-packed codecs for postings and IVF-cell segments.

Each codec turns one in-RAM index shard into a small set of contiguous
array payloads (and back), framed by :mod:`repro.store.blocks`:

* **postings** (full) — the token table (newline-joined UTF-8), one
  int64 postings-length per token, the concatenated sorted doc-id and
  term-frequency vectors, then the document side: sorted doc ids, doc
  lengths, and every document's ordered token-id sequence (indices into
  the token table) so :meth:`InvertedIndex.document` round-trips
  exactly.
* **postings_delta** — removed doc ids plus added documents (ids,
  lengths, token-id sequences against the delta's own token table).
* **vectors** (full) — the IVF geometry (dim, clusters, nprobe, seed,
  trained flag), the centroid matrix, per-cell sizes, and the
  concatenated member ids and float64 vectors in live cell order, so a
  reload reproduces the exact cell layout (and therefore the exact
  probe results) of the saved index.
* **vectors_delta** — removed doc ids plus added ``(id, vector)`` rows;
  replaying them through :meth:`VectorIndex.add_document` assigns each
  vector to the same cell the live index chose, because the centroids
  are identical by construction (the store falls back to a full rewrite
  whenever centroids changed).

Decoders validate shape and ordering invariants (sorted postings,
consistent totals, in-range token ids) on top of the block checksums
and raise :class:`~repro.store.errors.SegmentCorruptError` on any
mismatch; they never return a half-built index.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.search.inverted_index import InvertedIndex
from repro.search.vector import VectorIndex, _Cell
from repro.store import blocks
from repro.store.errors import SegmentCorruptError

_POSTINGS_HEADER = struct.Struct("<QQQQ")
_POSTINGS_DELTA_HEADER = struct.Struct("<QQQ")
_VECTORS_HEADER = struct.Struct("<qqqqqqq")
_VECTORS_DELTA_HEADER = struct.Struct("<qqq")


def _decode_array(section: bytes, dtype, what: str) -> np.ndarray:
    """Reinterpret a raw section as an array, or raise typed corruption."""
    dtype = np.dtype(dtype)
    if len(section) % dtype.itemsize:
        raise SegmentCorruptError(
            f"{what} payload of {len(section)} bytes is not a whole number of "
            f"{dtype.itemsize}-byte items"
        )
    return np.frombuffer(section, dtype=dtype)


def _decode_tokens(section: bytes) -> list[str]:
    """The newline-joined token table back into a list (may be empty)."""
    if not section:
        return []
    try:
        text = section.decode("utf-8")
    except UnicodeDecodeError as error:
        raise SegmentCorruptError(f"token table is not valid UTF-8: {error}") from None
    return text.split("\n")


def _encode_tokens(tokens: list[str]) -> bytes:
    for token in tokens:
        if "\n" in token:
            raise ValueError(f"token {token!r} contains a newline")
    return "\n".join(tokens).encode("utf-8")


def _encode_docs(
    docs: dict[int, tuple[str, ...]], token_ids: dict[str, int]
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(doc_ids, doc_lengths, concatenated per-doc token-id sequences)."""
    doc_ids = sorted(docs)
    lengths = np.asarray([len(docs[d]) for d in doc_ids], dtype=np.int64)
    flat = np.asarray(
        [token_ids[token] for d in doc_ids for token in docs[d]], dtype=np.int64
    )
    return np.asarray(doc_ids, dtype=np.int64), lengths, flat


def _decode_docs(
    tokens: list[str],
    doc_ids: np.ndarray,
    doc_lengths: np.ndarray,
    flat_token_ids: np.ndarray,
    what: str,
) -> dict[int, tuple[str, ...]]:
    """Rebuild the doc-id -> ordered-token-tuple map with full validation."""
    if doc_ids.size != doc_lengths.size:
        raise SegmentCorruptError(
            f"{what}: {doc_ids.size} doc ids but {doc_lengths.size} doc lengths"
        )
    if doc_ids.size and np.any(np.diff(doc_ids) <= 0):
        raise SegmentCorruptError(f"{what}: doc ids are not strictly increasing")
    if doc_lengths.size and int(doc_lengths.min()) < 0:
        raise SegmentCorruptError(f"{what}: negative document length")
    if int(doc_lengths.sum()) != flat_token_ids.size:
        raise SegmentCorruptError(
            f"{what}: doc lengths sum to {int(doc_lengths.sum())} but "
            f"{flat_token_ids.size} token ids are stored"
        )
    if flat_token_ids.size and (
        int(flat_token_ids.min()) < 0 or int(flat_token_ids.max()) >= len(tokens)
    ):
        raise SegmentCorruptError(f"{what}: token id outside the token table")
    docs: dict[int, tuple[str, ...]] = {}
    offset = 0
    id_list = doc_ids.tolist()
    length_list = doc_lengths.tolist()
    # one fancy-indexed id->token pass, then C-speed tuple(slice) per doc
    token_table = np.asarray(tokens, dtype=object)
    flat_tokens = (
        token_table[flat_token_ids].tolist() if flat_token_ids.size else []
    )
    for doc_id, length in zip(id_list, length_list):
        end = offset + length
        docs[doc_id] = tuple(flat_tokens[offset:end])
        offset = end
    return docs


# ---------------------------------------------------------------------------
# postings (full)
# ---------------------------------------------------------------------------
def encode_postings_segment(index: InvertedIndex) -> bytes:
    """Serialize one :class:`InvertedIndex` into a full postings segment."""
    tokens = sorted(index._postings)
    token_ids = {token: at for at, token in enumerate(tokens)}
    lengths = np.asarray([len(index._postings[t]) for t in tokens], dtype=np.int64)
    post_ids = np.asarray(
        [d for t in tokens for d in index._postings[t]], dtype=np.int64
    )
    post_tfs = np.asarray([f for t in tokens for f in index._tfs[t]], dtype=np.int64)
    doc_ids, doc_lengths, flat = _encode_docs(index._docs, token_ids)
    header = _POSTINGS_HEADER.pack(
        len(index._docs), len(tokens), post_ids.size, flat.size
    )
    return blocks.pack_segment(
        blocks.KIND_POSTINGS,
        [
            header,
            _encode_tokens(tokens),
            lengths.tobytes(),
            post_ids.tobytes(),
            post_tfs.tobytes(),
            doc_ids.tobytes(),
            doc_lengths.tobytes(),
            flat.tobytes(),
        ],
    )


def decode_postings_segment(
    data: bytes, *, expected_crc: int | None = None
) -> InvertedIndex:
    """Rebuild an :class:`InvertedIndex` from a full postings segment."""
    _, sections = blocks.unpack_segment(
        data, expected_kind=blocks.KIND_POSTINGS, expected_crc=expected_crc
    )
    if len(sections) != 8:
        raise SegmentCorruptError(
            f"postings segment has {len(sections)} sections, expected 8"
        )
    if len(sections[0]) != _POSTINGS_HEADER.size:
        raise SegmentCorruptError("postings segment header has the wrong size")
    num_docs, num_terms, num_postings, num_doc_tokens = _POSTINGS_HEADER.unpack(
        sections[0]
    )
    tokens = _decode_tokens(sections[1])
    if len(tokens) != num_terms:
        raise SegmentCorruptError(
            f"token table holds {len(tokens)} tokens, header says {num_terms}"
        )
    lengths = _decode_array(sections[2], np.int64, "postings lengths")
    post_ids = _decode_array(sections[3], np.int64, "postings doc ids")
    post_tfs = _decode_array(sections[4], np.int64, "postings term frequencies")
    doc_ids = _decode_array(sections[5], np.int64, "doc ids")
    doc_lengths = _decode_array(sections[6], np.int64, "doc lengths")
    flat = _decode_array(sections[7], np.int64, "doc token ids")

    if lengths.size != num_terms:
        raise SegmentCorruptError(
            f"{lengths.size} postings lengths for {num_terms} tokens"
        )
    if lengths.size and int(lengths.min()) < 1:
        raise SegmentCorruptError("a token has an empty postings list")
    if int(lengths.sum()) != num_postings or post_ids.size != num_postings:
        raise SegmentCorruptError("postings lengths do not sum to the stored total")
    if post_tfs.size != num_postings:
        raise SegmentCorruptError("term-frequency vector length mismatch")
    if post_tfs.size and int(post_tfs.min()) < 1:
        raise SegmentCorruptError("non-positive term frequency")
    if doc_ids.size != num_docs:
        raise SegmentCorruptError(f"{doc_ids.size} doc ids, header says {num_docs}")
    if flat.size != num_doc_tokens:
        raise SegmentCorruptError("document token payload length mismatch")

    # Per-token postings must be strictly increasing: diff over the
    # concatenated vector, masking out the boundaries between tokens.
    if num_postings:
        boundaries = np.cumsum(lengths)[:-1]
        deltas = np.diff(post_ids)
        mask = np.ones(deltas.size, dtype=bool)
        mask[boundaries - 1] = False
        if np.any(deltas[mask] <= 0):
            raise SegmentCorruptError("postings are not sorted by doc id")

    docs = _decode_docs(tokens, doc_ids, doc_lengths, flat, "postings segment")

    index = InvertedIndex()
    offsets = [0] + np.cumsum(lengths).tolist()
    id_list = post_ids.tolist()
    tf_list = post_tfs.tolist()
    for at, token in enumerate(tokens):
        lo, hi = offsets[at], offsets[at + 1]
        index._postings[token] = id_list[lo:hi]
        index._tfs[token] = tf_list[lo:hi]
    index._docs = docs
    index._doc_lengths = dict(zip(doc_ids.tolist(), doc_lengths.tolist()))
    index._total_length = int(doc_lengths.sum())
    return index


# ---------------------------------------------------------------------------
# postings (delta)
# ---------------------------------------------------------------------------
def encode_postings_delta(
    index: InvertedIndex, added_ids: list[int], removed_ids: list[int]
) -> bytes:
    """Serialize a churn delta: removals plus ``index``'s current docs."""
    added_ids = sorted(added_ids)
    docs = {doc_id: index._docs[doc_id] for doc_id in added_ids}
    tokens = sorted({token for tokens_ in docs.values() for token in tokens_})
    token_ids = {token: at for at, token in enumerate(tokens)}
    doc_ids, doc_lengths, flat = _encode_docs(docs, token_ids)
    removed = np.asarray(sorted(removed_ids), dtype=np.int64)
    header = _POSTINGS_DELTA_HEADER.pack(len(added_ids), removed.size, flat.size)
    return blocks.pack_segment(
        blocks.KIND_POSTINGS_DELTA,
        [
            header,
            _encode_tokens(tokens),
            removed.tobytes(),
            doc_ids.tobytes(),
            doc_lengths.tobytes(),
            flat.tobytes(),
        ],
    )


def decode_postings_delta(
    data: bytes, *, expected_crc: int | None = None
) -> tuple[dict[int, tuple[str, ...]], list[int]]:
    """Decode a postings delta into ``(added docs, removed doc ids)``."""
    _, sections = blocks.unpack_segment(
        data, expected_kind=blocks.KIND_POSTINGS_DELTA, expected_crc=expected_crc
    )
    if len(sections) != 6:
        raise SegmentCorruptError(
            f"postings delta has {len(sections)} sections, expected 6"
        )
    if len(sections[0]) != _POSTINGS_DELTA_HEADER.size:
        raise SegmentCorruptError("postings delta header has the wrong size")
    num_added, num_removed, num_tokens = _POSTINGS_DELTA_HEADER.unpack(sections[0])
    tokens = _decode_tokens(sections[1])
    removed = _decode_array(sections[2], np.int64, "removed doc ids")
    doc_ids = _decode_array(sections[3], np.int64, "added doc ids")
    doc_lengths = _decode_array(sections[4], np.int64, "added doc lengths")
    flat = _decode_array(sections[5], np.int64, "added doc token ids")
    if removed.size != num_removed:
        raise SegmentCorruptError("removed-id count mismatch")
    if removed.size and np.any(np.diff(removed) <= 0):
        raise SegmentCorruptError("removed ids are not strictly increasing")
    if doc_ids.size != num_added:
        raise SegmentCorruptError("added-doc count mismatch")
    if flat.size != num_tokens:
        raise SegmentCorruptError("added token payload length mismatch")
    docs = _decode_docs(tokens, doc_ids, doc_lengths, flat, "postings delta")
    return docs, removed.tolist()


def apply_postings_delta(index: InvertedIndex, data: bytes, *, expected_crc=None) -> None:
    """Replay one delta onto ``index``: removals first, then additions."""
    docs, removed = decode_postings_delta(data, expected_crc=expected_crc)
    try:
        for doc_id in removed:
            index.remove_document(doc_id)
        for doc_id in sorted(docs):
            index.add_document(doc_id, docs[doc_id])
    except (KeyError, ValueError) as error:
        raise SegmentCorruptError(
            f"postings delta does not apply to its base segment: {error}"
        ) from None


# ---------------------------------------------------------------------------
# vectors (full)
# ---------------------------------------------------------------------------
def encode_vectors_segment(index: VectorIndex) -> bytes:
    """Serialize one :class:`VectorIndex`, preserving exact cell layout."""
    trained = 1 if index.centroids is not None else 0
    cells = index._cells
    sizes = np.asarray([cell.size for cell in cells], dtype=np.int64)
    ids = np.asarray(
        [doc_id for cell in cells for doc_id in cell.ids], dtype=np.int64
    )
    if ids.size:
        vectors = np.concatenate([cell.matrix[: cell.size] for cell in cells])
    else:
        vectors = np.zeros((0, index.dim), dtype=np.float64)
    centroids = (
        np.ascontiguousarray(index.centroids, dtype=np.float64)
        if trained
        else np.zeros((0, index.dim), dtype=np.float64)
    )
    header = _VECTORS_HEADER.pack(
        index.dim,
        index.num_clusters,
        index.nprobe,
        index.seed,
        trained,
        len(cells),
        ids.size,
    )
    return blocks.pack_segment(
        blocks.KIND_VECTORS,
        stored=(4,),  # the dense embedding matrix: skip zlib on the hot path
        sections=[
            header,
            centroids.tobytes(),
            sizes.tobytes(),
            ids.tobytes(),
            np.ascontiguousarray(vectors, dtype=np.float64).tobytes(),
        ],
    )


def decode_vectors_segment(
    data: bytes, *, expected_crc: int | None = None
) -> VectorIndex:
    """Rebuild a :class:`VectorIndex` with its exact saved cell layout."""
    _, sections = blocks.unpack_segment(
        data, expected_kind=blocks.KIND_VECTORS, expected_crc=expected_crc
    )
    if len(sections) != 5:
        raise SegmentCorruptError(
            f"vectors segment has {len(sections)} sections, expected 5"
        )
    if len(sections[0]) != _VECTORS_HEADER.size:
        raise SegmentCorruptError("vectors segment header has the wrong size")
    dim, num_clusters, nprobe, seed, trained, num_cells, num_docs = (
        _VECTORS_HEADER.unpack(sections[0])
    )
    if trained not in (0, 1):
        raise SegmentCorruptError(f"invalid trained flag {trained}")
    try:
        index = VectorIndex(
            int(dim), num_clusters=int(num_clusters), nprobe=int(nprobe), seed=int(seed)
        )
    except ValueError as error:
        raise SegmentCorruptError(f"invalid vector-index geometry: {error}") from None

    centroid_flat = _decode_array(sections[1], np.float64, "centroids")
    sizes = _decode_array(sections[2], np.int64, "cell sizes")
    ids = _decode_array(sections[3], np.int64, "cell member ids")
    flat = _decode_array(sections[4], np.float64, "cell vectors")

    if trained:
        if num_cells < 1 or centroid_flat.size != num_cells * dim:
            raise SegmentCorruptError("centroid matrix does not match the cell count")
        index.centroids = centroid_flat.reshape(num_cells, dim).copy()
    else:
        if centroid_flat.size:
            raise SegmentCorruptError("untrained index carries centroid data")
        if num_cells != 1:
            raise SegmentCorruptError(
                f"untrained index must have exactly one cell, found {num_cells}"
            )
    if sizes.size != num_cells:
        raise SegmentCorruptError(f"{sizes.size} cell sizes for {num_cells} cells")
    if sizes.size and int(sizes.min()) < 0:
        raise SegmentCorruptError("negative cell size")
    if int(sizes.sum()) != num_docs or ids.size != num_docs:
        raise SegmentCorruptError("cell sizes do not sum to the stored doc count")
    if flat.size != num_docs * dim:
        raise SegmentCorruptError("vector payload does not match the doc count")

    matrix = flat.reshape(num_docs, dim) if num_docs else flat.reshape(0, dim)
    if ids.size != np.unique(ids).size:
        raise SegmentCorruptError("a doc id is stored in two cells")
    index._cells = []
    offset = 0
    for cell_id, size in enumerate(sizes.tolist()):
        cell = _Cell(int(dim), capacity=max(8, size))
        members = ids[offset : offset + size].tolist()
        cell.ids = members
        cell.pos = {doc_id: at for at, doc_id in enumerate(members)}
        # one standalone copy per cell: _vectors must never alias the cell
        # matrix, whose rows are overwritten by swap-with-last removal
        block = matrix[offset : offset + size].copy()
        if size:
            cell.matrix[:size] = block
        cell.size = size
        index._cells.append(cell)
        index._cell_of.update((doc_id, cell_id) for doc_id in members)
        index._vectors.update(zip(members, block))
        offset += size
    return index


# ---------------------------------------------------------------------------
# vectors (delta)
# ---------------------------------------------------------------------------
def encode_vectors_delta(
    index: VectorIndex, added_ids: list[int], removed_ids: list[int]
) -> bytes:
    """Serialize a vector churn delta from ``index``'s current vectors."""
    added_ids = sorted(added_ids)
    removed = np.asarray(sorted(removed_ids), dtype=np.int64)
    added = np.asarray(added_ids, dtype=np.int64)
    if added_ids:
        vectors = np.stack([index._vectors[doc_id] for doc_id in added_ids])
    else:
        vectors = np.zeros((0, index.dim), dtype=np.float64)
    header = _VECTORS_DELTA_HEADER.pack(index.dim, added.size, removed.size)
    return blocks.pack_segment(
        blocks.KIND_VECTORS_DELTA,
        stored=(3,),  # the dense embedding matrix: skip zlib on the hot path
        sections=[
            header,
            removed.tobytes(),
            added.tobytes(),
            np.ascontiguousarray(vectors, dtype=np.float64).tobytes(),
        ],
    )


def decode_vectors_delta(
    data: bytes, *, expected_crc: int | None = None
) -> tuple[list[int], np.ndarray, list[int]]:
    """Decode a vector delta into ``(added ids, added vectors, removed ids)``."""
    _, sections = blocks.unpack_segment(
        data, expected_kind=blocks.KIND_VECTORS_DELTA, expected_crc=expected_crc
    )
    if len(sections) != 4:
        raise SegmentCorruptError(
            f"vectors delta has {len(sections)} sections, expected 4"
        )
    if len(sections[0]) != _VECTORS_DELTA_HEADER.size:
        raise SegmentCorruptError("vectors delta header has the wrong size")
    dim, num_added, num_removed = _VECTORS_DELTA_HEADER.unpack(sections[0])
    if dim < 1:
        raise SegmentCorruptError(f"invalid vector dimension {dim}")
    removed = _decode_array(sections[1], np.int64, "removed doc ids")
    added = _decode_array(sections[2], np.int64, "added doc ids")
    flat = _decode_array(sections[3], np.float64, "added vectors")
    if removed.size != num_removed:
        raise SegmentCorruptError("removed-id count mismatch")
    if removed.size and np.any(np.diff(removed) <= 0):
        raise SegmentCorruptError("removed ids are not strictly increasing")
    if added.size != num_added:
        raise SegmentCorruptError("added-id count mismatch")
    if added.size and np.any(np.diff(added) <= 0):
        raise SegmentCorruptError("added ids are not strictly increasing")
    if flat.size != num_added * dim:
        raise SegmentCorruptError("added-vector payload does not match the id count")
    return added.tolist(), flat.reshape(num_added, dim), removed.tolist()


def apply_vectors_delta(index: VectorIndex, data: bytes, *, expected_crc=None) -> None:
    """Replay one vector delta onto ``index``: removals, then additions.

    Additions go through :meth:`VectorIndex.add_document`, which assigns
    each vector to the nearest centroid — the same computation the live
    index performed, so the reconstructed cell layout matches exactly
    (the store writes a full segment instead whenever centroids moved).
    """
    added, vectors, removed = decode_vectors_delta(data, expected_crc=expected_crc)
    try:
        for doc_id in removed:
            index.remove_document(doc_id)
        for doc_id, vector in zip(added, vectors):
            index.add_document(doc_id, vector)
    except (KeyError, ValueError) as error:
        raise SegmentCorruptError(
            f"vectors delta does not apply to its base segment: {error}"
        ) from None
