"""Versioned JSON manifest over a directory of immutable segments.

The manifest is the single mutable object in a store directory: segment
files are written once and never touched again, and each save/compact
writes a new ``MANIFEST.json`` (atomically, via rename) that references
the current segment set.  A reader needs nothing but the manifest to
know what to load, in what order, and what every byte should hash to:

* ``format`` / ``version`` — format marker and integer version.  A
  future version fails closed with
  :class:`~repro.store.errors.ManifestVersionError`.
* ``tier`` — ``"lexical"`` (postings segments) or ``"vector"`` (IVF
  cell segments).
* ``num_shards`` / ``generation`` — shard layout and the monotonically
  increasing save generation.
* ``segments`` — one :class:`SegmentRef` per file: name, kind, owning
  shard, generation, CRC32 of the uncompressed payload, payload size,
  doc/remove counts and the doc-id range (the incremental-load planner
  and the load-time cross-checks both read these).
* ``checksum`` — CRC32 of the canonical JSON of everything above, so a
  mutated field (not just broken syntax) is caught before any segment
  is trusted.

Per-shard segments form a *chain*: exactly one full segment (the base)
followed by zero or more deltas in strictly increasing generation
order; :meth:`Manifest.chain_for_shard` validates and returns it.
:meth:`Manifest.diff` supports incremental reloads: given the manifest
a process already has, it names exactly which segment files were added
and removed since.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import asdict, dataclass, field

from repro.store.errors import ManifestError, ManifestVersionError

#: format marker every manifest must carry
FORMAT_NAME = "repro-store"
#: manifest schema version this library reads and writes
FORMAT_VERSION = 1

#: file name of the manifest inside a store directory
MANIFEST_NAME = "MANIFEST.json"

#: the segment kinds a manifest may reference, per tier
KINDS_BY_TIER = {
    "lexical": ("postings", "postings_delta"),
    "vector": ("vectors", "vectors_delta"),
}
#: kinds that are full (base) segments, starting a shard's chain
FULL_KINDS = ("postings", "vectors")


@dataclass(frozen=True)
class SegmentRef:
    """One immutable segment file as recorded in the manifest."""

    #: file name within the store directory
    name: str
    #: "postings" | "postings_delta" | "vectors" | "vectors_delta"
    kind: str
    #: owning shard (documents with ``doc_id % num_shards == shard``)
    shard: int
    #: manifest generation this segment was written at
    generation: int
    #: CRC32 of the uncompressed section payloads (zlib-build independent)
    checksum: int
    #: total uncompressed payload bytes
    payload_bytes: int
    #: documents in a full segment / documents added by a delta
    doc_count: int
    #: documents removed by a delta (0 for full segments)
    removed_count: int
    #: smallest doc id touched (-1 when the segment is empty)
    min_doc_id: int
    #: largest doc id touched (-1 when the segment is empty)
    max_doc_id: int

    @property
    def is_full(self) -> bool:
        """True for base segments, False for deltas."""
        return self.kind in FULL_KINDS


_REF_FIELDS = {
    "name": str,
    "kind": str,
    "shard": int,
    "generation": int,
    "checksum": int,
    "payload_bytes": int,
    "doc_count": int,
    "removed_count": int,
    "min_doc_id": int,
    "max_doc_id": int,
}


def _manifest_body_checksum(body: dict) -> int:
    """CRC32 of the canonical (sorted, compact) JSON of ``body``."""
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(canonical.encode("utf-8")) & 0xFFFFFFFF


@dataclass
class Manifest:
    """The versioned table of contents of one segment-store directory."""

    tier: str
    num_shards: int
    generation: int
    segments: list[SegmentRef]
    #: free-form store metadata (e.g. the vector tier records its dim);
    #: values must be JSON-representable scalars
    meta: dict = field(default_factory=dict)
    version: int = FORMAT_VERSION

    def chain_for_shard(self, shard: int) -> list[SegmentRef]:
        """The shard's load chain: one full base, then deltas by generation.

        Raises :class:`ManifestError` when the chain is malformed —
        no base, several bases, a delta at or before the base's
        generation, or duplicate generations.
        """
        refs = sorted(
            (ref for ref in self.segments if ref.shard == shard),
            key=lambda ref: ref.generation,
        )
        fulls = [ref for ref in refs if ref.is_full]
        if len(fulls) != 1:
            raise ManifestError(
                f"shard {shard} must have exactly one full segment, "
                f"found {len(fulls)}"
            )
        if refs[0] is not fulls[0]:
            raise ManifestError(
                f"shard {shard} has a delta segment older than its base"
            )
        generations = [ref.generation for ref in refs]
        if len(set(generations)) != len(generations):
            raise ManifestError(f"shard {shard} has duplicate segment generations")
        return refs

    def diff(self, older: "Manifest | None") -> dict[str, list[str]]:
        """Segment-file changes since ``older``: the incremental-load plan.

        Returns ``{"added": [...], "removed": [...], "kept": [...]}``
        segment names.  A reader holding ``older``'s state only needs to
        fetch the ``added`` files (and drop the ``removed`` ones) to
        catch up; ``older=None`` marks everything as added.
        """
        ours = {ref.name: ref for ref in self.segments}
        theirs = {} if older is None else {ref.name: ref for ref in older.segments}
        return {
            "added": sorted(name for name in ours if name not in theirs),
            "removed": sorted(name for name in theirs if name not in ours),
            "kept": sorted(name for name in ours if name in theirs),
        }

    def _body(self) -> dict:
        return {
            "format": FORMAT_NAME,
            "version": self.version,
            "tier": self.tier,
            "num_shards": self.num_shards,
            "generation": self.generation,
            "meta": dict(self.meta),
            "segments": [asdict(ref) for ref in self.segments],
        }

    def to_json(self) -> str:
        """Deterministic JSON rendering (sorted keys, fixed indent).

        Byte-for-byte stable for equal contents — no timestamps, no
        compressed sizes, no environment-dependent fields — which is
        what lets ``tests/test_store_manifest.py`` pin a golden fixture.
        """
        body = self._body()
        body["checksum"] = _manifest_body_checksum(self._body())
        return json.dumps(body, sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "Manifest":
        """Parse and validate manifest JSON, failing closed on any defect.

        Validation order is deliberate: JSON syntax, format marker, and
        the version *first* (so a future-version manifest raises
        :class:`ManifestVersionError` even if its schema changed), then
        the body checksum, then field-by-field structure.  Every failure
        is a :class:`ManifestError` (or its version subclass) — never a
        raw ``KeyError``/``TypeError``/``json.JSONDecodeError``.
        """
        try:
            raw = json.loads(text)
        except (json.JSONDecodeError, UnicodeDecodeError, TypeError) as error:
            raise ManifestError(f"manifest is not valid JSON: {error}") from None
        if not isinstance(raw, dict):
            raise ManifestError("manifest root must be a JSON object")
        if raw.get("format") != FORMAT_NAME:
            raise ManifestError(
                f"missing or unknown manifest format marker {raw.get('format')!r}; "
                f"expected {FORMAT_NAME!r}"
            )
        version = raw.get("version")
        if not isinstance(version, int) or isinstance(version, bool):
            raise ManifestError(f"manifest version must be an integer, got {version!r}")
        if version > FORMAT_VERSION:
            raise ManifestVersionError(
                f"manifest version {version} is newer than the supported "
                f"version {FORMAT_VERSION}; upgrade the reader or re-save the "
                "store with this version"
            )
        if version < 1:
            raise ManifestError(f"invalid manifest version {version}")

        checksum = raw.get("checksum")
        if not isinstance(checksum, int) or isinstance(checksum, bool):
            raise ManifestError("manifest is missing its integer checksum field")
        body = {key: value for key, value in raw.items() if key != "checksum"}
        if _manifest_body_checksum(body) != checksum:
            raise ManifestError(
                "manifest body checksum mismatch: a field was altered after "
                "the manifest was written"
            )

        for key, expected_type in (
            ("tier", str),
            ("num_shards", int),
            ("generation", int),
            ("meta", dict),
            ("segments", list),
        ):
            if key not in raw:
                raise ManifestError(f"manifest is missing required field {key!r}")
            if not isinstance(raw[key], expected_type) or isinstance(raw[key], bool):
                raise ManifestError(
                    f"manifest field {key!r} must be {expected_type.__name__}, "
                    f"got {type(raw[key]).__name__}"
                )
        tier = raw["tier"]
        if tier not in KINDS_BY_TIER:
            raise ManifestError(
                f"unknown tier {tier!r}; expected one of {sorted(KINDS_BY_TIER)}"
            )
        num_shards = raw["num_shards"]
        if num_shards < 1:
            raise ManifestError(f"num_shards must be >= 1, got {num_shards}")
        if raw["generation"] < 1:
            raise ManifestError(f"generation must be >= 1, got {raw['generation']}")

        refs: list[SegmentRef] = []
        names: set[str] = set()
        for at, entry in enumerate(raw["segments"]):
            if not isinstance(entry, dict):
                raise ManifestError(f"segment entry {at} must be an object")
            kwargs = {}
            for key, expected_type in _REF_FIELDS.items():
                if key not in entry:
                    raise ManifestError(
                        f"segment entry {at} is missing required field {key!r}"
                    )
                value = entry[key]
                if not isinstance(value, expected_type) or isinstance(value, bool):
                    raise ManifestError(
                        f"segment entry {at} field {key!r} must be "
                        f"{expected_type.__name__}, got {type(value).__name__}"
                    )
                kwargs[key] = value
            ref = SegmentRef(**kwargs)
            if ref.kind not in KINDS_BY_TIER[tier]:
                raise ManifestError(
                    f"segment {ref.name!r} has kind {ref.kind!r}, which is not "
                    f"valid for tier {tier!r}"
                )
            if not 0 <= ref.shard < num_shards:
                raise ManifestError(
                    f"segment {ref.name!r} names shard {ref.shard} of {num_shards}"
                )
            if "/" in ref.name or "\\" in ref.name or ref.name in (".", ".."):
                raise ManifestError(f"segment name {ref.name!r} is not a plain file name")
            if ref.name in names:
                raise ManifestError(f"duplicate segment name {ref.name!r}")
            names.add(ref.name)
            refs.append(ref)

        manifest = cls(
            tier=tier,
            num_shards=num_shards,
            generation=raw["generation"],
            segments=refs,
            meta=dict(raw["meta"]),
            version=version,
        )
        for shard in range(num_shards):
            manifest.chain_for_shard(shard)
        return manifest
