"""Persistent on-disk index segments with a versioned manifest.

``repro.store`` is the persistence layer under the retrieval tiers: it
serializes :class:`~repro.search.inverted_index.InvertedIndex` postings
and :class:`~repro.search.vector.VectorIndex` IVF cells into
checksummed, zlib-compressed binary segments with contiguous array
payloads, tracked by a versioned JSON manifest — so a cold process
restores full search state in seconds without touching the catalog.

Layering:

* :mod:`repro.store.blocks` — the struct-packed block container (magic,
  version, per-section CRC32 of the uncompressed payload).
* :mod:`repro.store.segments` — postings / IVF-cell codecs, full and
  delta forms.
* :mod:`repro.store.manifest` — :class:`Manifest` / :class:`SegmentRef`
  with format versioning, per-segment checksums, doc counts and id
  ranges, plus incremental :meth:`Manifest.diff`.
* :mod:`repro.store.store` — :class:`SegmentStore`: per-shard save
  (full or delta), fully-verified load, and segment-level compaction.

The search classes wire through this package via ``save``/``load``
methods (``InvertedIndex``, ``VectorIndex``, ``ShardedIndex``,
``ShardedVectorIndex``, ``ShardedSearchEngine``,
``HybridSearchEngine``), all documented in ``docs/PERSISTENCE.md``.
Every failure mode raises a typed :class:`StoreError` subclass — see
:mod:`repro.store.errors` and the corruption-fuzz suite in
``tests/test_store_corruption.py``.
"""

from repro.store.errors import (
    ManifestError,
    ManifestVersionError,
    SegmentCorruptError,
    SegmentVersionError,
    StoreError,
)
from repro.store.manifest import (
    FORMAT_NAME,
    FORMAT_VERSION,
    MANIFEST_NAME,
    Manifest,
    SegmentRef,
)
from repro.store.store import SegmentStore, read_segment_file

__all__ = [
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "MANIFEST_NAME",
    "Manifest",
    "ManifestError",
    "ManifestVersionError",
    "SegmentCorruptError",
    "SegmentStore",
    "SegmentRef",
    "SegmentVersionError",
    "StoreError",
    "read_segment_file",
]
