"""The segment store: a directory of immutable segments + one manifest.

:class:`SegmentStore` persists the per-shard state of one retrieval
tier — ``"lexical"`` (:class:`~repro.search.inverted_index.InvertedIndex`
shards) or ``"vector"`` (:class:`~repro.search.vector.VectorIndex`
shards) — under a root directory:

```
root/
  MANIFEST.json                      # versioned table of contents
  lexical-s000-g000001.postings.seg  # shard 0 base segment
  lexical-s000-g000003.postings_delta.seg
  ...
```

Write path (:meth:`save`): the first save writes one full segment per
shard; subsequent saves *diff* the live shards against the persisted
state and append one delta segment per changed shard (or rewrite the
shard's base when more than half its documents changed, or — vector
tier — when the centroids moved, since a delta replay could not
reproduce the new cell layout).  An unchanged store is a no-op that
returns the existing manifest.  Segment files are immutable; each save
bumps the manifest generation and atomically replaces ``MANIFEST.json``
via rename, so a crash mid-save leaves the previous manifest intact and
consistent.

Read path (:meth:`load`): manifest → per-shard chain (base + deltas in
generation order) → decode with every check on: block checksums, the
manifest's payload checksum, and the manifest's doc-count/id-range
records cross-checked against the decoded state.  Any mismatch raises
a typed :class:`~repro.store.errors.StoreError` subclass.

Compaction (:meth:`compact`): loads the current state, rewrites one
fresh full segment per shard at the next generation, and deletes every
segment file the new manifest no longer references (including orphans
left behind by base rewrites).
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.store import segments as codecs
from repro.store.blocks import payload_checksum, unpack_segment
from repro.store.errors import ManifestError, SegmentCorruptError
from repro.store.manifest import (
    KINDS_BY_TIER,
    MANIFEST_NAME,
    Manifest,
    SegmentRef,
)

#: rewrite a shard's base instead of appending a delta when the changed
#: document count exceeds this fraction of the live shard
FULL_REWRITE_FRACTION = 0.5


def read_segment_file(path) -> bytes:
    """Read one segment file, wrapping I/O failures as typed corruption."""
    try:
        return Path(path).read_bytes()
    except OSError as error:
        raise SegmentCorruptError(
            f"segment file {Path(path).name!r} is missing or unreadable: {error}"
        ) from None


def _id_range(doc_ids) -> tuple[int, int]:
    """(min, max) over ``doc_ids``; (-1, -1) when empty."""
    ids = list(doc_ids)
    if not ids:
        return -1, -1
    return int(min(ids)), int(max(ids))


class SegmentStore:
    """Save/load/compact one tier's sharded indexes under a directory."""

    def __init__(self, root, tier: str):
        """``tier`` is ``"lexical"`` or ``"vector"``; the directory is
        created lazily on the first :meth:`save`."""
        if tier not in KINDS_BY_TIER:
            raise ValueError(f"unknown tier {tier!r}; expected one of {sorted(KINDS_BY_TIER)}")
        self.root = Path(root)
        self.tier = tier

    # -- manifest ------------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        """Where this store's ``MANIFEST.json`` lives."""
        return self.root / MANIFEST_NAME

    def exists(self) -> bool:
        """True when a manifest is present (the store has been saved)."""
        return self.manifest_path.is_file()

    def manifest(self) -> Manifest:
        """Read and validate the manifest (typed errors on any defect)."""
        try:
            text = self.manifest_path.read_text(encoding="utf-8")
        except OSError as error:
            raise ManifestError(
                f"no readable manifest at {self.manifest_path}: {error}"
            ) from None
        except UnicodeDecodeError as error:
            raise ManifestError(f"manifest is not valid UTF-8: {error}") from None
        manifest = Manifest.from_json(text)
        if manifest.tier != self.tier:
            raise ManifestError(
                f"store at {self.root} holds tier {manifest.tier!r}, "
                f"not {self.tier!r}"
            )
        return manifest

    def _write_manifest(self, manifest: Manifest) -> None:
        tmp = self.manifest_path.with_suffix(".json.tmp")
        tmp.write_text(manifest.to_json(), encoding="utf-8")
        os.replace(tmp, self.manifest_path)

    def _segment_name(self, shard: int, generation: int, kind: str) -> str:
        return f"{self.tier}-s{shard:03d}-g{generation:06d}.{kind}.seg"

    # -- encode helpers ------------------------------------------------------
    def _encode_full(self, index) -> tuple[bytes, int, int, tuple[int, int]]:
        """(file bytes, checksum, payload bytes, id range) of a full segment."""
        if self.tier == "lexical":
            data = codecs.encode_postings_segment(index)
            ids = index._docs
        else:
            data = codecs.encode_vectors_segment(index)
            ids = index._vectors
        _, sections = unpack_segment(data)
        return data, payload_checksum(sections), sum(map(len, sections)), _id_range(ids)

    def _encode_delta(
        self, index, added: list[int], removed: list[int]
    ) -> tuple[bytes, int, int, tuple[int, int]]:
        """(file bytes, checksum, payload bytes, id range) of a delta."""
        if self.tier == "lexical":
            data = codecs.encode_postings_delta(index, added, removed)
        else:
            data = codecs.encode_vectors_delta(index, added, removed)
        _, sections = unpack_segment(data)
        return (
            data,
            payload_checksum(sections),
            sum(map(len, sections)),
            _id_range(list(added) + list(removed)),
        )

    def _full_kind(self) -> str:
        return "postings" if self.tier == "lexical" else "vectors"

    def _delta_kind(self) -> str:
        return f"{self._full_kind()}_delta"

    # -- diffing -------------------------------------------------------------
    def _diff_shard(self, persisted, live) -> tuple[list[int], list[int], bool]:
        """``(added, removed, must_rewrite)`` between two shard states.

        A document whose content changed (same id, different tokens or
        vector) appears in both lists — the delta removes the old row and
        re-adds the new one.  ``must_rewrite`` is True when a delta could
        not reproduce the live state (vector centroids changed, meaning
        every cell assignment may have moved).
        """
        if self.tier == "lexical":
            old, new = persisted._docs, live._docs
            changed = lambda doc_id: old[doc_id] != new[doc_id]  # noqa: E731
            rewrite = False
        else:
            old, new = persisted._vectors, live._vectors
            changed = lambda doc_id: not np.array_equal(old[doc_id], new[doc_id])  # noqa: E731
            a, b = persisted.centroids, live.centroids
            rewrite = (a is None) != (b is None) or (
                a is not None and not np.array_equal(a, b)
            )
        removed = sorted(
            doc_id for doc_id in old if doc_id not in new or changed(doc_id)
        )
        added = sorted(
            doc_id for doc_id in new if doc_id not in old or changed(doc_id)
        )
        return added, removed, rewrite

    # -- save ----------------------------------------------------------------
    def save(self, shards: list, *, meta: dict | None = None, force_full: bool = False) -> Manifest:
        """Persist ``shards`` (one index per shard, in shard order).

        First save (or ``force_full``): one full segment per shard.
        Later saves: per-shard deltas against the persisted state, with
        automatic base rewrite when a shard churned past
        :data:`FULL_REWRITE_FRACTION` of its live size or (vector tier)
        was re-fit.  A save with no changes returns the current manifest
        untouched.  Callers must quiesce writers for the duration (the
        sharded indexes' ``save`` methods hold every shard lock).
        """
        if not shards:
            raise ValueError("save needs at least one shard")
        self.root.mkdir(parents=True, exist_ok=True)

        previous: Manifest | None = None
        persisted: list | None = None
        if not force_full and self.exists():
            previous = self.manifest()
            if previous.num_shards == len(shards):
                persisted = self._load_indexes(previous)
            else:
                previous = None  # shard layout changed: full rewrite

        generation = 1 if previous is None else previous.generation + 1
        refs: list[SegmentRef] = []
        writes: list[tuple[str, bytes]] = []
        changed_any = previous is None

        for shard_id, live in enumerate(shards):
            if previous is None:
                refs.append(self._full_ref(shard_id, generation, live, writes))
                continue
            added, removed, must_rewrite = self._diff_shard(
                persisted[shard_id], live
            )
            if not added and not removed and not must_rewrite:
                refs.extend(previous.chain_for_shard(shard_id))
                continue
            changed_any = True
            live_size = max(1, len(live))
            if must_rewrite or (len(added) + len(removed)) / live_size > FULL_REWRITE_FRACTION:
                refs.append(self._full_ref(shard_id, generation, live, writes))
            else:
                name = self._segment_name(shard_id, generation, self._delta_kind())
                data, checksum, payload_bytes, (lo, hi) = self._encode_delta(
                    live, added, removed
                )
                writes.append((name, data))
                refs.extend(previous.chain_for_shard(shard_id))
                refs.append(
                    SegmentRef(
                        name=name,
                        kind=self._delta_kind(),
                        shard=shard_id,
                        generation=generation,
                        checksum=checksum,
                        payload_bytes=payload_bytes,
                        doc_count=len(added),
                        removed_count=len(removed),
                        min_doc_id=lo,
                        max_doc_id=hi,
                    )
                )

        if not changed_any:
            return previous

        manifest = Manifest(
            tier=self.tier,
            num_shards=len(shards),
            generation=generation,
            segments=refs,
            meta=dict(meta if meta is not None else (previous.meta if previous else {})),
        )
        for name, data in writes:
            (self.root / name).write_bytes(data)
        self._write_manifest(manifest)
        return manifest

    def _full_ref(self, shard_id: int, generation: int, live, writes) -> SegmentRef:
        name = self._segment_name(shard_id, generation, self._full_kind())
        data, checksum, payload_bytes, (lo, hi) = self._encode_full(live)
        writes.append((name, data))
        return SegmentRef(
            name=name,
            kind=self._full_kind(),
            shard=shard_id,
            generation=generation,
            checksum=checksum,
            payload_bytes=payload_bytes,
            doc_count=len(live),
            removed_count=0,
            min_doc_id=lo,
            max_doc_id=hi,
        )

    # -- load ----------------------------------------------------------------
    def load(self) -> list:
        """Reconstruct every shard's index, fully verified.

        Applies each shard's chain (base, then deltas in generation
        order) with block checksums, manifest payload checksums, and the
        manifest's doc-count / id-range records all enforced.  Returns
        the per-shard index list in shard order.
        """
        return self._load_indexes(self.manifest())

    def load_shard(self, shard_id: int):
        """Reconstruct ONE shard's index from its base+delta chain.

        The worker cold-start path: a shard worker process restores only
        its own partition — O(shard) decode instead of O(store) — with
        the same verification as :meth:`load` plus a routing check
        (``doc_id % num_shards == shard_id``), so a mislabeled or
        misrouted chain fails the boot instead of silently serving
        another shard's documents.
        """
        manifest = self.manifest()
        if not 0 <= shard_id < manifest.num_shards:
            raise ManifestError(
                f"shard {shard_id} out of range for a "
                f"{manifest.num_shards}-shard store"
            )
        index = self._load_shard(manifest, shard_id)
        live_ids = index._docs if self.tier == "lexical" else index._vectors
        ids = np.fromiter(live_ids, dtype=np.int64, count=len(live_ids))
        if ids.size and np.any(ids % manifest.num_shards != shard_id):
            raise SegmentCorruptError(
                f"shard {shard_id} holds documents routed to another shard"
            )
        return index

    def _load_indexes(self, manifest: Manifest) -> list:
        return [
            self._load_shard(manifest, shard_id)
            for shard_id in range(manifest.num_shards)
        ]

    def _load_shard(self, manifest: Manifest, shard_id: int):
        chain = manifest.chain_for_shard(shard_id)
        base, deltas = chain[0], chain[1:]
        data = read_segment_file(self.root / base.name)
        if self.tier == "lexical":
            index = codecs.decode_postings_segment(
                data, expected_crc=base.checksum
            )
            live_ids = index._docs
        else:
            index = codecs.decode_vectors_segment(
                data, expected_crc=base.checksum
            )
            live_ids = index._vectors
        self._check_ref(base, len(index), _id_range(live_ids))
        for ref in deltas:
            data = read_segment_file(self.root / ref.name)
            if self.tier == "lexical":
                docs, removed = codecs.decode_postings_delta(
                    data, expected_crc=ref.checksum
                )
                touched = list(docs) + removed
                self._check_ref(ref, len(docs), _id_range(touched), removed=len(removed))
                codecs.apply_postings_delta(index, data, expected_crc=ref.checksum)
            else:
                added, vectors, removed = codecs.decode_vectors_delta(
                    data, expected_crc=ref.checksum
                )
                touched = added + removed
                self._check_ref(ref, len(added), _id_range(touched), removed=len(removed))
                codecs.apply_vectors_delta(index, data, expected_crc=ref.checksum)
        return index

    @staticmethod
    def _check_ref(ref: SegmentRef, doc_count: int, id_range, *, removed: int = 0) -> None:
        if doc_count != ref.doc_count or removed != ref.removed_count:
            raise SegmentCorruptError(
                f"segment {ref.name!r} decoded {doc_count} docs / {removed} "
                f"removes, manifest records {ref.doc_count} / {ref.removed_count}"
            )
        if id_range != (ref.min_doc_id, ref.max_doc_id):
            raise SegmentCorruptError(
                f"segment {ref.name!r} doc-id range {id_range} does not match "
                f"the manifest record ({ref.min_doc_id}, {ref.max_doc_id})"
            )

    # -- compaction ----------------------------------------------------------
    def compact(self) -> Manifest:
        """Collapse every shard's chain into a fresh base segment.

        Loads the current state, writes one full segment per shard at
        the next generation, swaps the manifest, and deletes every
        ``.seg`` file the new manifest does not reference — both the
        superseded chain and any orphans from earlier base rewrites.
        Returns the new manifest.
        """
        previous = self.manifest()
        indexes = self._load_indexes(previous)
        generation = previous.generation + 1
        writes: list[tuple[str, bytes]] = []
        refs = [
            self._full_ref(shard_id, generation, index, writes)
            for shard_id, index in enumerate(indexes)
        ]
        manifest = Manifest(
            tier=self.tier,
            num_shards=previous.num_shards,
            generation=generation,
            segments=refs,
            meta=dict(previous.meta),
        )
        for name, data in writes:
            (self.root / name).write_bytes(data)
        self._write_manifest(manifest)
        keep = {ref.name for ref in manifest.segments}
        for path in self.root.glob("*.seg"):
            if path.name not in keep:
                path.unlink()
        return manifest

    # -- snapshot shipping ---------------------------------------------------
    def ship_snapshot(self, dest) -> Manifest:
        """Copy the current manifest + referenced segments to ``dest``.

        The replica hand-off path: the router ships a self-contained
        store directory to a respawning worker, which then cold-starts
        via :meth:`load_shard` at the *same generation* the survivors
        serve — that generation equality is what makes post-failover
        results identical.  Every segment's payload checksum is
        re-verified as it is copied (a snapshot taken from a corrupt
        store must fail loudly here, not at the respawned worker), and
        the manifest is written last so a torn ship never looks
        complete.  ``dest`` must not already contain a store.
        """
        manifest = self.manifest()
        dest = Path(dest)
        if (dest / MANIFEST_NAME).exists():
            raise ManifestError(
                f"refusing to ship a snapshot into an existing store at {dest}"
            )
        dest.mkdir(parents=True, exist_ok=True)
        for ref in manifest.segments:
            data = read_segment_file(self.root / ref.name)
            _, sections = unpack_segment(data)
            if payload_checksum(sections) != ref.checksum:
                raise SegmentCorruptError(
                    f"segment {ref.name!r} fails its manifest checksum; "
                    "refusing to ship a corrupt snapshot"
                )
            (dest / ref.name).write_bytes(data)
        tmp = dest / (MANIFEST_NAME + ".tmp")
        tmp.write_text(manifest.to_json(), encoding="utf-8")
        os.replace(tmp, dest / MANIFEST_NAME)
        return manifest

    # -- reporting -----------------------------------------------------------
    def stats(self) -> dict:
        """Size and shape of the store on disk (for benchmarks and docs).

        Returns segment/delta counts, the manifest generation, total
        file bytes (compressed, as stored) and total payload bytes
        (uncompressed, as recorded in the manifest).
        """
        manifest = self.manifest()
        file_bytes = sum(
            (self.root / ref.name).stat().st_size
            for ref in manifest.segments
            if (self.root / ref.name).is_file()
        )
        deltas = sum(1 for ref in manifest.segments if not ref.is_full)
        return {
            "tier": manifest.tier,
            "num_shards": manifest.num_shards,
            "generation": manifest.generation,
            "segments": len(manifest.segments),
            "delta_segments": deltas,
            "file_bytes": int(file_bytes),
            "payload_bytes": sum(ref.payload_bytes for ref in manifest.segments),
            "doc_count": sum(
                ref.doc_count - ref.removed_count for ref in manifest.segments
            ),
        }
