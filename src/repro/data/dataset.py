"""Parallel corpus containers and batching for seq2seq training."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.text import Vocabulary


@dataclass
class ParallelCorpus:
    """Token-id parallel data for one translation direction.

    ``sources`` are encoded WITHOUT SOS (encoder input, EOS-terminated);
    ``targets`` WITH both SOS and EOS (decoder teacher forcing).
    """

    sources: list[list[int]]
    targets: list[list[int]]
    vocab: Vocabulary
    weights: list[int] | None = None  # e.g. click counts

    def __post_init__(self):
        if len(self.sources) != len(self.targets):
            raise ValueError(
                f"source/target length mismatch: {len(self.sources)} vs {len(self.targets)}"
            )

    def __len__(self) -> int:
        return len(self.sources)

    @classmethod
    def from_pairs(
        cls,
        pairs: list[tuple[tuple[str, ...], tuple[str, ...], int]],
        vocab: Vocabulary,
        swap: bool = False,
    ) -> "ParallelCorpus":
        """Build from (src_tokens, tgt_tokens, weight) triples.

        ``swap=True`` flips direction — used to derive the title-to-query
        corpus from the same click pairs.
        """
        sources, targets, weights = [], [], []
        for src, tgt, weight in pairs:
            if swap:
                src, tgt = tgt, src
            sources.append(vocab.encode(list(src), add_sos=False, add_eos=True))
            targets.append(vocab.encode(list(tgt), add_sos=True, add_eos=True))
            weights.append(weight)
        return cls(sources=sources, targets=targets, vocab=vocab, weights=weights)


def pad_batch(sequences: list[list[int]], pad_id: int, max_len: int | None = None) -> np.ndarray:
    """Right-pad variable-length id lists into an int array."""
    if not sequences:
        raise ValueError("pad_batch received no sequences")
    width = max(len(s) for s in sequences)
    if max_len is not None:
        width = min(width, max_len)
    out = np.full((len(sequences), width), pad_id, dtype=np.int64)
    for i, seq in enumerate(sequences):
        trimmed = seq[:width]
        out[i, : len(trimmed)] = trimmed
    return out


@dataclass
class Batch:
    """One padded training batch."""

    source: np.ndarray  # (batch, src_len)
    target_in: np.ndarray  # (batch, tgt_len) — decoder input (SOS..)
    target_out: np.ndarray  # (batch, tgt_len) — shifted labels (..EOS)


class BatchIterator:
    """Shuffled mini-batch iterator over a :class:`ParallelCorpus`.

    Decoder targets are split into teacher-forcing inputs (dropping the
    final token) and labels (dropping SOS).
    """

    def __init__(
        self,
        corpus: ParallelCorpus,
        batch_size: int,
        rng: np.random.Generator | None = None,
        shuffle: bool = True,
    ):
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.corpus = corpus
        self.batch_size = batch_size
        self.rng = rng or np.random.default_rng()
        self.shuffle = shuffle

    def __len__(self) -> int:
        return (len(self.corpus) + self.batch_size - 1) // self.batch_size

    def __iter__(self):
        order = np.arange(len(self.corpus))
        if self.shuffle:
            self.rng.shuffle(order)
        pad = self.corpus.vocab.pad_id
        for start in range(0, len(order), self.batch_size):
            idx = order[start : start + self.batch_size]
            sources = [self.corpus.sources[i] for i in idx]
            targets = [self.corpus.targets[i] for i in idx]
            source = pad_batch(sources, pad)
            target_full = pad_batch(targets, pad)
            yield Batch(
                source=source,
                target_in=target_full[:, :-1],
                target_out=target_full[:, 1:],
            )

    def sample_batch(self) -> Batch:
        """One random batch (used by the cyclic trainer's Algorithm 1 loop)."""
        idx = self.rng.choice(len(self.corpus), size=min(self.batch_size, len(self.corpus)), replace=False)
        pad = self.corpus.vocab.pad_id
        source = pad_batch([self.corpus.sources[i] for i in idx], pad)
        target_full = pad_batch([self.corpus.targets[i] for i in idx], pad)
        return Batch(
            source=source,
            target_in=target_full[:, :-1],
            target_out=target_full[:, 1:],
        )


def train_eval_split(
    pairs: list,
    eval_fraction: float = 0.1,
    rng: np.random.Generator | None = None,
) -> tuple[list, list]:
    """Deterministic random split of pair lists."""
    if not 0.0 <= eval_fraction < 1.0:
        raise ValueError("eval_fraction must be in [0, 1)")
    rng = rng or np.random.default_rng(0)
    order = np.arange(len(pairs))
    rng.shuffle(order)
    n_eval = int(len(pairs) * eval_fraction)
    eval_idx = set(order[:n_eval].tolist())
    train = [p for i, p in enumerate(pairs) if i not in eval_idx]
    evaluation = [p for i, p in enumerate(pairs) if i in eval_idx]
    return train, evaluation
