"""Query generation: one intent, several surface forms.

Standard queries speak the catalog's canonical language and are easy for an
inverted index.  Colloquial / natural / polysemous queries are the hard
cases: they use audience aliases, brand shorthands, vague adjectives and
filler words that never occur in item titles, so term matching fails on
them — exactly the semantic-matching gap the paper's model closes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.catalog import (
    AUDIENCE_ALIASES,
    BRAND_ALIASES,
    CATEGORY_SPECS,
    FILLER_WORDS,
    POLYSEMOUS_TERMS,
    VAGUE_WORDS,
)
from repro.data.domain import Intent, QueryStyle


@dataclass(frozen=True)
class QueryRealization:
    """A concrete query surface form plus its ground truth."""

    tokens: tuple[str, ...]
    style: QueryStyle
    intent: Intent

    @property
    def text(self) -> str:
        return " ".join(self.tokens)


class QueryGenerator:
    """Turns intents into query strings of the four styles."""

    def __init__(self, style_weights: dict[QueryStyle, float] | None = None):
        self.style_weights = style_weights or {
            QueryStyle.STANDARD: 0.45,
            QueryStyle.COLLOQUIAL: 0.30,
            QueryStyle.NATURAL: 0.20,
            QueryStyle.POLYSEMOUS: 0.05,
        }

    # -- intent sampling --------------------------------------------------
    def sample_intent(self, rng: np.random.Generator) -> Intent:
        category = str(rng.choice(sorted(CATEGORY_SPECS)))
        spec = CATEGORY_SPECS[category]
        brand = str(rng.choice(spec.brands)) if rng.random() < 0.5 else None
        audience = (
            str(rng.choice(spec.audiences))
            if spec.audiences and rng.random() < 0.5
            else None
        )
        features: tuple[str, ...] = ()
        if spec.features and rng.random() < 0.4:
            features = (str(rng.choice(spec.features)),)
        return Intent(category=category, brand=brand, audience=audience, features=features)

    def sample_style(self, rng: np.random.Generator) -> QueryStyle:
        styles = list(self.style_weights)
        weights = np.array([self.style_weights[s] for s in styles], dtype=float)
        weights /= weights.sum()
        return styles[int(rng.choice(len(styles), p=weights))]

    # -- realization --------------------------------------------------------
    def realize(
        self, intent: Intent, style: QueryStyle, rng: np.random.Generator
    ) -> QueryRealization:
        """Render ``intent`` in the given surface style."""
        if style is QueryStyle.STANDARD:
            tokens = self._standard(intent, rng)
        elif style is QueryStyle.COLLOQUIAL:
            tokens = self._colloquial(intent, rng)
        elif style is QueryStyle.NATURAL:
            tokens = self._natural(intent, rng)
        elif style is QueryStyle.POLYSEMOUS:
            tokens = self._polysemous(intent, rng)
        else:  # pragma: no cover - exhaustive enum
            raise ValueError(f"unknown style {style}")
        return QueryRealization(tokens=tuple(tokens), style=style, intent=intent)

    def sample(self, rng: np.random.Generator) -> QueryRealization:
        """Sample an intent and render it in a sampled style."""
        intent = self.sample_intent(rng)
        style = self.sample_style(rng)
        if style is QueryStyle.POLYSEMOUS:
            intent = self._polysemous_intent(rng)
        return self.realize(intent, style, rng)

    # -- style renderers ---------------------------------------------------
    def _standard(self, intent: Intent, rng: np.random.Generator) -> list[str]:
        """Canonical phrasing: [brand] [audience] [feature] canonical-category."""
        spec = CATEGORY_SPECS[intent.category]
        tokens: list[str] = []
        if intent.brand is not None:
            tokens.append(intent.brand)
        if intent.audience is not None:
            tokens.append(intent.audience)
        tokens.extend(intent.features)
        tokens.extend(spec.canonical)
        return tokens

    def _colloquial(self, intent: Intent, rng: np.random.Generator) -> list[str]:
        """Alias-ridden phrasing: vague word + brand alias + colloquial category."""
        spec = CATEGORY_SPECS[intent.category]
        tokens: list[str] = []
        if rng.random() < 0.6:
            tokens.append(str(rng.choice(VAGUE_WORDS)))
        if intent.brand is not None:
            tokens.append(self._brand_surface(intent.brand, rng, alias_prob=0.6))
        tokens.extend(intent.features)
        tokens.extend(self._category_surface(spec, rng, colloquial_prob=0.8))
        if intent.audience is not None:
            tokens.extend(["for", self._audience_surface(intent.audience, rng, alias_prob=0.9)])
        return tokens

    def _natural(self, intent: Intent, rng: np.random.Generator) -> list[str]:
        """Natural-language phrasing: 'a cellphone for my grandpa with big-button'."""
        spec = CATEGORY_SPECS[intent.category]
        tokens: list[str] = [str(rng.choice(("a", "the", "want", "buy")))]
        if intent.brand is not None and rng.random() < 0.5:
            tokens.append(self._brand_surface(intent.brand, rng, alias_prob=0.5))
        tokens.extend(self._category_surface(spec, rng, colloquial_prob=0.7))
        if intent.audience is not None:
            tokens.extend(["for", "my", self._audience_surface(intent.audience, rng, alias_prob=0.9)])
        elif rng.random() < 0.3:
            tokens.extend(["gift", "for", str(rng.choice(("her", "him")))])
        for feature in intent.features:
            tokens.extend(["with", feature])
        return tokens

    def _polysemous_intent(self, rng: np.random.Generator) -> Intent:
        """An intent whose head term is ambiguous across categories."""
        term = str(rng.choice(sorted(POLYSEMOUS_TERMS)))
        category = str(rng.choice(POLYSEMOUS_TERMS[term]))
        return Intent(category=category, brand=term)

    def _polysemous(self, intent: Intent, rng: np.random.Generator) -> list[str]:
        """Short ambiguous query: the bare term, or term + weak context."""
        assert intent.brand is not None, "polysemous intents carry the term as brand"
        tokens = [intent.brand]
        spec = CATEGORY_SPECS[intent.category]
        if rng.random() < 0.7:
            # Weak disambiguating context (category colloquialism).
            tokens.extend(self._category_surface(spec, rng, colloquial_prob=0.5))
        return tokens

    # -- surface-form helpers ------------------------------------------------
    def _brand_surface(self, brand: str, rng: np.random.Generator, alias_prob: float) -> str:
        aliases = BRAND_ALIASES.get(brand)
        if aliases and rng.random() < alias_prob:
            return str(rng.choice(aliases))
        return brand

    def _audience_surface(
        self, audience: str, rng: np.random.Generator, alias_prob: float
    ) -> str:
        aliases = AUDIENCE_ALIASES.get(audience)
        if aliases and rng.random() < alias_prob:
            return str(rng.choice(aliases))
        return audience

    def _category_surface(
        self, spec, rng: np.random.Generator, colloquial_prob: float
    ) -> list[str]:
        if spec.colloquial and rng.random() < colloquial_prob:
            return [str(rng.choice(spec.colloquial))]
        return list(spec.canonical)
