"""Synthetic product catalog.

The catalog is the ground truth of the marketplace: a set of category
specifications (brands, attributes, canonical vocabulary, colloquial
aliases, marketing filler) from which concrete products with verbose titles
are sampled.  The specs deliberately encode the three failure modes the
paper's introduction lists:

1. short/verbose title mismatch — titles are much longer than queries;
2. natural-language queries — audiences have colloquial aliases
   ("grandpa" for "senior") that never appear in titles;
3. polysemy — "apple" is a brand in electronics and a fruit in groceries,
   "cherry" a keyboard brand and a fruit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.domain import Product


@dataclass(frozen=True)
class CategorySpec:
    """Static description of one product category."""

    name: str
    canonical: tuple[str, ...]  # canonical query tokens, e.g. ("mobile", "phone")
    colloquial: tuple[str, ...]  # colloquial names used in queries only
    brands: tuple[str, ...]
    audiences: tuple[str, ...]  # canonical audience tokens appearing in titles
    features: tuple[str, ...]  # optional feature tokens appearing in titles
    marketing: tuple[str, ...]  # filler words appearing in titles only
    spec_tokens: tuple[str, ...]  # trailing spec tokens (sizes, packs, ...)
    price_range: tuple[float, float]


# ---------------------------------------------------------------------------
# Category specifications.  Tokens are chosen so that cross-category overlap
# happens only where intended (polysemes, shared audiences).
# ---------------------------------------------------------------------------
CATEGORY_SPECS: dict[str, CategorySpec] = {
    spec.name: spec
    for spec in [
        CategorySpec(
            name="phone",
            canonical=("mobile", "phone"),
            colloquial=("cellphone", "handset"),
            brands=("apple", "samsung", "huawei", "xiaomi", "nokia"),
            audiences=("senior", "student"),
            features=("big-button", "flip", "5g", "dual-sim", "unlocked"),
            marketing=("full-netcom", "standby", "official", "genuine"),
            spec_tokens=("64g", "128g", "256g", "black", "gold", "blue"),
            price_range=(40.0, 1200.0),
        ),
        CategorySpec(
            name="shoe",
            canonical=("shoe",),
            colloquial=("sneaker", "footwear", "kicks"),
            brands=("adidas", "nike", "lining", "puma", "anta"),
            audiences=("men", "women", "children"),
            features=("running", "casual", "breathable", "low-cut", "non-slip"),
            marketing=("spring", "new", "classic", "lightweight"),
            spec_tokens=("size-40", "size-42", "white", "black", "red"),
            price_range=(25.0, 220.0),
        ),
        CategorySpec(
            name="milk-powder",
            canonical=("milk", "powder"),
            colloquial=("formula", "milkpowder"),
            brands=("yili", "mengniu", "anchor", "wyeth", "friso"),
            audiences=("infant", "adult", "senior"),
            features=("stage-1", "stage-2", "stage-3", "skimmed", "whole", "high-calcium"),
            marketing=("imported", "golden", "crown", "fresh-sealed"),
            spec_tokens=("900g", "1kg", "cans", "bag"),
            price_range=(12.0, 90.0),
        ),
        CategorySpec(
            name="coin",
            canonical=("commemorative", "coin"),
            colloquial=("collector-coin", "souvenir-coin"),
            brands=("china-gold", "mint", "royal"),
            audiences=(),
            features=("year-rat", "year-ox", "year-pig", "year-tiger", "zodiac"),
            marketing=("circulation", "second-round", "face-value", "limited"),
            spec_tokens=("10-yuan", "silver", "gold-plated"),
            price_range=(8.0, 300.0),
        ),
        CategorySpec(
            name="perfume",
            canonical=("perfume",),
            colloquial=("scent", "fragrance", "cologne"),
            brands=("nivea", "chanel", "dior", "gucci"),
            audiences=("men", "women"),
            features=("eau-de-toilette", "long-lasting", "fresh", "floral"),
            marketing=("authentic", "gift-box", "classic"),
            spec_tokens=("50ml", "100ml"),
            price_range=(20.0, 350.0),
        ),
        CategorySpec(
            name="skincare",
            canonical=("skin", "care"),
            colloquial=("cream", "lotion", "cosmetics"),
            brands=("loreal", "nivea", "olay", "shiseido"),
            audiences=("men", "women"),
            features=("anti-wrinkle", "firming", "moisturizing", "whitening", "fine-lines"),
            marketing=("authentic", "five-piece", "set", "facial"),
            spec_tokens=("30ml", "set-of-5"),
            price_range=(15.0, 260.0),
        ),
        CategorySpec(
            name="laptop",
            canonical=("laptop",),
            colloquial=("computer", "notebook-pc"),
            brands=("lenovo", "dell", "apple", "asus"),
            audiences=("student", "men", "women"),
            features=("gaming", "office", "thin", "ssd", "15-inch"),
            marketing=("new", "flagship", "official"),
            spec_tokens=("8gb", "16gb", "512gb"),
            price_range=(300.0, 2500.0),
        ),
        CategorySpec(
            name="keyboard",
            canonical=("keyboard",),
            colloquial=("keypad",),
            brands=("cherry", "logitech", "razer", "keychron"),
            audiences=("student",),
            features=("mechanical", "wireless", "backlit", "87-key"),
            marketing=("gaming", "office", "genuine"),
            spec_tokens=("black", "white"),
            price_range=(15.0, 180.0),
        ),
        CategorySpec(
            name="fruit",
            canonical=("fresh", "fruit"),
            colloquial=("produce",),
            brands=("apple", "cherry", "banana", "orange", "grape"),
            audiences=(),
            features=("imported", "organic", "seasonal", "sweet"),
            marketing=("farm-direct", "juicy", "premium"),
            spec_tokens=("1kg", "2kg", "box"),
            price_range=(3.0, 45.0),
        ),
        CategorySpec(
            name="watch",
            canonical=("watch",),
            colloquial=("wristwatch", "timepiece"),
            brands=("casio", "apple", "seiko", "citizen"),
            audiences=("men", "women", "senior"),
            features=("smart", "waterproof", "quartz", "leather-strap"),
            marketing=("classic", "official", "luxury"),
            spec_tokens=("black", "silver", "gold"),
            price_range=(25.0, 900.0),
        ),
    ]
}

# In the "fruit" category the brand slot holds the fruit variety itself, so
# "apple" and "cherry" occur both as electronics brands and as fruits: the
# polysemes the paper's Section IV-C2 discusses.
POLYSEMOUS_TERMS: dict[str, tuple[str, ...]] = {
    "apple": ("phone", "laptop", "watch", "fruit"),
    "cherry": ("keyboard", "fruit"),
}

# Colloquial audience aliases — query-side only; titles always use the
# canonical audience token.  This is the "cellphone for grandpa" mismatch.
AUDIENCE_ALIASES: dict[str, tuple[str, ...]] = {
    "senior": ("grandpa", "grandma", "elderly", "old-people"),
    "men": ("dad", "husband", "boyfriend", "him"),
    "women": ("mom", "wife", "girlfriend", "her"),
    "children": ("kid", "son", "daughter", "baby"),
    "student": ("college", "school"),
    "infant": ("newborn", "baby"),
    "adult": ("grown-up",),
}

# Brand aliases (shorthands users type; titles use the real brand token).
BRAND_ALIASES: dict[str, tuple[str, ...]] = {
    "adidas": ("ah-di",),
    "nike": ("nai-ke",),
    "apple": ("iphone-brand",),
    "loreal": ("l-oreal",),
    "lenovo": ("thinkpad",),
}

# Vague descriptors appearing in colloquial queries but (almost) never in
# titles: the model must learn to drop them.
VAGUE_WORDS: tuple[str, ...] = (
    "comfortable",
    "cheap",
    "good",
    "nice",
    "best",
    "durable",
    "pretty",
    "quality",
)

# Natural-language filler used by NATURAL style queries.
FILLER_WORDS: tuple[str, ...] = ("for", "my", "a", "the", "with", "gift", "want", "buy")


@dataclass
class CatalogConfig:
    """Knobs controlling catalog generation."""

    products_per_category: int = 30
    title_marketing_words: tuple[int, int] = (1, 3)  # min/max filler tokens
    title_feature_words: tuple[int, int] = (1, 3)
    seed: int = 0
    #: first product id :meth:`CatalogGenerator.generate` assigns.  Multi-
    #: tenant scenarios give every tenant its own disjoint id space (e.g.
    #: ``tenant_index * 1_000_000``) so a document id names exactly one
    #: tenant's product and cross-tenant serves are detectable.
    product_id_base: int = 0


@dataclass
class Catalog:
    """The generated product set plus lookup indices.

    No longer build-once: :meth:`add_product` / :meth:`remove_product`
    keep every lookup structure in sync, so a live index layered on top
    (``repro.search.ShardedIndex``) can follow catalog churn instead of
    being rebuilt.
    """

    products: list[Product]
    by_category: dict[str, list[Product]] = field(default_factory=dict)

    def __post_init__(self):
        if not self.by_category:
            for product in self.products:
                self.by_category.setdefault(product.category, []).append(product)
        self._by_id: dict[int, Product] = {p.product_id: p for p in self.products}

    def __len__(self) -> int:
        return len(self.products)

    def __contains__(self, product_id: int) -> bool:
        return product_id in self._by_id

    def get(self, product_id: int) -> Product:
        return self._by_id[product_id]

    def categories(self) -> list[str]:
        return sorted(self.by_category)

    # -- incremental maintenance ----------------------------------------------
    def add_product(self, product: Product) -> None:
        if product.product_id in self._by_id:
            raise ValueError(f"product {product.product_id} already in catalog")
        self.products.append(product)
        self.by_category.setdefault(product.category, []).append(product)
        self._by_id[product.product_id] = product

    def remove_product(self, product_id: int) -> Product:
        product = self._by_id.pop(product_id, None)
        if product is None:
            raise KeyError(f"product {product_id} not in catalog")
        # Scan by id (cheap int compare) rather than list.remove's
        # field-by-field dataclass equality; order is preserved.
        _delete_by_id(self.products, product_id)
        siblings = self.by_category[product.category]
        _delete_by_id(siblings, product_id)
        if not siblings:
            del self.by_category[product.category]
        return product

    def next_product_id(self) -> int:
        return max(self._by_id, default=-1) + 1


def _delete_by_id(products: list[Product], product_id: int) -> None:
    for at, candidate in enumerate(products):
        if candidate.product_id == product_id:
            del products[at]
            return


class CatalogGenerator:
    """Samples concrete products (with verbose titles) from the specs."""

    def __init__(self, config: CatalogConfig | None = None):
        self.config = config or CatalogConfig()

    def generate(self, rng: np.random.Generator | None = None) -> Catalog:
        rng = rng or np.random.default_rng(self.config.seed)
        base = self.config.product_id_base
        products: list[Product] = []
        for name in sorted(CATEGORY_SPECS):
            spec = CATEGORY_SPECS[name]
            for _ in range(self.config.products_per_category):
                products.append(self._sample_product(spec, base + len(products), rng))
        return Catalog(products=products)

    def sample_products(
        self,
        count: int,
        rng: np.random.Generator | None = None,
        start_id: int | None = None,
    ) -> list[Product]:
        """Sample ``count`` products round-robin over the categories.

        Unlike :meth:`generate` this is not tied to a per-category quota,
        so callers can stream arbitrarily many products — growing a
        catalog incrementally, or building the ≥50k-document corpora the
        retrieval-scale benchmark needs.  ``start_id`` defaults to the
        config's ``product_id_base`` so tenant-scoped generators stay
        inside their own id space.
        """
        rng = rng or np.random.default_rng(self.config.seed)
        if start_id is None:
            start_id = self.config.product_id_base
        names = sorted(CATEGORY_SPECS)
        return [
            self._sample_product(
                CATEGORY_SPECS[names[i % len(names)]], start_id + i, rng
            )
            for i in range(count)
        ]

    def sample_product(
        self, category: str, product_id: int, rng: np.random.Generator
    ) -> Product:
        """Sample one product of a *chosen* category.

        :meth:`sample_products` round-robins categories from a fixed
        starting point, which always churns the alphabetically-first
        categories; callers that model catalog churn (``repro.online``)
        pick the category themselves so churn spreads wherever their rng
        sends it.
        """
        if category not in CATEGORY_SPECS:
            raise KeyError(f"unknown category {category!r}")
        return self._sample_product(CATEGORY_SPECS[category], product_id, rng)

    def _sample_product(
        self, spec: CategorySpec, product_id: int, rng: np.random.Generator
    ) -> Product:
        brand = str(rng.choice(spec.brands))
        audience = str(rng.choice(spec.audiences)) if spec.audiences and rng.random() < 0.75 else None
        n_features = int(rng.integers(self.config.title_feature_words[0],
                                      self.config.title_feature_words[1] + 1))
        n_features = min(n_features, len(spec.features))
        features = tuple(
            sorted(rng.choice(spec.features, size=n_features, replace=False).tolist())
        )
        title = self._build_title(spec, brand, audience, features, rng)
        low, high = spec.price_range
        price = float(np.round(rng.uniform(low, high), 2))
        return Product(
            product_id=product_id,
            category=spec.name,
            brand=brand,
            audience=audience,
            features=features,
            title_tokens=tuple(title),
            price=price,
        )

    def _build_title(
        self,
        spec: CategorySpec,
        brand: str,
        audience: str | None,
        features: tuple[str, ...],
        rng: np.random.Generator,
    ) -> list[str]:
        """Verbose title: brand + marketing + features + canonical + audience + specs.

        Mirrors real e-commerce titles, which front-load the brand, stuff
        marketing words, and repeat key attributes.
        """
        lo, hi = self.config.title_marketing_words
        n_marketing = int(rng.integers(lo, hi + 1))
        n_marketing = min(n_marketing, len(spec.marketing))
        marketing = rng.choice(spec.marketing, size=n_marketing, replace=False).tolist()
        n_specs = int(rng.integers(1, min(3, len(spec.spec_tokens)) + 1))
        spec_words = rng.choice(spec.spec_tokens, size=n_specs, replace=False).tolist()

        title = [brand]
        title.extend(marketing)
        title.extend(features)
        title.extend(spec.canonical)
        if audience is not None:
            title.append(audience)
            # Real titles often repeat the audience+category pair.
            if rng.random() < 0.4:
                title.extend(spec.canonical)
        title.extend(spec_words)
        return title


def alias_to_canonical() -> dict[str, str]:
    """Flatten alias tables into one alias -> canonical-token map."""
    mapping: dict[str, str] = {}
    for canonical, aliases in AUDIENCE_ALIASES.items():
        for alias in aliases:
            mapping[alias] = canonical
    for brand, aliases in BRAND_ALIASES.items():
        for alias in aliases:
            mapping[alias] = brand
    for name, spec in CATEGORY_SPECS.items():
        canonical_phrase = " ".join(spec.canonical)
        for alias in spec.colloquial:
            mapping[alias] = canonical_phrase
    return mapping
