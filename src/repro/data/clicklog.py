"""Click-log simulation.

Plays the role of the paper's 60-day JD click log: shopping sessions sample
an intent, render it as a query, examine relevant products and click some of
them.  Aggregating events yields the (query, clicked-title, #clicks)
triples used to train the forward/backward translation models, after the
paper's ">1 click" quality filter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.catalog import Catalog
from repro.data.domain import ClickEvent, QueryRecord, QueryStyle
from repro.data.queries import QueryGenerator


@dataclass
class ClickLogConfig:
    """Knobs of the session simulator."""

    num_sessions: int = 4000
    max_clicks_per_session: int = 3
    #: relevance below this is never clicked (hard irrelevance floor)
    relevance_floor: float = 0.05
    #: chance of an accidental click on a weakly relevant item; such noise is
    #: what the paper's ">1 click" filter removes
    noise_click_prob: float = 0.02
    #: minimum aggregated clicks for a (query, title) pair to survive
    min_pair_clicks: int = 2
    #: size of the zipf-weighted query universe.  Real query traffic is
    #: heavily head-skewed; sampling intents i.i.d. would spread clicks so
    #: thin that almost no pair survives the min-click filter.
    intent_pool_size: int = 250
    #: realizations rendered per pooled intent (distinct surface forms)
    realizations_per_intent: int = 3
    #: zipf exponent of the traffic distribution over the query universe
    zipf_exponent: float = 1.05
    seed: int = 0


@dataclass
class ClickLog:
    """Aggregated result of the simulation."""

    events: list[ClickEvent]
    #: distinct query records keyed by the query text
    queries: dict[str, QueryRecord]
    #: filtered training triples: (query_tokens, title_tokens, clicks)
    pairs: list[tuple[tuple[str, ...], tuple[str, ...], int]]
    num_sessions: int
    catalog: Catalog

    # -- derived views -----------------------------------------------------
    def traffic(self) -> list[tuple[str, str, int]]:
        """Click-ranked ``(query text, intent category, clicks)`` triples.

        The live-traffic view of the log: queries ordered head-first by
        click volume (ties broken by text for determinism), each tagged
        with its ground-truth category so churn in that category can be
        attributed to the queries it staleness-affects.  Zero-click
        queries are kept — they are the long tail a replay must also
        exercise — with their true count.
        """
        records = sorted(
            self.queries.values(), key=lambda r: (-r.total_clicks, r.text)
        )
        return [(r.text, r.intent.category, r.total_clicks) for r in records]

    def query_product_clicks(self) -> dict[tuple[str, int], int]:
        """(query text, product id) -> click count, for click-graph methods."""
        counts: dict[tuple[str, int], int] = {}
        for record in self.queries.values():
            for product_id, clicks in record.clicked_products.items():
                counts[(record.text, product_id)] = clicks
        return counts

    def statistics(self) -> dict[str, float]:
        """Dataset statistics in the shape of the paper's Table I."""
        query_lengths = [len(q) for q, _, _ in self.pairs]
        title_lengths = [len(t) for _, t, _ in self.pairs]
        vocab: set[str] = set()
        for q, t, _ in self.pairs:
            vocab.update(q)
            vocab.update(t)
        return {
            "num_query_item_pairs": len(self.pairs),
            "num_search_sessions": self.num_sessions,
            "vocab_size": len(vocab),
            "avg_query_words": float(np.mean(query_lengths)) if query_lengths else 0.0,
            "avg_title_words": float(np.mean(title_lengths)) if title_lengths else 0.0,
        }


class ClickLogSimulator:
    """Simulates sessions over a catalog and aggregates click pairs."""

    def __init__(
        self,
        catalog: Catalog,
        query_generator: QueryGenerator | None = None,
        config: ClickLogConfig | None = None,
    ):
        self.catalog = catalog
        self.query_generator = query_generator or QueryGenerator()
        self.config = config or ClickLogConfig()

    def _build_query_universe(self, rng: np.random.Generator):
        """Finite zipf-weighted universe of query realizations.

        Each pooled intent is rendered into a few distinct surface forms;
        traffic then samples realizations zipf-style, so head queries
        accumulate clicks (surviving the min-click filter) while a long
        tail stays rare — the head/tail structure Section III-G exploits.
        """
        cfg = self.config
        universe: list = []
        seen: set[tuple[str, ...]] = set()
        for _ in range(cfg.intent_pool_size):
            intent = self.query_generator.sample_intent(rng)
            for _ in range(cfg.realizations_per_intent):
                style = self.query_generator.sample_style(rng)
                if style.value == "polysemous":
                    intent_used = self.query_generator._polysemous_intent(rng)
                else:
                    intent_used = intent
                realization = self.query_generator.realize(intent_used, style, rng)
                if realization.tokens in seen:
                    continue
                seen.add(realization.tokens)
                universe.append(realization)
        ranks = np.arange(1, len(universe) + 1, dtype=float)
        weights = ranks**-cfg.zipf_exponent
        weights /= weights.sum()
        order = rng.permutation(len(universe))
        universe = [universe[i] for i in order]
        return universe, weights

    def simulate(self, rng: np.random.Generator | None = None) -> ClickLog:
        cfg = self.config
        rng = rng or np.random.default_rng(cfg.seed)
        events: list[ClickEvent] = []
        queries: dict[str, QueryRecord] = {}
        universe, weights = self._build_query_universe(rng)

        for session_id in range(cfg.num_sessions):
            realization = universe[int(rng.choice(len(universe), p=weights))]
            record = queries.get(realization.text)
            if record is None:
                record = QueryRecord(
                    tokens=realization.tokens,
                    style=realization.style,
                    intent=realization.intent,
                )
                queries[realization.text] = record

            clicked = self._session_clicks(realization.intent, rng)
            for product_id in clicked:
                events.append(
                    ClickEvent(
                        session_id=session_id,
                        query_tokens=realization.tokens,
                        style=realization.style,
                        intent=realization.intent,
                        product_id=product_id,
                    )
                )
                record.total_clicks += 1
                record.clicked_products[product_id] = (
                    record.clicked_products.get(product_id, 0) + 1
                )

        pairs = self._aggregate_pairs(queries)
        return ClickLog(
            events=events,
            queries=queries,
            pairs=pairs,
            num_sessions=cfg.num_sessions,
            catalog=self.catalog,
        )

    # -- internals -----------------------------------------------------------
    def _session_clicks(self, intent, rng: np.random.Generator) -> list[int]:
        """Products clicked in one session: relevance-proportional sampling."""
        cfg = self.config
        candidates = self.catalog.by_category.get(intent.category, [])
        scored = [(p.product_id, intent.matches(p)) for p in candidates]
        relevant = [(pid, s) for pid, s in scored if s >= cfg.relevance_floor]
        clicked: list[int] = []
        if relevant:
            ids = np.array([pid for pid, _ in relevant])
            weights = np.array([s for _, s in relevant], dtype=float)
            weights /= weights.sum()
            n_clicks = int(rng.integers(1, cfg.max_clicks_per_session + 1))
            n_clicks = min(n_clicks, len(ids))
            chosen = rng.choice(ids, size=n_clicks, replace=False, p=weights)
            clicked.extend(int(c) for c in chosen)
        # Accidental noise click anywhere in the catalog.
        if rng.random() < cfg.noise_click_prob and len(self.catalog):
            clicked.append(int(rng.integers(0, len(self.catalog))))
        return clicked

    def _aggregate_pairs(
        self, queries: dict[str, QueryRecord]
    ) -> list[tuple[tuple[str, ...], tuple[str, ...], int]]:
        """(query, title) pairs with at least ``min_pair_clicks`` clicks."""
        pairs: list[tuple[tuple[str, ...], tuple[str, ...], int]] = []
        for text in sorted(queries):
            record = queries[text]
            for product_id in sorted(record.clicked_products):
                clicks = record.clicked_products[product_id]
                if clicks >= self.config.min_pair_clicks:
                    product = self.catalog.get(product_id)
                    pairs.append((record.tokens, product.title_tokens, clicks))
        return pairs
