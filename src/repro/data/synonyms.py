"""Synonym-pair extraction and the rule dictionary.

Two artifacts come from here:

* **Synonymous query pairs** — queries sharing more than a threshold of
  clicks on the same items (paper Section III-G).  These train the direct
  query-to-query model used for low-latency online serving.
* **The rule dictionary** — the human-curated synonym table behind the
  paper's rule-based baseline.  We derive it from the catalog's alias
  tables, including the deliberately *context-blind* polyseme entries
  ("cherry" -> keyboard brand synonym) that the paper's Section IV-C2 calls
  out as the failure mode of rule-based rewriting.
"""

from __future__ import annotations

import numpy as np

from repro.data.catalog import BRAND_ALIASES, CATEGORY_SPECS, AUDIENCE_ALIASES
from repro.data.clicklog import ClickLog


def extract_synonym_pairs(
    click_log: ClickLog,
    min_shared_clicks: int = 2,
    max_pairs: int | None = None,
) -> list[tuple[tuple[str, ...], tuple[str, ...], int]]:
    """Query pairs that share at least ``min_shared_clicks`` clicked items.

    Returns (query_a_tokens, query_b_tokens, shared_clicks) triples in both
    directions (a->b and b->a), since the q2q model is direction-agnostic.
    """
    # Invert: product -> {query text: clicks}
    product_queries: dict[int, dict[str, int]] = {}
    for record in click_log.queries.values():
        for product_id, clicks in record.clicked_products.items():
            product_queries.setdefault(product_id, {})[record.text] = clicks

    shared: dict[tuple[str, str], int] = {}
    for clicks_by_query in product_queries.values():
        texts = sorted(clicks_by_query)
        for i, a in enumerate(texts):
            for b in texts[i + 1 :]:
                key = (a, b)
                shared[key] = shared.get(key, 0) + min(clicks_by_query[a], clicks_by_query[b])

    pairs: list[tuple[tuple[str, ...], tuple[str, ...], int]] = []
    for (a, b), count in sorted(shared.items(), key=lambda kv: (-kv[1], kv[0])):
        if count < min_shared_clicks:
            continue
        if a == b:
            continue
        tokens_a = click_log.queries[a].tokens
        tokens_b = click_log.queries[b].tokens
        pairs.append((tokens_a, tokens_b, count))
        pairs.append((tokens_b, tokens_a, count))
        if max_pairs is not None and len(pairs) >= max_pairs:
            break
    return pairs


def build_rule_dictionary(include_polyseme_trap: bool = True) -> dict[str, str]:
    """The human-curated phrase-synonym dictionary of the rule baseline.

    Maps a query phrase to its replacement.  Entries mirror what a
    lexicographer would compile from the alias tables: audience aliases to
    canonical audiences, brand shorthands to brand names, category
    colloquialisms to canonical category phrases.

    ``include_polyseme_trap`` keeps the context-blind entries (e.g. mapping
    the bare term "cherry" to the keyboard-brand reading) that make the
    baseline fail on polysemous queries — the exact weakness Table VI's
    human evaluation surfaces.
    """
    rules: dict[str, str] = {}
    for canonical, aliases in AUDIENCE_ALIASES.items():
        for alias in aliases:
            rules[alias] = canonical
    for brand, aliases in BRAND_ALIASES.items():
        for alias in aliases:
            rules[alias] = brand
    for spec in CATEGORY_SPECS.values():
        canonical_phrase = " ".join(spec.canonical)
        for alias in spec.colloquial:
            rules[alias] = canonical_phrase
    if include_polyseme_trap:
        # A lexicographer saw "cherry" mostly in keyboard listings and
        # "apple" mostly in electronics, so the dictionary rewrites the bare
        # terms toward those readings regardless of context.
        rules["cherry"] = "cherry mechanical keyboard"
        rules["apple"] = "apple official"
    return rules


def sample_queries_with_rules(
    click_log: ClickLog,
    rules: dict[str, str],
    n: int,
    rng: np.random.Generator,
) -> list[str]:
    """Evaluation queries that have at least one rule-based synonym.

    Mirrors the paper's human-eval setup: "randomly select 1,000 queries
    ... which also have rule-based synonyms."
    """
    eligible = sorted(
        text
        for text, record in click_log.queries.items()
        if any(token in rules for token in record.tokens)
    )
    if not eligible:
        return []
    if len(eligible) <= n:
        return eligible
    picked = rng.choice(len(eligible), size=n, replace=False)
    return [eligible[i] for i in sorted(picked)]
