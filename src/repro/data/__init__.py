"""Synthetic e-commerce marketplace — the public substitute for JD's logs.

The paper trains on 60 days of proprietary click logs (300M query-title
pairs).  This package builds the closest public-data equivalent: a
generative product catalog, a query-intent model that emits both *standard*
and *colloquial/long-tail* query surface forms, and a click-log simulator
whose (query, clicked-title) pairs exhibit exactly the vocabulary mismatch
the paper's cyclic translation exploits.

Typical use::

    from repro.data import MarketplaceConfig, generate_marketplace

    market = generate_marketplace(MarketplaceConfig(seed=0))
    market.click_log.pairs          # (query, title, clicks) training triples
    market.corpus                   # tokenized/encoded parallel corpus
"""

from repro.data.domain import Intent, Product, ClickEvent, QueryStyle
from repro.data.catalog import CatalogConfig, CatalogGenerator, CATEGORY_SPECS
from repro.data.queries import QueryGenerator, QueryRealization
from repro.data.clicklog import ClickLogConfig, ClickLogSimulator, ClickLog
from repro.data.dataset import (
    ParallelCorpus,
    BatchIterator,
    pad_batch,
    train_eval_split,
)
from repro.data.marketplace import Marketplace, MarketplaceConfig, generate_marketplace
from repro.data.synonyms import extract_synonym_pairs, build_rule_dictionary

__all__ = [
    "Intent",
    "Product",
    "ClickEvent",
    "QueryStyle",
    "CatalogConfig",
    "CatalogGenerator",
    "CATEGORY_SPECS",
    "QueryGenerator",
    "QueryRealization",
    "ClickLogConfig",
    "ClickLogSimulator",
    "ClickLog",
    "ParallelCorpus",
    "BatchIterator",
    "pad_batch",
    "train_eval_split",
    "Marketplace",
    "MarketplaceConfig",
    "generate_marketplace",
    "extract_synonym_pairs",
    "build_rule_dictionary",
]
