"""Core domain objects of the synthetic marketplace."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class QueryStyle(enum.Enum):
    """Surface style of a generated query.

    STANDARD queries use the catalog's canonical vocabulary ("senior
    phone"); COLLOQUIAL queries use aliases and vague words ("cellphone for
    grandpa"); NATURAL queries add natural-language filler; POLYSEMOUS
    queries contain an ambiguous term whose meaning depends on context
    ("apple" the brand vs. the fruit).  The last three are the hard cases
    the paper's introduction motivates.
    """

    STANDARD = "standard"
    COLLOQUIAL = "colloquial"
    NATURAL = "natural"
    POLYSEMOUS = "polysemous"


@dataclass(frozen=True)
class Intent:
    """Ground-truth shopping intent behind a query.

    The simulated human labeler (Table VI) and the A/B user model
    (Table VIII) judge relevance against this, never against surface text.
    """

    category: str
    brand: str | None = None
    audience: str | None = None
    features: tuple[str, ...] = ()

    def matches(self, product: "Product") -> float:
        """Graded relevance of ``product`` to this intent in [0, 1].

        Category mismatch is fatal; brand/audience/feature mismatches each
        scale relevance down, mirroring how a shopper discounts items.
        """
        if product.category != self.category:
            return 0.0
        score = 1.0
        if self.brand is not None:
            score *= 1.0 if product.brand == self.brand else 0.15
        if self.audience is not None:
            score *= 1.0 if product.audience == self.audience else 0.25
        for feature in self.features:
            score *= 1.0 if feature in product.features else 0.4
        return score


@dataclass(frozen=True)
class Product:
    """A catalog item."""

    product_id: int
    category: str
    brand: str
    audience: str | None
    features: tuple[str, ...]
    title_tokens: tuple[str, ...]
    price: float

    @property
    def title(self) -> str:
        return " ".join(self.title_tokens)


@dataclass(frozen=True)
class ClickEvent:
    """One (query, clicked product) interaction within a session."""

    session_id: int
    query_tokens: tuple[str, ...]
    style: QueryStyle
    intent: Intent
    product_id: int


@dataclass
class QueryRecord:
    """Aggregated view of one distinct query string across the log."""

    tokens: tuple[str, ...]
    style: QueryStyle
    intent: Intent
    total_clicks: int = 0
    clicked_products: dict[int, int] = field(default_factory=dict)

    @property
    def text(self) -> str:
        return " ".join(self.tokens)
