"""One-call construction of the full synthetic marketplace.

Bundles catalog generation, click-log simulation, vocabulary building and
corpus encoding, so experiments and examples share one entry point::

    market = generate_marketplace(MarketplaceConfig(seed=0))
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.catalog import (
    AUDIENCE_ALIASES,
    BRAND_ALIASES,
    CATEGORY_SPECS,
    Catalog,
    CatalogConfig,
    CatalogGenerator,
    FILLER_WORDS,
    VAGUE_WORDS,
)
from repro.data.clicklog import ClickLog, ClickLogConfig, ClickLogSimulator
from repro.data.dataset import ParallelCorpus, train_eval_split
from repro.data.queries import QueryGenerator
from repro.data.synonyms import extract_synonym_pairs
from repro.text import Vocabulary


@dataclass
class MarketplaceConfig:
    """Aggregate configuration for the synthetic marketplace."""

    catalog: CatalogConfig = field(default_factory=CatalogConfig)
    clicks: ClickLogConfig = field(default_factory=ClickLogConfig)
    eval_fraction: float = 0.1
    vocab_min_freq: int = 1
    seed: int = 0

    def __post_init__(self):
        # Non-positive sizes used to produce silently-empty catalogs and
        # click logs that only failed much later (an unreplayable traffic
        # stream, a vocabulary of specials only); fail at construction.
        if self.catalog.products_per_category < 1:
            raise ValueError(
                "catalog.products_per_category must be >= 1, got "
                f"{self.catalog.products_per_category}"
            )
        if self.clicks.num_sessions < 1:
            raise ValueError(
                f"clicks.num_sessions must be >= 1, got {self.clicks.num_sessions}"
            )
        if self.clicks.intent_pool_size < 1:
            raise ValueError(
                "clicks.intent_pool_size must be >= 1, got "
                f"{self.clicks.intent_pool_size}"
            )
        if not 0.0 <= self.eval_fraction < 1.0:
            raise ValueError(
                f"eval_fraction must be in [0, 1), got {self.eval_fraction}"
            )
        if self.vocab_min_freq < 1:
            raise ValueError(f"vocab_min_freq must be >= 1, got {self.vocab_min_freq}")
        # A single seed drives everything unless sub-configs override it.
        self.catalog.seed = self.seed
        self.clicks.seed = self.seed + 1


@dataclass
class Marketplace:
    """Everything downstream components need, generated deterministically."""

    config: MarketplaceConfig
    catalog: Catalog
    click_log: ClickLog
    vocab: Vocabulary
    #: query->title pairs (training split)
    train_pairs: list[tuple[tuple[str, ...], tuple[str, ...], int]]
    #: query->title pairs (held-out split)
    eval_pairs: list[tuple[tuple[str, ...], tuple[str, ...], int]]
    #: shared-click synonymous query pairs (for the q2q serving model)
    synonym_pairs: list[tuple[tuple[str, ...], tuple[str, ...], int]]

    @property
    def forward_corpus(self) -> ParallelCorpus:
        """Query -> title corpus (training split)."""
        return ParallelCorpus.from_pairs(self.train_pairs, self.vocab, swap=False)

    @property
    def backward_corpus(self) -> ParallelCorpus:
        """Title -> query corpus (training split)."""
        return ParallelCorpus.from_pairs(self.train_pairs, self.vocab, swap=True)

    @property
    def q2q_corpus(self) -> ParallelCorpus:
        """Query -> synonymous-query corpus (Section III-G serving model)."""
        return ParallelCorpus.from_pairs(self.synonym_pairs, self.vocab, swap=False)


def _domain_vocabulary() -> list[str]:
    """Every token the catalog and query generators can emit."""
    tokens: list[str] = list(VAGUE_WORDS) + list(FILLER_WORDS)
    for aliases in AUDIENCE_ALIASES.values():
        tokens.extend(aliases)
    for brand, aliases in BRAND_ALIASES.items():
        tokens.append(brand)
        tokens.extend(aliases)
    for spec in CATEGORY_SPECS.values():
        tokens.extend(spec.canonical)
        tokens.extend(spec.colloquial)
        tokens.extend(spec.brands)
        tokens.extend(spec.audiences)
        tokens.extend(spec.features)
        tokens.extend(spec.marketing)
        tokens.extend(spec.spec_tokens)
    return tokens


def generate_marketplace(config: MarketplaceConfig | None = None) -> Marketplace:
    """Generate catalog, simulate clicks, build vocab and splits."""
    config = config or MarketplaceConfig()
    rng = np.random.default_rng(config.seed)

    catalog = CatalogGenerator(config.catalog).generate(rng)
    simulator = ClickLogSimulator(catalog, QueryGenerator(), config.clicks)
    click_log = simulator.simulate(np.random.default_rng(config.clicks.seed))

    corpus_tokens = [list(q) for q, _, _ in click_log.pairs]
    corpus_tokens += [list(t) for _, t, _ in click_log.pairs]
    # Include the full domain vocabulary (aliases, vague words, every spec
    # token) so no legal query is out-of-vocabulary — production vocabularies
    # are built over complete logs, not over one sampled slice.
    corpus_tokens.append(_domain_vocabulary())
    vocab = Vocabulary.build(corpus_tokens, min_freq=config.vocab_min_freq)

    train_pairs, eval_pairs = train_eval_split(
        click_log.pairs, config.eval_fraction, np.random.default_rng(config.seed + 2)
    )
    synonym_pairs = extract_synonym_pairs(click_log)
    return Marketplace(
        config=config,
        catalog=catalog,
        click_log=click_log,
        vocab=vocab,
        train_pairs=train_pairs,
        eval_pairs=eval_pairs,
        synonym_pairs=synonym_pairs,
    )
