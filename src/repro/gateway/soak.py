"""Socket-path soak harness: live gateway vs in-process twin replay.

The conformance claim this module exists to check: serving the *same*
deterministic :class:`~repro.online.replay.TrafficReplay`-derived trace

* through the real network path — concurrent HTTP clients against a
  :class:`~repro.gateway.app.Gateway` on an ephemeral port, wall-clock
  scheduling, real socket framing — and
* through the in-process twin — the same pipelines driven directly by a
  :class:`~repro.online.scheduler.MicroBatchScheduler` on a
  :class:`~repro.online.clock.VirtualClock`

produces **byte-identical** deterministic
:meth:`~repro.core.serving.ServingStats.counters` per tenant.

That only holds when every counter is order-independent, because the
socket arm's request interleaving is up to the OS scheduler.  The soak
therefore pins the configuration that makes it exact: batch size 1 with
zero wait (each request is its own dispatch), no model-result caching
(no cache writes racing reads), no churn, and a TTL far beyond the run
(no expiry racing the clock).  Micro-batching with B > 1 is exercised
separately by the lifecycle tests through conservation invariants rather
than byte equality.

Everything here is shared by ``tests/test_gateway_soak.py``,
``benchmarks/test_gateway_soak.py``, the ``gateway_soak`` experiment
runner, and the scenario arm of the same name — one workload definition,
four consumers.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field

from repro.baselines import RuleBasedRewriter
from repro.core import RewriteCache, ServingConfig, ServingPipeline
from repro.data.catalog import CatalogConfig, CatalogGenerator, alias_to_canonical
from repro.data.clicklog import ClickLogConfig, ClickLogSimulator
from repro.gateway.app import Gateway, GatewayConfig
from repro.gateway.ratelimit import RateLimitConfig
from repro.gateway.schemas import (
    DrainResponse,
    RewriteResponse,
    SchemaError,
    SearchResponse,
)
from repro.online.clock import VirtualClock, WallClock
from repro.online.replay import ReplayConfig, TrafficReplay
from repro.online.scheduler import (
    MicroBatchScheduler,
    ScheduledRequest,
    SchedulerConfig,
)
from repro.search import SearchConfig, ShardedSearchEngine


@dataclass(frozen=True)
class SoakConfig:
    """Shape of one soak run (both arms derive everything from this)."""

    seed: int = 0
    #: total requests across all tenants
    num_requests: int = 240
    #: marketplaces served; each gets its own catalog/pipeline/scheduler
    tenants: tuple = ("marketplace_na", "marketplace_eu")
    #: every Nth request per tenant goes end-to-end through retrieval
    search_every: int = 4
    #: concurrent HTTP client connections in the socket arm
    clients: int = 4
    #: catalog/click-log scale per tenant
    products_per_category: int = 4
    sessions_per_tenant: int = 250
    #: drain the gateway at the end and keep the conservation receipt
    drain_at_end: bool = True

    def __post_init__(self):
        """A soak needs work, tenants, and at least one client."""
        if self.num_requests < 1:
            raise ValueError("num_requests must be >= 1")
        if not self.tenants:
            raise ValueError("tenants must be non-empty")
        if self.clients < 1:
            raise ValueError("clients must be >= 1")
        if self.search_every < 1:
            raise ValueError("search_every must be >= 1")


#: the order-independent scheduler policy both arms share (see module doc)
SOAK_SCHEDULER = SchedulerConfig(
    max_batch_size=1,
    max_wait_seconds=0.0,
    max_queue_depth=4096,
    num_lanes=2,
)


@dataclass(frozen=True)
class SoakItem:
    """One request of the soak trace, fully determined by the config."""

    tenant: str
    #: "rewrite" or "search"
    kind: str
    query: str
    #: lane 0 for head queries, lane 1 for the tail
    lane: int


@dataclass
class SoakOutcome:
    """Everything both arms produced, ready for invariant checks."""

    #: requests in the trace
    requests: int
    #: tenant -> deterministic counters seen over HTTP (/v1/stats)
    gateway_counters: dict
    #: tenant -> deterministic counters from the virtual-clock twin
    twin_counters: dict
    #: HTTP responses received, by status code
    responses_by_status: dict
    #: responses whose body failed response-schema validation
    schema_failures: int
    #: drain receipt (DrainResponse wire dict), when drain_at_end
    receipt: dict | None
    #: the gateway block of /v1/stats at end of run
    gateway_stats: dict = field(default_factory=dict)

    @property
    def identical(self) -> bool:
        """Whether the two arms' counters are byte-identical."""
        return _canonical(self.gateway_counters) == _canonical(self.twin_counters)

    @property
    def http_500s(self) -> int:
        """Internal errors observed by the clients (pinned to zero)."""
        return sum(
            count
            for status, count in self.responses_by_status.items()
            if int(status) >= 500
        )

    @property
    def lost_requests(self) -> int:
        """Admitted requests that neither completed nor were shed."""
        if self.receipt is None:
            return 0
        return (
            self.receipt["admitted"]
            - self.receipt["completed"]
            - self.receipt["shed"]
        )

    def fingerprint(self) -> str:
        """Canonical digest of the deterministic outcome (twin side)."""
        return _canonical(self.twin_counters)


def _canonical(counters: dict) -> str:
    """Byte-stable JSON rendering used for the equality comparison."""
    return json.dumps(counters, sort_keys=True, separators=(",", ":"))


# -- workload ----------------------------------------------------------------
def build_workload(config: SoakConfig):
    """The deterministic trace plus per-tenant head sets.

    Returns ``(items, heads)``: ``items`` interleaves the tenants
    round-robin (the global submit order of the twin), and ``heads`` maps
    tenant -> head-query set (cache pre-population).  Churn is disabled
    by construction — the churn cadence is pushed past the trace length —
    so the trace is pure traffic.
    """
    per_tenant = max(1, config.num_requests // len(config.tenants))
    traces = {}
    heads = {}
    for index, tenant in enumerate(config.tenants):
        replay = _build_replay(config, index, per_tenant)
        heads[tenant] = set(replay.head_queries())
        requests = [
            payload
            for kind, _, payload in replay.arrival_trace()
            if kind == "request"
        ][:per_tenant]
        traces[tenant] = [
            SoakItem(
                tenant=tenant,
                kind="search" if seq % config.search_every == 0 else "rewrite",
                query=request.query,
                lane=0 if request.query in heads[tenant] else 1,
            )
            for seq, request in enumerate(requests)
        ]
    items = []
    for seq in range(per_tenant):
        for tenant in config.tenants:
            items.append(traces[tenant][seq])
    return items, heads


def _build_replay(config: SoakConfig, index: int, per_tenant: int) -> TrafficReplay:
    """One tenant's deterministic traffic source (no churn events)."""
    seed = config.seed + 11 * index
    generator = CatalogGenerator(
        CatalogConfig(products_per_category=config.products_per_category, seed=seed)
    )
    catalog = generator.generate()
    click_log = ClickLogSimulator(
        catalog,
        config=ClickLogConfig(
            num_sessions=config.sessions_per_tenant,
            intent_pool_size=60,
            seed=seed,
        ),
    ).simulate()
    replay_config = ReplayConfig(
        num_requests=per_tenant,
        batch_size=16,
        churn_every=per_tenant + 1,  # never fires: pure traffic
        seed=seed,
    )
    return TrafficReplay(click_log, generator, replay_config)


def build_tenant_pipeline(config: SoakConfig, index: int, clock) -> ServingPipeline:
    """One tenant's serving stack, identical in both arms.

    ``clock`` is the zero-argument time source for the cache TTL (the
    arm's WallClock.now or VirtualClock.now).  The TTL is effectively
    infinite and model results are not written back, so the counters
    cannot depend on which clock drives them.
    """
    seed = config.seed + 11 * index
    generator = CatalogGenerator(
        CatalogConfig(products_per_category=config.products_per_category, seed=seed)
    )
    catalog = generator.generate()
    engine = ShardedSearchEngine(
        catalog, SearchConfig(max_candidates=10), num_shards=2, parallel=False
    )
    cache = RewriteCache(ttl_seconds=1e9, clock=clock)
    rewriter = RuleBasedRewriter(alias_to_canonical())
    per_tenant = max(1, config.num_requests // len(config.tenants))
    replay = _build_replay(config, index, per_tenant)
    cache.populate(rewriter, list(replay.head_queries()), k=3)
    return ServingPipeline(
        cache,
        rewriter,
        ServingConfig(cache_model_results=False),
        search_engine=engine,
        tenant=config.tenants[index],
    )


# -- minimal asyncio HTTP client ---------------------------------------------
class MiniClient:
    """Just enough HTTP/1.1 client for the soak: keep-alive JSON calls."""

    def __init__(self, host: str, port: int):
        """Connect lazily on the first request."""
        self.host = host
        self.port = port
        self._reader = None
        self._writer = None

    async def _ensure(self) -> None:
        if self._writer is None:
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )

    async def request(self, method: str, path: str, payload=None):
        """One round trip; returns ``(status, headers, decoded_body)``."""
        await self._ensure()
        body = b""
        head = [f"{method} {path} HTTP/1.1", f"Host: {self.host}"]
        if payload is not None:
            body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
            head.append("Content-Type: application/json")
            head.append(f"Content-Length: {len(body)}")
        self._writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body)
        await self._writer.drain()
        return await self._read_response()

    async def raw(
        self,
        method: str,
        path: str,
        body: bytes,
        content_type: str = "application/json",
    ):
        """Send arbitrary (possibly invalid-JSON) bytes as the body.

        The fuzz suite's entry point: framing is correct, the payload is
        whatever the caller wants to throw at the schema layer.  Returns
        ``(status, headers, decoded_body)``; the body is decoded as JSON
        when possible, else returned as raw bytes.
        """
        await self._ensure()
        head = [
            f"{method} {path} HTTP/1.1",
            f"Host: {self.host}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
        ]
        self._writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body)
        await self._writer.drain()
        return await self._read_response()

    async def _read_response(self):
        status_line = (await self._reader.readline()).decode("latin-1").strip()
        status = int(status_line.split(" ")[1])
        headers = {}
        while True:
            line = (await self._reader.readline()).decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        raw = await self._reader.readexactly(length) if length else b""
        decoded = json.loads(raw.decode("utf-8")) if raw else None
        return status, headers, decoded

    async def post(self, path: str, payload):
        """POST JSON; returns ``(status, headers, decoded_body)``."""
        return await self.request("POST", path, payload)

    async def get(self, path: str):
        """GET; returns ``(status, headers, decoded_body)``."""
        return await self.request("GET", path)

    async def close(self) -> None:
        """Close the connection (safe when never connected)."""
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass
            self._writer = None
            self._reader = None


def item_payload(item: SoakItem) -> dict:
    """The JSON body a :class:`SoakItem` posts to its route."""
    return {"query": item.query, "tenant": item.tenant, "lane": item.lane}


def item_path(item: SoakItem) -> str:
    """The route a :class:`SoakItem` posts to."""
    return "/v1/search" if item.kind == "search" else "/v1/rewrite"


# -- the two arms ------------------------------------------------------------
async def run_gateway_arm(config: SoakConfig, items):
    """Drive the trace through a live gateway over real sockets.

    Returns ``(per_tenant_counters, responses_by_status, schema_failures,
    receipt, gateway_stats)``.
    """
    clock = WallClock()
    pipelines = {
        tenant: build_tenant_pipeline(config, index, clock.now)
        for index, tenant in enumerate(config.tenants)
    }
    gateway_config = GatewayConfig(
        scheduler=SOAK_SCHEDULER,
        # Shaping off for the conformance soak: admission must depend on
        # the trace alone, not on client pacing.
        rate_limit=RateLimitConfig(rate_per_second=1e6, burst=1_000_000),
    )
    responses_by_status: dict = {}
    schema_failures = 0
    receipt = None
    async with Gateway(pipelines, gateway_config, clock=clock) as gateway:
        lanes = [items[offset :: config.clients] for offset in range(config.clients)]

        async def drive(slice_items):
            nonlocal schema_failures
            client = MiniClient(gateway.config.host, gateway.port)
            try:
                for item in slice_items:
                    status, _, body = await client.post(
                        item_path(item), item_payload(item)
                    )
                    key = str(status)
                    responses_by_status[key] = responses_by_status.get(key, 0) + 1
                    model = (
                        SearchResponse if item.kind == "search" else RewriteResponse
                    )
                    try:
                        model.parse(body)
                    except SchemaError:
                        schema_failures += 1
            finally:
                await client.close()

        await asyncio.gather(*(drive(lane) for lane in lanes))

        reader = MiniClient(gateway.config.host, gateway.port)
        try:
            _, _, stats = await reader.get("/v1/stats")
            if config.drain_at_end:
                _, _, receipt_body = await reader.post("/v1/drain", {})
                receipt = DrainResponse.parse(receipt_body).to_wire()
                _, _, stats = await reader.get("/v1/stats")
        finally:
            await reader.close()
    return (
        stats["serving"],
        responses_by_status,
        schema_failures,
        receipt,
        stats["gateway"],
    )


def run_twin_arm(config: SoakConfig, items) -> dict:
    """Replay the same trace in process on a virtual clock.

    One shared :class:`VirtualClock`, one scheduler per tenant (exactly
    the gateway's shape), arrivals spaced a virtual millisecond apart in
    the global round-robin order.  Returns tenant -> counters.
    """
    clock = VirtualClock()
    pipelines = {
        tenant: build_tenant_pipeline(config, index, clock.now)
        for index, tenant in enumerate(config.tenants)
    }
    schedulers = {
        tenant: MicroBatchScheduler(pipelines[tenant], clock, SOAK_SCHEDULER)
        for tenant in config.tenants
    }
    for seq, item in enumerate(items):
        schedulers[item.tenant].submit(
            ScheduledRequest(
                query=item.query,
                arrival_seconds=seq * 0.001,
                lane=item.lane,
                kind=item.kind,
            )
        )
    for tenant in config.tenants:
        schedulers[tenant].drain()
        pipelines[tenant].close()
    return {
        tenant: pipelines[tenant].stats.counters() for tenant in sorted(pipelines)
    }


def run_soak(config: SoakConfig | None = None) -> SoakOutcome:
    """Run both arms and assemble the :class:`SoakOutcome` (sync entry)."""
    config = config or SoakConfig()
    items, _ = build_workload(config)
    gateway_counters, by_status, schema_failures, receipt, gateway_stats = (
        asyncio.run(run_gateway_arm(config, items))
    )
    twin_counters = run_twin_arm(config, items)
    return SoakOutcome(
        requests=len(items),
        gateway_counters=gateway_counters,
        twin_counters=twin_counters,
        responses_by_status=by_status,
        schema_failures=schema_failures,
        receipt=receipt,
        gateway_stats=gateway_stats,
    )
