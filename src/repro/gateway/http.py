"""Minimal HTTP/1.1 framing over asyncio streams (no dependencies).

The gateway speaks just enough HTTP for a JSON API: request-line +
headers parsing, ``Content-Length``-framed bodies, keep-alive
connections, and JSON responses with deterministic serialization.  Every
framing violation is a typed :class:`~repro.gateway.schemas.SchemaError`
(``bad_request``, ``length_required``, ``body_too_large``,
``unsupported_media_type``) so the app layer can answer with the same
4xx envelope it uses for schema failures — malformed wire input never
becomes an unhandled exception.

Limits are deliberately tight (8 KiB of headers, 64 KiB of body by
default): this is a front door for short JSON queries, not a general
proxy.
"""

from __future__ import annotations

import asyncio
import json

from repro.gateway.schemas import (
    BAD_REQUEST,
    BODY_TOO_LARGE,
    LENGTH_REQUIRED,
    UNSUPPORTED_MEDIA_TYPE,
    SchemaError,
)

#: request line + headers must fit in this many bytes
MAX_HEADER_BYTES = 8192
#: default cap on a request body (overridable per gateway)
DEFAULT_MAX_BODY_BYTES = 64 * 1024

#: reason phrases for every status the gateway can emit
REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    411: "Length Required",
    413: "Payload Too Large",
    415: "Unsupported Media Type",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpRequest:
    """One parsed request: method, path, lower-cased headers, raw body."""

    __slots__ = ("method", "path", "headers", "body")

    def __init__(self, method: str, path: str, headers: dict, body: bytes):
        """``headers`` keys must already be lower-cased."""
        self.method = method
        self.path = path
        self.headers = headers
        self.body = body

    def json(self):
        """Decode the body as JSON; ``invalid_json`` SchemaError if not."""
        if not self.body:
            raise SchemaError("invalid_json", "request body must be JSON")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            raise SchemaError("invalid_json", "request body is not valid JSON")

    @property
    def keep_alive(self) -> bool:
        """Whether the client asked to reuse the connection (HTTP/1.1)."""
        return self.headers.get("connection", "keep-alive").lower() != "close"


async def read_request(
    reader, *, max_body_bytes: int = DEFAULT_MAX_BODY_BYTES
) -> HttpRequest | None:
    """Read one request off the stream; None on clean EOF before a byte.

    Raises :class:`SchemaError` on any framing violation — the caller
    answers with the matching 4xx and closes the connection (framing
    errors leave the stream position undefined, so keep-alive is off the
    table).
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between requests
        raise SchemaError(BAD_REQUEST, "truncated request head")
    except asyncio.LimitOverrunError:
        raise SchemaError(BAD_REQUEST, "request head exceeds the stream limit")
    except ConnectionError:
        return None
    if len(head) > MAX_HEADER_BYTES:
        raise SchemaError(BAD_REQUEST, "request head exceeds 8 KiB")

    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise SchemaError(BAD_REQUEST, f"malformed request line {lines[0]!r}")
    method, target, _version = parts
    path = target.split("?", 1)[0]

    headers: dict = {}
    for line in lines[1:]:
        if not line:
            continue
        if ":" not in line:
            raise SchemaError(BAD_REQUEST, f"malformed header line {line!r}")
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()

    body = b""
    if method == "POST":
        if "content-length" not in headers:
            raise SchemaError(
                LENGTH_REQUIRED, "POST requires a Content-Length header"
            )
        try:
            length = int(headers["content-length"])
            if length < 0:
                raise ValueError
        except ValueError:
            raise SchemaError(BAD_REQUEST, "malformed Content-Length")
        if length > max_body_bytes:
            raise SchemaError(
                BODY_TOO_LARGE,
                f"request body of {length} bytes exceeds the "
                f"{max_body_bytes}-byte limit",
            )
        content_type = headers.get("content-type", "application/json")
        media_type = content_type.split(";", 1)[0].strip().lower()
        if media_type != "application/json" and not media_type.endswith("+json"):
            raise SchemaError(
                UNSUPPORTED_MEDIA_TYPE,
                f"content type {media_type!r} is not JSON",
            )
        if length:
            try:
                body = await reader.readexactly(length)
            except Exception:
                raise SchemaError(BAD_REQUEST, "request body truncated")
    return HttpRequest(method=method, path=path, headers=headers, body=body)


def render_response(
    status: int,
    payload: dict,
    *,
    extra_headers: dict | None = None,
    keep_alive: bool = True,
) -> bytes:
    """Serialize one JSON response to wire bytes (headers + body).

    The body is compact, key-order-preserving JSON — the byte form the
    golden fixture pins.
    """
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    head = [
        f"HTTP/1.1 {status} {REASONS.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        head.append(f"{name}: {value}")
    return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body


async def write_response(
    writer,
    status: int,
    payload: dict,
    *,
    extra_headers: dict | None = None,
    keep_alive: bool = True,
) -> None:
    """Write one JSON response and flush the stream."""
    writer.write(
        render_response(
            status, payload, extra_headers=extra_headers, keep_alive=keep_alive
        )
    )
    await writer.drain()
