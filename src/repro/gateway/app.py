"""The gateway itself: asyncio HTTP front door over the serving stack.

:class:`Gateway` binds the whole PR together: an ``asyncio.start_server``
loop speaking the minimal HTTP of :mod:`repro.gateway.http`, the typed
schemas of :mod:`repro.gateway.schemas`, per-tenant
:class:`~repro.gateway.bridge.SchedulerBridge` instances over one shared
latched :class:`~repro.online.clock.WallClock`, and per-tenant
:class:`~repro.gateway.ratelimit.TokenBucket` admission.

Routes (all JSON)::

    POST /v1/rewrite   one query through the rewrite tiers
    POST /v1/search    one query end to end (rewrite + retrieval)
    POST /v1/batch     several tagged items in one submission
    GET  /v1/health    liveness + queue/tenant snapshot
    GET  /v1/stats     ServingStats counters, scheduler + HTTP telemetry
    POST /v1/drain     graceful drain; returns the conservation receipt

Error contract: *every* non-2xx response is a typed
:class:`~repro.gateway.schemas.ErrorEnvelope` with a stable ``code``;
malformed input of any shape maps to a 4xx, never a 500 (the schema-fuzz
suite pins this).  Rate-limited and shed requests answer 429 with a
``Retry-After`` header.  After ``/v1/drain``, in-flight requests
complete, admitted work is flushed through the schedulers (zero loss:
``admitted == completed + shed``), and new serving requests get 503
``draining`` — health/stats keep answering.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from repro.core.serving import sum_counters
from repro.gateway import schemas
from repro.gateway.bridge import RequestShed, SchedulerBridge
from repro.gateway.http import (
    DEFAULT_MAX_BODY_BYTES,
    read_request,
    write_response,
)
from repro.gateway.ratelimit import RateLimitConfig, RateLimiter
from repro.gateway.schemas import (
    BatchRequest,
    BatchResponse,
    DrainResponse,
    ErrorEnvelope,
    HealthResponse,
    RewriteRequest,
    RewriteResponse,
    SchemaError,
    SearchRequest,
    SearchResponse,
    StatsResponse,
)
from repro.online.clock import WallClock
from repro.online.scheduler import SchedulerConfig

#: route table: path -> methods it answers
ROUTES = {
    "/v1/rewrite": ("POST",),
    "/v1/search": ("POST",),
    "/v1/batch": ("POST",),
    "/v1/health": ("GET",),
    "/v1/stats": ("GET",),
    "/v1/drain": ("POST",),
}


@dataclass(frozen=True)
class GatewayConfig:
    """Everything the front door needs beyond the pipelines themselves."""

    #: bind address; tests use the default loopback
    host: str = "127.0.0.1"
    #: 0 picks an ephemeral port (read it back from :attr:`Gateway.port`)
    port: int = 0
    #: request-body ceiling (413 ``body_too_large`` beyond it)
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES
    #: period of the background tick that fires deadline-triggered batches
    pump_interval_seconds: float = 0.005
    #: batching/admission policy of every tenant's scheduler
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    #: per-tenant token-bucket shaping
    rate_limit: RateLimitConfig = field(default_factory=RateLimitConfig)


@dataclass
class GatewayStats:
    """The HTTP layer's own counters (the ``gateway`` block of /v1/stats)."""

    #: connections accepted
    connections: int = 0
    #: requests parsed off the wire (including ones answered with a 4xx)
    http_requests: int = 0
    #: responses written, keyed by status code
    responses_by_status: dict = field(default_factory=dict)
    #: error envelopes sent, keyed by stable error code
    errors_by_code: dict = field(default_factory=dict)
    #: drains performed
    drains: int = 0

    def record(self, status: int, error_code: str | None = None) -> None:
        """Tally one written response (and its error code, if any)."""
        self.responses_by_status[status] = (
            self.responses_by_status.get(status, 0) + 1
        )
        if error_code is not None:
            self.errors_by_code[error_code] = (
                self.errors_by_code.get(error_code, 0) + 1
            )

    def counters(self) -> dict:
        """Deterministically-ordered projection for the stats endpoint."""
        return {
            "connections": self.connections,
            "http_requests": self.http_requests,
            "responses_by_status": {
                str(code): self.responses_by_status[code]
                for code in sorted(self.responses_by_status)
            },
            "errors_by_code": {
                code: self.errors_by_code[code]
                for code in sorted(self.errors_by_code)
            },
            "drains": self.drains,
        }


class Gateway:
    """Async HTTP server over per-tenant serving pipelines.

    Build with a ``{tenant: ServingPipeline}`` map (each pipeline's cache
    and engine must already share the gateway's clock if TTLs matter),
    then ``await start()``; the bound port is :attr:`port`.  Use as an
    async context manager to guarantee shutdown::

        async with Gateway({"default": pipeline}) as gw:
            ...  # talk to ("127.0.0.1", gw.port)
    """

    def __init__(
        self,
        pipelines: dict,
        config: GatewayConfig | None = None,
        *,
        clock: WallClock | None = None,
    ):
        """``pipelines`` must be non-empty; tenants are fixed at startup."""
        if not pipelines:
            raise ValueError("a gateway needs at least one tenant pipeline")
        self.config = config or GatewayConfig()
        self.clock = clock if clock is not None else WallClock()
        self.pipelines = dict(pipelines)
        self.bridges = {
            tenant: SchedulerBridge(pipeline, self.clock, self.config.scheduler)
            for tenant, pipeline in self.pipelines.items()
        }
        self.limiter = RateLimiter(self.config.rate_limit, self.clock)
        self.stats = GatewayStats()
        self.draining = False
        self._server: asyncio.AbstractServer | None = None
        self._in_flight = 0
        self._started_at = 0.0

    # -- lifecycle -----------------------------------------------------------
    async def start(self) -> "Gateway":
        """Bind the socket and start the scheduler pumps."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self._started_at = self.clock.sync()
        for bridge in self.bridges.values():
            bridge.start_pump(self.config.pump_interval_seconds)
        return self

    @property
    def port(self) -> int:
        """The bound TCP port (resolves port=0 to the ephemeral choice)."""
        if self._server is None:
            raise RuntimeError("gateway is not started")
        return self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        """Stop accepting, cancel pumps, and close every pipeline."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for bridge in self.bridges.values():
            await bridge.stop_pump()
        for pipeline in self.pipelines.values():
            pipeline.close()

    async def __aenter__(self) -> "Gateway":
        """``async with Gateway(...)`` starts the server."""
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        """Always shut the server and pipelines down on scope exit."""
        await self.close()

    # -- connection loop -----------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        """Serve one client connection: keep-alive loop of request/response."""
        self.stats.connections += 1
        try:
            while True:
                try:
                    request = await read_request(
                        reader, max_body_bytes=self.config.max_body_bytes
                    )
                except SchemaError as error:
                    # Framing is broken: answer and drop the connection.
                    await self._respond_error(writer, error, keep_alive=False)
                    break
                if request is None:
                    break
                self.stats.http_requests += 1
                self._in_flight += 1
                try:
                    keep_alive = await self._dispatch(request, writer)
                finally:
                    self._in_flight -= 1
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _dispatch(self, request, writer) -> bool:
        """Route one parsed request; returns whether to keep the connection."""
        keep_alive = request.keep_alive
        try:
            status, payload, extra = await self._route(request)
        except SchemaError as error:
            await self._respond_error(
                writer,
                error,
                keep_alive=keep_alive,
                retry_after=getattr(error, "retry_after", None),
            )
            return keep_alive
        except RequestShed:
            error = SchemaError(
                schemas.QUEUE_FULL, "admission control shed this request"
            )
            await self._respond_error(
                writer,
                error,
                keep_alive=keep_alive,
                retry_after=self._shed_retry_after(),
            )
            return keep_alive
        except Exception as exc:  # the 500 path the fuzz suite pins to zero
            envelope = ErrorEnvelope(
                code=schemas.INTERNAL, message=f"unexpected failure: {exc}"
            )
            self.stats.record(500, schemas.INTERNAL)
            await write_response(
                writer, 500, envelope.to_wire(), keep_alive=keep_alive
            )
            return keep_alive
        self.stats.record(status)
        await write_response(
            writer, status, payload, extra_headers=extra, keep_alive=keep_alive
        )
        return keep_alive

    async def _respond_error(
        self, writer, error: SchemaError, *, keep_alive: bool,
        retry_after: float | None = None,
    ) -> None:
        """Write the typed envelope for a :class:`SchemaError`."""
        envelope = ErrorEnvelope(
            code=error.code,
            message=error.message,
            field=error.field,
            retry_after_seconds=retry_after,
        )
        status = envelope.status
        extra = (
            {"Retry-After": f"{retry_after:.3f}"}
            if retry_after is not None
            else None
        )
        self.stats.record(status, error.code)
        await write_response(
            writer, status, envelope.to_wire(),
            extra_headers=extra, keep_alive=keep_alive,
        )

    # -- routing -------------------------------------------------------------
    async def _route(self, request) -> tuple:
        """Resolve one request to ``(status, payload, extra_headers)``."""
        methods = ROUTES.get(request.path)
        if methods is None:
            raise SchemaError(
                schemas.NOT_FOUND, f"no route at {request.path!r}"
            )
        if request.method not in methods:
            raise SchemaError(
                schemas.METHOD_NOT_ALLOWED,
                f"{request.path} accepts {', '.join(methods)}, "
                f"not {request.method}",
            )
        if request.path == "/v1/health":
            return 200, self._health().to_wire(), None
        if request.path == "/v1/stats":
            return 200, self._stats().to_wire(), None
        if request.path == "/v1/drain":
            return 200, (await self._drain()).to_wire(), None
        if request.path == "/v1/rewrite":
            model = RewriteRequest.parse(request.json())
            return await self._serve_one(model.tenant, "rewrite", model)
        if request.path == "/v1/search":
            model = SearchRequest.parse(request.json())
            return await self._serve_one(model.tenant, "search", model)
        model = BatchRequest.parse(request.json())
        return await self._serve_batch(model)

    # -- admission -----------------------------------------------------------
    def _admit(self, tenant: str, tokens: int = 1) -> None:
        """Drain check, tenant check, and token-bucket check, in order."""
        if self.draining:
            raise SchemaError(
                schemas.DRAINING, "gateway is draining; no new work admitted"
            )
        if tenant not in self.bridges:
            raise SchemaError(
                schemas.INVALID_VALUE,
                f"tenant {tenant!r} is not served by this gateway",
                "tenant",
            )
        self.clock.sync()  # buckets refill from the shared latch
        retry_after = 0.0
        for _ in range(tokens):
            retry_after = max(retry_after, self.limiter.check(tenant))
        if retry_after > 0.0:
            error = SchemaError(
                schemas.RATE_LIMITED,
                f"tenant {tenant!r} is over its admission rate",
                "tenant",
            )
            error.retry_after = retry_after
            raise error

    def _shed_retry_after(self) -> float:
        """Retry-After for queue-full sheds: one batch deadline's worth."""
        return max(0.001, self.config.scheduler.max_wait_seconds)

    def _check_mode(self, tenant: str, mode: str | None) -> None:
        """Reject unsupported retrieval modes *before* scheduler admission."""
        engine = self.pipelines[tenant].search_engine
        if engine is None:
            raise SchemaError(
                schemas.INVALID_VALUE,
                f"tenant {tenant!r} has no search engine configured",
                "mode",
            )
        supported = getattr(engine, "retrieval_modes", ("lexical",))
        if mode is not None and mode not in supported:
            raise SchemaError(
                schemas.INVALID_VALUE,
                f"retrieval mode {mode!r} is not supported by tenant "
                f"{tenant!r}; available: {', '.join(supported)}",
                "mode",
            )

    # -- serving routes ------------------------------------------------------
    async def _serve_one(self, tenant: str, kind: str, model) -> tuple:
        """Admit + submit + await one rewrite/search request."""
        self._admit(tenant)
        mode = getattr(model, "mode", None)
        if kind == "search":
            self._check_mode(tenant, mode)
        future = self.bridges[tenant].submit(
            kind, model.query, lane=model.lane, mode=mode
        )
        completion = await future
        return 200, self._completion_wire(kind, tenant, completion), None

    async def _serve_batch(self, model: BatchRequest) -> tuple:
        """Admit + submit every batch item; per-item outcomes, in order."""
        self._admit(model.tenant, tokens=len(model.items))
        for item in model.items:
            if item.kind == "search":
                self._check_mode(model.tenant, item.mode)
            elif item.mode is not None:
                raise SchemaError(
                    schemas.INVALID_VALUE,
                    "mode is only meaningful for search items",
                    "mode",
                )
        bridge = self.bridges[model.tenant]
        futures = [
            bridge.submit(item.kind, item.query, lane=item.lane, mode=item.mode)
            for item in model.items
        ]
        settled = await asyncio.gather(*futures, return_exceptions=True)
        outcomes = []
        for item, result in zip(model.items, settled):
            if isinstance(result, RequestShed):
                envelope = ErrorEnvelope(
                    code=schemas.QUEUE_FULL,
                    message="admission control shed this item",
                    retry_after_seconds=self._shed_retry_after(),
                )
                self.stats.errors_by_code[schemas.QUEUE_FULL] = (
                    self.stats.errors_by_code.get(schemas.QUEUE_FULL, 0) + 1
                )
                outcomes.append(envelope.to_wire())
            elif isinstance(result, BaseException):
                raise result
            else:
                outcomes.append(
                    self._completion_wire(item.kind, model.tenant, result)
                )
        return 200, BatchResponse.from_outcomes(model.items, outcomes).to_wire(), None

    def _completion_wire(self, kind: str, tenant: str, completion) -> dict:
        """Render a :class:`CompletedRequest` to its response wire dict."""
        outcome = completion.outcome
        if kind == "rewrite":
            return RewriteResponse(
                query=outcome.query,
                rewrites=list(outcome.rewrites),
                source=outcome.source,
                latency_ms=round(outcome.latency_ms, 3),
            ).to_wire()
        engine = self.pipelines[tenant].search_engine
        mode = completion.request.mode or getattr(
            engine, "default_mode", "lexical"
        )
        return SearchResponse(
            query=outcome.query,
            rewrites=list(outcome.rewrites),
            source=outcome.served.source,
            mode=mode,
            doc_ids=list(outcome.doc_ids),
            postings_accessed=outcome.postings_accessed,
            latency_ms=round(outcome.latency_ms, 3),
        ).to_wire()

    # -- introspection routes ------------------------------------------------
    def _queue_depth(self) -> int:
        return sum(b.scheduler.queue_depth for b in self.bridges.values())

    def _health(self) -> HealthResponse:
        """Snapshot for ``GET /v1/health``."""
        return HealthResponse(
            status="draining" if self.draining else "ok",
            draining=self.draining,
            uptime_seconds=round(self.clock.sync() - self._started_at, 3),
            queue_depth=self._queue_depth(),
            in_flight=self._in_flight,
            tenants=sorted(self.bridges),
        )

    def _stats(self) -> StatsResponse:
        """Snapshot for ``GET /v1/stats``."""
        serving = {
            tenant: self.pipelines[tenant].stats.counters()
            for tenant in sorted(self.pipelines)
        }
        totals = sum_counters(
            [self.pipelines[tenant].stats for tenant in sorted(self.pipelines)]
        )
        scheduler = {}
        for tenant in sorted(self.bridges):
            report = self.bridges[tenant].scheduler.report
            scheduler[tenant] = {
                "admitted": report.admitted,
                "shed": report.shed,
                "completed": report.completed,
                "batches": report.batches,
                "size_triggered": report.size_triggered,
                "deadline_triggered": report.deadline_triggered,
                "peak_queue_depth": report.peak_queue_depth,
                "queue_depth": self.bridges[tenant].scheduler.queue_depth,
            }
        gateway = dict(self.stats.counters())
        gateway["rate_limited_by_tenant"] = {
            tenant: self.limiter.limited[tenant]
            for tenant in sorted(self.limiter.limited)
        }
        return StatsResponse(
            serving=serving, totals=totals, scheduler=scheduler, gateway=gateway
        )

    # -- drain ---------------------------------------------------------------
    def _conservation(self) -> tuple:
        """(admitted, completed, shed) summed over every tenant's scheduler."""
        admitted = completed = shed = 0
        for bridge in self.bridges.values():
            report = bridge.scheduler.report
            admitted += report.admitted
            completed += report.completed
            shed += report.shed
        return admitted, completed, shed

    async def _drain(self) -> DrainResponse:
        """Graceful drain: flush pending work, wait out in-flight requests.

        Idempotent — a second drain returns the (unchanged) receipt
        immediately.  New serving requests observe :attr:`draining`
        before any scheduler submission, so nothing is admitted after
        the flush starts: ``admitted == completed + shed`` holds exactly.
        """
        started = self.clock.sync()
        if not self.draining:
            self.draining = True
            for bridge in self.bridges.values():
                bridge.flush()
                await bridge.stop_pump()
            # The drain request itself is in flight; wait for the rest.
            while self._in_flight > 1:
                await asyncio.sleep(0.002)
            self.stats.drains += 1
        admitted, completed, shed = self._conservation()
        return DrainResponse(
            draining=True,
            admitted=admitted,
            completed=completed,
            shed=shed,
            drain_seconds=round(self.clock.sync() - started, 3),
        )
