"""Async bridge between HTTP handlers and the micro-batch scheduler.

The :class:`~repro.online.scheduler.MicroBatchScheduler` is a
synchronous, single-logical-thread event loop; the gateway's HTTP
handlers are asyncio coroutines that each want *their* request's
outcome.  :class:`SchedulerBridge` connects the two per tenant:

* every submission registers an :class:`asyncio.Future` keyed by the
  identity of its :class:`~repro.online.scheduler.ScheduledRequest`
  (identity, not value — two byte-identical requests are distinct
  submissions);
* the scheduler's ``on_batch`` / ``on_shed`` callbacks resolve exactly
  one future per submitted request — with the
  :class:`~repro.online.scheduler.CompletedRequest` on dispatch, or with
  :class:`RequestShed` when admission control drops it;
* a background **pump** task periodically folds real time into the
  shared :class:`~repro.online.clock.WallClock` (``clock.sync()``) and
  advances the scheduler to it, so deadline-triggered batches dispatch
  even when no new request arrives to push the clock.

Everything runs on the event-loop thread, so the scheduler's
not-thread-safe contract holds by construction.
"""

from __future__ import annotations

import asyncio

from repro.online.scheduler import (
    MicroBatchScheduler,
    ScheduledRequest,
    SchedulerConfig,
)


class RequestShed(Exception):
    """An admitted-path request was dropped by scheduler admission control.

    Carries the shed :class:`ScheduledRequest`; the gateway maps this to
    a 429 ``queue_full`` envelope.
    """

    def __init__(self, request: ScheduledRequest):
        """``request`` is the scheduler's view of the dropped submission."""
        super().__init__(f"request shed by admission control: {request.query!r}")
        self.request = request


class SchedulerBridge:
    """One tenant's scheduler, pumped by wall time, awaited by futures."""

    def __init__(self, pipeline, clock, config: SchedulerConfig | None = None):
        """Wraps a fresh :class:`MicroBatchScheduler` over ``pipeline``
        and the gateway's shared latched ``clock``."""
        self.clock = clock
        self.scheduler = MicroBatchScheduler(
            pipeline,
            clock,
            config,
            on_batch=self._on_batch,
            on_shed=self._on_shed,
        )
        # id(request) -> (request, future); holding the request keeps its
        # id stable for the lifetime of the entry.
        self._waiting: dict = {}
        self._pump_task: asyncio.Task | None = None

    # -- callbacks (fire synchronously inside scheduler calls) ---------------
    def _on_batch(self, completions) -> None:
        """Resolve the future of every request in a dispatched batch."""
        for completion in completions:
            entry = self._waiting.pop(id(completion.request), None)
            if entry is not None and not entry[1].done():
                entry[1].set_result(completion)

    def _on_shed(self, request) -> None:
        """Fail the future of a shed request (arrival or evicted victim)."""
        entry = self._waiting.pop(id(request), None)
        if entry is not None and not entry[1].done():
            entry[1].set_exception(RequestShed(request))

    # -- submission ----------------------------------------------------------
    def submit(
        self,
        kind: str,
        query: str,
        lane: int = 0,
        mode: str | None = None,
    ) -> asyncio.Future:
        """Submit one request at the current synchronized wall time.

        Returns a future resolving to the request's
        :class:`CompletedRequest` (or raising :class:`RequestShed`).  The
        sync-then-submit pair runs without an ``await`` in between, so
        the arrival stamp can never be in the scheduler's past.
        """
        arrival = self.clock.sync()
        request = ScheduledRequest(
            query=query,
            arrival_seconds=arrival,
            lane=lane,
            kind=kind,
            mode=mode,
        )
        future = asyncio.get_running_loop().create_future()
        self._waiting[id(request)] = (request, future)
        self.scheduler.submit(request)
        # With a size trigger of 1 (or an expired deadline) the future is
        # already resolved here; otherwise the pump will get to it.
        return future

    # -- pumping -------------------------------------------------------------
    def start_pump(self, interval_seconds: float) -> None:
        """Start the background tick that fires deadline triggers."""
        if self._pump_task is None:
            self._pump_task = asyncio.get_running_loop().create_task(
                self._pump(interval_seconds)
            )

    async def _pump(self, interval_seconds: float) -> None:
        while True:
            await asyncio.sleep(interval_seconds)
            if self.scheduler.queue_depth:
                self.scheduler.advance_to(self.clock.sync())

    async def stop_pump(self) -> None:
        """Cancel the background tick (idempotent)."""
        task, self._pump_task = self._pump_task, None
        if task is not None:
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass

    # -- lifecycle -----------------------------------------------------------
    def flush(self) -> None:
        """Dispatch everything still pending (the drain path).

        ``MicroBatchScheduler.drain`` advances the clock past each
        remaining trigger — possibly ahead of real time, which the
        latched :class:`WallClock` permits — so every registered future
        resolves before this returns.
        """
        self.scheduler.drain()

    @property
    def waiting(self) -> int:
        """Futures still awaiting a completion or shed notification."""
        return len(self._waiting)
