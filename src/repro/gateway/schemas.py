"""Typed wire schemas for the gateway: dataclass models + field validation.

Every byte that crosses the gateway's socket is described by a model in
this module.  Request models (:class:`RewriteRequest`,
:class:`SearchRequest`, :class:`BatchRequest`) are parsed from untrusted
JSON with **field-level validation** — missing/unknown fields, wrong
types, out-of-range values and oversized strings each raise a
:class:`SchemaError` carrying a stable machine-readable ``code`` — and
response models (:class:`RewriteResponse`, :class:`SearchResponse`,
:class:`StatsResponse`, ...) render themselves to JSON-able dicts with a
pinned key order (``tests/data/golden_gateway_schemas.json`` holds the
golden wire forms).

The contract the fuzz suite (``tests/test_gateway_schemas.py``) pins:
**malformed input can never surface as a 500** — every parse failure is
a typed :class:`SchemaError`, which the HTTP layer maps to a 4xx
:class:`ErrorEnvelope` with the same ``code``.

The style follows the pydantic request/response models of production
categorization services (``ItemInput`` / ``CategorizationResponse``),
rebuilt on stdlib dataclasses so the gateway stays dependency-free.
"""

from __future__ import annotations

import dataclasses
import types
import typing
from dataclasses import dataclass

#: hard ceilings of the wire format (validated per field)
MAX_QUERY_CHARS = 512
MAX_TENANT_CHARS = 64
MAX_BATCH_ITEMS = 64
MAX_LANE = 7

#: retrieval modes a search request may ask for (engine support is
#: re-checked at serve time; an unsupported-but-well-formed mode is a
#: 400 ``invalid_value``, never a 500)
SEARCH_MODES = ("lexical", "semantic", "hybrid")

# -- stable error codes ------------------------------------------------------
#: request body is not parseable JSON (or not a JSON object)
INVALID_JSON = "invalid_json"
#: a field holds the wrong JSON type
INVALID_TYPE = "invalid_type"
#: a required field is absent
MISSING_FIELD = "missing_field"
#: a field this model does not define
UNKNOWN_FIELD = "unknown_field"
#: right type, unacceptable value (range, choices, length, charset)
INVALID_VALUE = "invalid_value"
#: request body exceeds the gateway's size limit
BODY_TOO_LARGE = "body_too_large"
#: POST without a JSON content type
UNSUPPORTED_MEDIA_TYPE = "unsupported_media_type"
#: no route at this path
NOT_FOUND = "not_found"
#: route exists, method does not
METHOD_NOT_ALLOWED = "method_not_allowed"
#: POST without a Content-Length header
LENGTH_REQUIRED = "length_required"
#: malformed request line / headers
BAD_REQUEST = "bad_request"
#: per-tenant token bucket is empty
RATE_LIMITED = "rate_limited"
#: admission control shed the request (queue full)
QUEUE_FULL = "queue_full"
#: the gateway is draining; no new work is admitted
DRAINING = "draining"
#: unexpected server-side failure (the fuzz suite pins this to zero)
INTERNAL = "internal"

#: HTTP status for each error code — the full 4xx/5xx surface of the API
STATUS_BY_CODE = {
    INVALID_JSON: 400,
    INVALID_TYPE: 400,
    MISSING_FIELD: 400,
    UNKNOWN_FIELD: 400,
    INVALID_VALUE: 400,
    BAD_REQUEST: 400,
    NOT_FOUND: 404,
    METHOD_NOT_ALLOWED: 405,
    LENGTH_REQUIRED: 411,
    BODY_TOO_LARGE: 413,
    UNSUPPORTED_MEDIA_TYPE: 415,
    RATE_LIMITED: 429,
    QUEUE_FULL: 429,
    DRAINING: 503,
    INTERNAL: 500,
}


class SchemaError(ValueError):
    """A payload failed schema validation.

    Carries the stable machine-readable ``code`` (one of the module
    constants above), a human-readable ``message``, and optionally the
    offending ``field`` name — everything the HTTP layer needs to build
    the typed 4xx :class:`ErrorEnvelope`.
    """

    def __init__(self, code: str, message: str, field: str | None = None):
        """``code`` must be one of the module-level error-code constants."""
        super().__init__(message)
        self.code = code
        self.message = message
        self.field = field


def constrained(
    *,
    default=dataclasses.MISSING,
    max_len: int | None = None,
    min_value: float | None = None,
    max_value: float | None = None,
    choices: tuple | None = None,
):
    """A dataclass field with wire-validation constraints attached.

    ``max_len`` bounds string length (and list length for list fields);
    ``min_value``/``max_value`` bound numbers; ``choices`` enumerates the
    accepted values.  Violations surface as ``invalid_value`` errors.
    """
    metadata = {
        "max_len": max_len,
        "min_value": min_value,
        "max_value": max_value,
        "choices": choices,
    }
    if default is dataclasses.MISSING:
        return dataclasses.field(metadata=metadata)
    return dataclasses.field(default=default, metadata=metadata)


def _type_name(value) -> str:
    """JSON-ish name of a Python value's type (for error messages)."""
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "boolean"
    if isinstance(value, (int, float)):
        return "number"
    if isinstance(value, str):
        return "string"
    if isinstance(value, list):
        return "array"
    if isinstance(value, dict):
        return "object"
    return type(value).__name__


def _check_scalar(value, expected: type, name: str):
    """Validate one scalar against ``str``/``int``/``float``/``bool``.

    JSON's number type maps onto both int and float: ints are accepted
    where floats are expected (never the reverse), and bool — a subclass
    of int in Python — is accepted *only* where bool is expected.
    """
    if expected is bool:
        if not isinstance(value, bool):
            raise SchemaError(
                INVALID_TYPE, f"{name} must be a boolean, got {_type_name(value)}", name
            )
        return value
    if isinstance(value, bool):
        raise SchemaError(
            INVALID_TYPE, f"{name} must be a {expected.__name__}, got boolean", name
        )
    if expected is float:
        if not isinstance(value, (int, float)):
            raise SchemaError(
                INVALID_TYPE, f"{name} must be a number, got {_type_name(value)}", name
            )
        return float(value)
    if not isinstance(value, expected):
        kind = "integer" if expected is int else expected.__name__
        raise SchemaError(
            INVALID_TYPE, f"{name} must be a {kind}, got {_type_name(value)}", name
        )
    return value


def _apply_constraints(value, metadata, name: str):
    """Enforce a field's ``constrained()`` metadata on a validated value."""
    max_len = metadata.get("max_len")
    if max_len is not None and isinstance(value, (str, list)):
        if len(value) > max_len:
            raise SchemaError(
                INVALID_VALUE,
                f"{name} exceeds the maximum length of {max_len}",
                name,
            )
    if isinstance(value, str) and not isinstance(value, bool):
        if metadata.get("min_value") == 1 and not value.strip():
            raise SchemaError(INVALID_VALUE, f"{name} must not be empty", name)
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        min_value = metadata.get("min_value")
        max_value = metadata.get("max_value")
        if min_value is not None and value < min_value:
            raise SchemaError(
                INVALID_VALUE, f"{name} must be >= {min_value}", name
            )
        if max_value is not None and value > max_value:
            raise SchemaError(
                INVALID_VALUE, f"{name} must be <= {max_value}", name
            )
    choices = metadata.get("choices")
    if choices is not None and value is not None and value not in choices:
        raise SchemaError(
            INVALID_VALUE,
            f"{name} must be one of {', '.join(map(str, choices))}",
            name,
        )
    return value


class WireModel:
    """Base of every request/response model: parse + render + validate.

    Subclasses are plain frozen dataclasses; :meth:`parse` validates an
    untrusted JSON object against the dataclass fields (presence, JSON
    type, ``constrained()`` bounds, and rejection of unknown keys) and
    :meth:`to_wire` renders the instance back to a JSON-able dict in
    declared field order — the byte-stable wire form the golden fixture
    pins.
    """

    @classmethod
    def _hints(cls) -> dict:
        """Resolved (de-stringified) type annotations, cached per class."""
        cached = cls.__dict__.get("_resolved_hints")
        if cached is None:
            cached = typing.get_type_hints(cls)
            cls._resolved_hints = cached
        return cached

    @classmethod
    def parse(cls, data):
        """Validate ``data`` (a decoded JSON value) into an instance.

        Raises :class:`SchemaError` with a stable ``code`` on any
        violation; never raises anything else for any JSON input.
        """
        if not isinstance(data, dict):
            raise SchemaError(
                INVALID_TYPE,
                f"{cls.__name__} payload must be a JSON object, "
                f"got {_type_name(data)}",
            )
        spec = {f.name: f for f in dataclasses.fields(cls)}
        for key in data:
            if not isinstance(key, str) or key not in spec:
                raise SchemaError(
                    UNKNOWN_FIELD,
                    f"{cls.__name__} does not define a field {key!r}",
                    str(key),
                )
        hints = cls._hints()
        kwargs = {}
        for name, field_spec in spec.items():
            if name not in data:
                if (
                    field_spec.default is dataclasses.MISSING
                    and field_spec.default_factory is dataclasses.MISSING
                ):
                    raise SchemaError(
                        MISSING_FIELD,
                        f"{cls.__name__} requires the field {name!r}",
                        name,
                    )
                continue
            kwargs[name] = cls._parse_field(
                data[name], hints[name], field_spec.metadata, name
            )
        return cls(**kwargs)

    @classmethod
    def _parse_field(cls, value, annotation, metadata, name: str):
        """Validate one field value against its resolved annotation."""
        origin = typing.get_origin(annotation)
        # Optional[T] resolves to typing.Union; the PEP 604 spelling
        # ``T | None`` resolves to types.UnionType — accept both.
        if origin is typing.Union or isinstance(annotation, types.UnionType):
            args = [a for a in typing.get_args(annotation) if a is not type(None)]
            if value is None:
                return None
            annotation = args[0]
            origin = typing.get_origin(annotation)
        if value is None:
            raise SchemaError(INVALID_TYPE, f"{name} must not be null", name)
        if origin in (list, tuple):
            if not isinstance(value, list):
                raise SchemaError(
                    INVALID_TYPE,
                    f"{name} must be an array, got {_type_name(value)}",
                    name,
                )
            _apply_constraints(value, metadata, name)
            (item_type,) = typing.get_args(annotation)[:1] or (str,)
            items = []
            for position, item in enumerate(value):
                item_name = f"{name}[{position}]"
                if isinstance(item_type, type) and issubclass(item_type, WireModel):
                    items.append(item_type.parse(item))
                else:
                    items.append(_check_scalar(item, item_type, item_name))
            return items
        if annotation is dict:
            if not isinstance(value, dict):
                raise SchemaError(
                    INVALID_TYPE,
                    f"{name} must be an object, got {_type_name(value)}",
                    name,
                )
            return value
        if isinstance(annotation, type) and issubclass(annotation, WireModel):
            return annotation.parse(value)
        checked = _check_scalar(value, annotation, name)
        return _apply_constraints(checked, metadata, name)

    def to_wire(self) -> dict:
        """JSON-able dict in declared field order (nested models recurse)."""
        wire = {}
        for field_spec in dataclasses.fields(self):
            wire[field_spec.name] = _wire_value(getattr(self, field_spec.name))
        return wire


def _wire_value(value):
    """Recursively render a field value to its JSON-able form."""
    if isinstance(value, WireModel):
        return value.to_wire()
    if isinstance(value, (list, tuple)):
        return [_wire_value(item) for item in value]
    if isinstance(value, dict):
        return {key: _wire_value(item) for key, item in value.items()}
    return value


# -- request models ----------------------------------------------------------
@dataclass(frozen=True)
class RewriteRequest(WireModel):
    """``POST /v1/rewrite`` — one query through the rewrite tiers."""

    #: the user query to rewrite (required, non-empty)
    query: str = constrained(max_len=MAX_QUERY_CHARS, min_value=1)
    #: marketplace the request belongs to (routes pipeline + rate bucket)
    tenant: str = constrained(default="default", max_len=MAX_TENANT_CHARS, min_value=1)
    #: scheduler priority lane, 0 (highest) .. MAX_LANE
    lane: int = constrained(default=0, min_value=0, max_value=MAX_LANE)


@dataclass(frozen=True)
class SearchRequest(WireModel):
    """``POST /v1/search`` — one query end to end: rewrite then retrieve."""

    #: the user query to rewrite-and-retrieve (required, non-empty)
    query: str = constrained(max_len=MAX_QUERY_CHARS, min_value=1)
    #: marketplace the request belongs to
    tenant: str = constrained(default="default", max_len=MAX_TENANT_CHARS, min_value=1)
    #: scheduler priority lane
    lane: int = constrained(default=0, min_value=0, max_value=MAX_LANE)
    #: retrieval mode; null selects the engine's default
    mode: str | None = constrained(default=None, choices=SEARCH_MODES)


@dataclass(frozen=True)
class BatchItem(WireModel):
    """One entry of a ``/v1/batch`` request: a tagged rewrite or search."""

    #: "rewrite" or "search"
    kind: str = constrained(choices=("rewrite", "search"))
    #: the user query (required, non-empty)
    query: str = constrained(max_len=MAX_QUERY_CHARS, min_value=1)
    #: scheduler priority lane
    lane: int = constrained(default=0, min_value=0, max_value=MAX_LANE)
    #: retrieval mode for search items; must be null for rewrite items
    mode: str | None = constrained(default=None, choices=SEARCH_MODES)


@dataclass(frozen=True)
class BatchRequest(WireModel):
    """``POST /v1/batch`` — several requests admitted as one submission.

    Items still ride the scheduler individually (lanes and admission are
    per item); the batch is a transport envelope, and the response
    preserves item order.
    """

    #: entries to serve, in order (1 .. MAX_BATCH_ITEMS)
    items: list[BatchItem] = constrained(max_len=MAX_BATCH_ITEMS)
    #: marketplace every item belongs to
    tenant: str = constrained(default="default", max_len=MAX_TENANT_CHARS, min_value=1)

    def __post_init__(self):
        """A batch with nothing to do is a caller bug, not an empty 200."""
        if not self.items:
            raise SchemaError(INVALID_VALUE, "items must not be empty", "items")


# -- response models ---------------------------------------------------------
@dataclass(frozen=True)
class RewriteResponse(WireModel):
    """Wire form of one served rewrite request."""

    query: str
    rewrites: list[str]
    #: which tier answered: "cache" | "model" | "none"
    source: str
    #: wall-clock serving latency (cache lookup + amortized decode)
    latency_ms: float


@dataclass(frozen=True)
class SearchResponse(WireModel):
    """Wire form of one served end-to-end (rewrite + retrieve) request."""

    query: str
    rewrites: list[str]
    #: which rewrite tier answered: "cache" | "model" | "none"
    source: str
    #: retrieval mode that actually served the request
    mode: str
    #: ranked result document ids
    doc_ids: list[int]
    #: postings touched by the retrieval (the paper's CPU-cost proxy)
    postings_accessed: int
    #: wall-clock end-to-end latency
    latency_ms: float


@dataclass(frozen=True)
class BatchResponse(WireModel):
    """Wire form of a served batch: tagged per-item results, in order."""

    #: per-item wire dicts, each tagged with its ``kind``
    results: list[dict]

    @classmethod
    def from_outcomes(cls, items, outcomes) -> "BatchResponse":
        """Assemble from parallel lists of :class:`BatchItem` and wire dicts."""
        results = []
        for item, outcome in zip(items, outcomes):
            tagged = {"kind": item.kind}
            tagged.update(outcome)
            results.append(tagged)
        return cls(results=results)


@dataclass(frozen=True)
class HealthResponse(WireModel):
    """Wire form of ``GET /v1/health``."""

    #: "ok" while admitting, "draining" after /v1/drain
    status: str
    draining: bool
    #: wall-clock seconds since the gateway started serving
    uptime_seconds: float
    #: pending requests across every tenant's scheduler
    queue_depth: int
    #: HTTP requests currently being handled
    in_flight: int
    #: tenants this gateway serves, sorted
    tenants: list[str]


@dataclass(frozen=True)
class StatsResponse(WireModel):
    """Wire form of ``GET /v1/stats``: serving + scheduler + HTTP telemetry."""

    #: tenant -> deterministic ServingStats.counters() projection
    serving: dict
    #: additive counters summed over tenants (sum_counters)
    totals: dict
    #: tenant -> scheduler accounting (admitted/shed/completed/batches/...)
    scheduler: dict
    #: the gateway's own HTTP-layer counters
    gateway: dict


@dataclass(frozen=True)
class DrainResponse(WireModel):
    """Wire form of ``POST /v1/drain`` — the conservation receipt.

    Sent only after every in-flight request completed; ``admitted ==
    completed + shed`` is the zero-loss invariant the soak suite pins.
    """

    draining: bool
    #: requests admitted into the schedulers over the gateway's lifetime
    admitted: int
    #: requests completed (served a 200)
    completed: int
    #: admitted requests shed by admission control (each got a 429)
    shed: int
    #: wall-clock seconds the drain spent flushing in-flight work
    drain_seconds: float


@dataclass(frozen=True)
class ErrorEnvelope(WireModel):
    """The typed error wrapper every non-2xx response carries."""

    #: stable machine-readable code (one of the module constants)
    code: str
    #: human-readable explanation
    message: str
    #: offending field, when the error is a validation failure
    field: str | None = None
    #: seconds after which a 429 caller may retry
    retry_after_seconds: float | None = None

    def to_wire(self) -> dict:
        """``{"error": {...}}`` with null optionals omitted."""
        inner = {"code": self.code, "message": self.message}
        if self.field is not None:
            inner["field"] = self.field
        if self.retry_after_seconds is not None:
            inner["retry_after_seconds"] = self.retry_after_seconds
        return {"error": inner}

    @classmethod
    def parse(cls, data):
        """Validate the ``{"error": {...}}`` wire shape back to a model."""
        if not isinstance(data, dict) or set(data) != {"error"}:
            raise SchemaError(
                INVALID_TYPE, "error envelope must be {'error': {...}}"
            )
        return super(ErrorEnvelope, cls).parse(data["error"])

    @property
    def status(self) -> int:
        """The HTTP status this envelope travels with."""
        return STATUS_BY_CODE.get(self.code, 400)
