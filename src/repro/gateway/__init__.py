"""The service front door: an async HTTP/1.1 JSON gateway over the stack.

Everything below this package already worked in-process: the serving
pipeline (``repro.core``), the micro-batch scheduler and clock protocol
(``repro.online``), the sharded index (``repro.search`` /
``repro.cluster``).  This package puts a real network edge on it — pure
stdlib ``asyncio``, no new dependencies:

* :mod:`repro.gateway.schemas` — typed dataclass wire models with
  field-level validation and stable error codes (malformed input is
  always a 4xx envelope, never a 500);
* :mod:`repro.gateway.http` — minimal HTTP/1.1 framing over asyncio
  streams;
* :mod:`repro.gateway.ratelimit` — per-tenant token buckets (429 +
  ``Retry-After`` on shed);
* :mod:`repro.gateway.bridge` — futures over the scheduler's
  ``on_batch``/``on_shed`` callbacks, pumped by the latched
  :class:`~repro.online.clock.WallClock`;
* :mod:`repro.gateway.app` — the :class:`Gateway` itself: routes,
  admission, graceful drain, ``/v1/stats`` telemetry;
* :mod:`repro.gateway.soak` — the socket-path soak harness proving the
  gateway's counters byte-match an in-process virtual-clock replay.

See ``docs/GATEWAY.md`` for the API reference and design notes.
"""

from repro.gateway.app import Gateway, GatewayConfig, GatewayStats
from repro.gateway.bridge import RequestShed, SchedulerBridge
from repro.gateway.ratelimit import RateLimitConfig, RateLimiter, TokenBucket
from repro.gateway.schemas import (
    BatchItem,
    BatchRequest,
    BatchResponse,
    DrainResponse,
    ErrorEnvelope,
    HealthResponse,
    RewriteRequest,
    RewriteResponse,
    SchemaError,
    SearchRequest,
    SearchResponse,
    StatsResponse,
)
from repro.gateway.soak import (
    MiniClient,
    SoakConfig,
    SoakItem,
    SoakOutcome,
    build_workload,
    run_soak,
)

__all__ = [
    "Gateway",
    "GatewayConfig",
    "GatewayStats",
    "SchedulerBridge",
    "RequestShed",
    "RateLimiter",
    "RateLimitConfig",
    "TokenBucket",
    "SchemaError",
    "ErrorEnvelope",
    "RewriteRequest",
    "SearchRequest",
    "BatchRequest",
    "BatchItem",
    "RewriteResponse",
    "SearchResponse",
    "BatchResponse",
    "HealthResponse",
    "StatsResponse",
    "DrainResponse",
    "SoakConfig",
    "SoakItem",
    "SoakOutcome",
    "MiniClient",
    "build_workload",
    "run_soak",
]
