"""Per-tenant token-bucket rate limiting for gateway admission.

Each tenant owns an independent :class:`TokenBucket`; a request costs
one token.  Buckets refill continuously at ``rate_per_second`` up to
``burst`` tokens, so short bursts ride through and sustained overload is
shaped to the configured rate.  When a bucket is empty the limiter
returns the exact number of seconds until the next token — the
``Retry-After`` value of the resulting 429 — and, critically, only the
offending tenant is limited: the buckets share nothing, which is the
isolation property ``tests/test_gateway_lifecycle.py`` pins.

Time comes from the gateway's shared clock (the latched
:class:`~repro.online.clock.WallClock`), so the limiter is deterministic
under a virtual clock in tests.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RateLimitConfig:
    """Shaping knobs applied to every tenant's bucket."""

    #: sustained admission rate per tenant (tokens per second)
    rate_per_second: float = 200.0
    #: bucket capacity: how far a tenant may burst above the rate
    burst: int = 50

    def __post_init__(self):
        """Both knobs must be positive for the bucket math to make sense."""
        if self.rate_per_second <= 0:
            raise ValueError("rate_per_second must be > 0")
        if self.burst < 1:
            raise ValueError("burst must be >= 1")


class TokenBucket:
    """One tenant's bucket: continuous refill, one token per request."""

    __slots__ = ("rate", "capacity", "_tokens", "_updated_at")

    def __init__(self, rate: float, capacity: int, now: float):
        """Starts full — a fresh tenant gets its whole burst allowance."""
        self.rate = float(rate)
        self.capacity = float(capacity)
        self._tokens = float(capacity)
        self._updated_at = now

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._updated_at)
        self._tokens = min(self.capacity, self._tokens + elapsed * self.rate)
        self._updated_at = now

    def try_acquire(self, now: float) -> float:
        """Spend one token; 0.0 on success, else seconds until retry.

        The returned delay is exact for a lone caller: after waiting that
        long the bucket holds at least one token again.
        """
        self._refill(now)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return 0.0
        return (1.0 - self._tokens) / self.rate

    @property
    def tokens(self) -> float:
        """Tokens in the bucket as of the last acquire/refill."""
        return self._tokens


class RateLimiter:
    """Per-tenant bucket map in front of scheduler admission."""

    def __init__(self, config: RateLimitConfig, clock):
        """``clock`` is any object with ``now() -> float`` (the shared
        gateway clock); buckets are created lazily per tenant."""
        self.config = config
        self.clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        #: 429s handed out, per tenant (telemetry for /v1/stats)
        self.limited: dict[str, int] = {}

    def check(self, tenant: str) -> float:
        """Admit one request for ``tenant``: 0.0, or a Retry-After delay."""
        now = self.clock.now()
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(
                self.config.rate_per_second, self.config.burst, now
            )
            self._buckets[tenant] = bucket
        retry_after = bucket.try_acquire(now)
        if retry_after > 0.0:
            self.limited[tenant] = self.limited.get(tenant, 0) + 1
        return retry_after
