"""Convergence metrics of the paper's Figure 7.

Three metric families, each computed for the q2t model, the t2q model and
the composed q2q ("translate back") pipeline:

* **perplexity** — exp of the mean token cross entropy;
* **log probability** — for q2t/t2q, the mean sequence log likelihood; for
  q2q, the log of the translate-back probability marginalized over a fixed
  number of sampled intermediate titles;
* **accuracy** — fraction of positions whose argmax prediction equals the
  reference token (for q2q: the original query's token).
"""

from __future__ import annotations

import numpy as np

from repro.autograd import no_grad
from repro.data.dataset import BatchIterator, ParallelCorpus, pad_batch
from repro.decoding.logspace import logsumexp_np
from repro.models.base import Seq2SeqModel
from repro.text import Vocabulary
from repro.training.history import History
from repro.training.seq_score import batched_top_n_sampling


def teacher_forced_metrics(
    model: Seq2SeqModel,
    corpus: ParallelCorpus,
    max_batches: int = 8,
    batch_size: int = 32,
) -> dict[str, float]:
    """Perplexity / accuracy / mean sequence log-prob on a held-out corpus."""
    iterator = BatchIterator(corpus, batch_size, shuffle=False)
    total_nll = 0.0
    total_tokens = 0
    total_correct = 0
    total_sequences = 0
    total_seq_logprob = 0.0
    model.eval()
    for i, batch in enumerate(iterator):
        if i >= max_batches:
            break
        with no_grad():
            logits = model.forward(batch.source, batch.target_in)
        log_probs = logits.log_softmax(axis=-1).data
        labels = batch.target_out
        mask = labels != model.pad_id
        batch_n, seq_len = labels.shape
        picked = log_probs[
            np.arange(batch_n)[:, None], np.arange(seq_len)[None, :], labels
        ]
        total_nll += float(-(picked * mask).sum())
        total_tokens += int(mask.sum())
        predictions = log_probs.argmax(axis=-1)
        total_correct += int(((predictions == labels) & mask).sum())
        total_seq_logprob += float((picked * mask).sum(axis=1).sum())
        total_sequences += batch_n
    if total_tokens == 0:
        raise ValueError("evaluation corpus produced no tokens")
    mean_nll = total_nll / total_tokens
    return {
        "perplexity": float(np.exp(min(mean_nll, 30.0))),
        "accuracy": total_correct / total_tokens,
        "log_prob": total_seq_logprob / total_sequences,
    }


def translate_back_metrics(
    forward_model: Seq2SeqModel,
    backward_model: Seq2SeqModel,
    queries: list[list[int]],
    vocab: Vocabulary,
    k: int = 3,
    top_n: int = 10,
    max_title_len: int = 24,
    rng: np.random.Generator | None = None,
) -> dict[str, float]:
    """The q2q panel of Figure 7: how well does the pipeline translate back?

    For each query x, k intermediate titles are sampled from the forward
    model; the translate-back log probability is
    ``log Σ_i P(y_i|x) P(x|y_i)`` and the accuracy is the title-weighted
    token accuracy of the backward model predicting x.
    """
    if not queries:
        raise ValueError("translate_back_metrics needs at least one query")
    rng = rng or np.random.default_rng(0)
    pad = vocab.pad_id
    forward_model.eval()
    backward_model.eval()

    q_src = pad_batch([q for q in queries], pad)
    titles = batched_top_n_sampling(
        forward_model, q_src, k=k, n=top_n, max_len=max_title_len, rng=rng
    )

    batch = len(queries)
    rep = np.repeat(np.arange(batch), k)
    y_tgt_rows, y_src_rows = [], []
    for per_query in titles:
        for seq in per_query:
            y_tgt_rows.append([vocab.sos_id] + seq + [vocab.eos_id])
            y_src_rows.append(seq + [vocab.eos_id])
    q_tgt_rows = [[vocab.sos_id] + queries[i] for i in rep]  # queries end in EOS
    rep_q_src = pad_batch([queries[i] for i in rep], pad)
    y_tgt = pad_batch(y_tgt_rows, pad)
    y_src = pad_batch(y_src_rows, pad)
    q_tgt = pad_batch(q_tgt_rows, pad)

    lp_forward = forward_model.sequence_log_prob(rep_q_src, y_tgt)  # (batch*k,)
    lp_backward = backward_model.sequence_log_prob(y_src, q_tgt)

    # Token accuracy of the backward model reconstructing each query,
    # weighted by the (normalized) forward title probabilities.
    with no_grad():
        logits = backward_model.forward(y_src, q_tgt[:, :-1])
    predictions = logits.data.argmax(axis=-1)
    labels = q_tgt[:, 1:]
    mask = labels != pad
    per_row_accuracy = ((predictions == labels) & mask).sum(axis=1) / np.maximum(
        mask.sum(axis=1), 1
    )

    combined = (lp_forward + lp_backward).reshape(batch, k)
    translate_back_logprob = logsumexp_np(combined, axis=1)  # (batch,)
    weights = np.exp(lp_forward.reshape(batch, k) - logsumexp_np(
        lp_forward.reshape(batch, k), axis=1
    )[:, None])
    weighted_accuracy = (weights * per_row_accuracy.reshape(batch, k)).sum(axis=1)

    query_lengths = np.array([len(q) for q in queries])
    perplexity = np.exp(np.minimum(-translate_back_logprob / query_lengths, 30.0))
    return {
        "log_prob": float(translate_back_logprob.mean()),
        "accuracy": float(weighted_accuracy.mean()),
        "perplexity": float(perplexity.mean()),
    }


class ConvergenceTracker:
    """Evaluates q2t / t2q / q2q metrics during training (Figure 7 curves).

    Attach its :meth:`evaluate` as the trainer callback; all series land in
    :attr:`history` with ``q2t_``/``t2q_``/``q2q_`` prefixes.
    """

    def __init__(
        self,
        forward_model: Seq2SeqModel,
        backward_model: Seq2SeqModel,
        forward_eval: ParallelCorpus,
        backward_eval: ParallelCorpus,
        eval_queries: list[list[int]],
        vocab: Vocabulary,
        k: int = 3,
        top_n: int = 10,
        seed: int = 0,
    ):
        self.forward_model = forward_model
        self.backward_model = backward_model
        self.forward_eval = forward_eval
        self.backward_eval = backward_eval
        self.eval_queries = eval_queries
        self.vocab = vocab
        self.k = k
        self.top_n = top_n
        self.history = History()
        self._rng = np.random.default_rng(seed)

    def evaluate(self, step: int) -> dict[str, float]:
        q2t = teacher_forced_metrics(self.forward_model, self.forward_eval)
        t2q = teacher_forced_metrics(self.backward_model, self.backward_eval)
        q2q = translate_back_metrics(
            self.forward_model,
            self.backward_model,
            self.eval_queries,
            self.vocab,
            k=self.k,
            top_n=self.top_n,
            rng=self._rng,
        )
        metrics = {f"q2t_{k}": v for k, v in q2t.items()}
        metrics.update({f"t2q_{k}": v for k, v in t2q.items()})
        metrics.update({f"q2q_{k}": v for k, v in q2q.items()})
        self.history.record(step, **metrics)
        return metrics
