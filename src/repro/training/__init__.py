"""Training algorithms.

* :class:`SeparateTrainer` — independent maximum-likelihood training of the
  forward (query-to-title) and backward (title-to-query) models (Eq. 1-2).
* :class:`CyclicTrainer` — the paper's Algorithm 1: warmup with separate
  losses, then joint training with the cyclic-consistency likelihood
  (Eq. 3) approximated over top-k sampled titles (Eq. 5).
* :mod:`repro.training.evaluation` — the convergence metrics of Figure 7:
  perplexity, token accuracy, and translate-back log probability.
"""

from repro.training.history import History
from repro.training.seq_score import sequence_log_prob_tensor, batched_top_n_sampling
from repro.training.separate import SeparateTrainer, TrainingConfig
from repro.training.cyclic import CyclicTrainer, CyclicConfig
from repro.training.evaluation import (
    teacher_forced_metrics,
    translate_back_metrics,
    ConvergenceTracker,
)

__all__ = [
    "History",
    "sequence_log_prob_tensor",
    "batched_top_n_sampling",
    "SeparateTrainer",
    "TrainingConfig",
    "CyclicTrainer",
    "CyclicConfig",
    "teacher_forced_metrics",
    "translate_back_metrics",
    "ConvergenceTracker",
]
