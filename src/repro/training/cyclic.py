"""Cyclic-consistent joint training — the paper's Algorithm 1.

The likelihood is ``L = L_f + L_b + λ L_c`` where the cyclic term

    L_c = Σ_n log Σ_{y∈~Y} P(y | x_n; θ_f) · P(x_n | y; θ_b)

encourages the forward/backward pair to "translate back" the original
query.  The intractable sum over all titles is approximated by the top-k
set ~Y sampled from the forward model with the top-n decoder (Eq. 5), and
the cyclic term is switched on only after ``G`` warmup steps, when both
models are good enough for the sampled set to be meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.autograd import logsumexp
from repro.data.dataset import pad_batch
from repro.models.base import Seq2SeqModel
from repro.optim import Adam, NoamSchedule, clip_grad_norm
from repro.text import Vocabulary
from repro.training.history import History
from repro.training.seq_score import batched_top_n_sampling, sequence_log_prob_tensor


@dataclass
class CyclicConfig:
    """Algorithm 1 hyperparameters (paper defaults in comments)."""

    batch_size: int = 8  # B
    max_steps: int = 300  # T
    beam_width: int = 3  # k = 3 in the paper
    top_n: int = 10  # n = 40 in the paper (scaled to our vocab)
    warmup_steps: int = 150  # G = 40,000 in the paper
    lambda_cyclic: float = 0.1  # λ = 0.1
    max_title_len: int = 24
    learning_rate_factor: float = 1.0
    warmup_lr_steps: int = 40
    grad_clip: float = 5.0
    log_every: int = 25
    seed: int = 0


class CyclicTrainer:
    """Joint trainer for the forward (q2t) and backward (t2q) models.

    Parameters
    ----------
    forward_model, backward_model:
        Any :class:`Seq2SeqModel` pair sharing one vocabulary.
    pairs:
        (query_tokens, title_tokens, weight) triples — the click log.
    vocab:
        Shared vocabulary.
    """

    def __init__(
        self,
        forward_model: Seq2SeqModel,
        backward_model: Seq2SeqModel,
        pairs: list[tuple[tuple[str, ...], tuple[str, ...], int]],
        vocab: Vocabulary,
        config: CyclicConfig | None = None,
    ):
        if not pairs:
            raise ValueError("CyclicTrainer needs a non-empty pair list")
        self.forward_model = forward_model
        self.backward_model = backward_model
        self.vocab = vocab
        self.config = config or CyclicConfig()
        self.history = History()
        self._rng = np.random.default_rng(self.config.seed)
        self.step_count = 0

        # Pre-encode both directions once.
        self._q_src = [vocab.encode(list(q), add_eos=True) for q, _, _ in pairs]
        self._q_tgt = [vocab.encode(list(q), add_sos=True, add_eos=True) for q, _, _ in pairs]
        self._t_src = [vocab.encode(list(t), add_eos=True) for _, t, _ in pairs]
        self._t_tgt = [vocab.encode(list(t), add_sos=True, add_eos=True) for _, t, _ in pairs]

        self.fwd_optimizer = Adam(forward_model.parameters())
        self.bwd_optimizer = Adam(backward_model.parameters())
        d_model = getattr(forward_model.config, "d_model", 64)
        self.schedule = NoamSchedule(
            d_model=d_model,
            warmup_steps=self.config.warmup_lr_steps,
            factor=self.config.learning_rate_factor,
        )

    # -- the Algorithm 1 loop ------------------------------------------------
    @property
    def in_warmup(self) -> bool:
        return self.step_count < self.config.warmup_steps

    def train_step(self) -> dict[str, float]:
        """One step of Algorithm 1; returns the component losses."""
        cfg = self.config
        pad = self.vocab.pad_id
        idx = self._rng.choice(
            len(self._q_src), size=min(cfg.batch_size, len(self._q_src)), replace=False
        )

        q_src = pad_batch([self._q_src[i] for i in idx], pad)
        q_tgt = pad_batch([self._q_tgt[i] for i in idx], pad)
        t_src = pad_batch([self._t_src[i] for i in idx], pad)
        t_tgt = pad_batch([self._t_tgt[i] for i in idx], pad)

        self.forward_model.train()
        self.backward_model.train()
        self.forward_model.zero_grad()
        self.backward_model.zero_grad()

        loss_f, _ = self.forward_model.loss(q_src, t_tgt[:, :-1], t_tgt[:, 1:])
        loss_b, _ = self.backward_model.loss(t_src, q_tgt[:, :-1], q_tgt[:, 1:])
        total = loss_f + loss_b
        metrics = {"loss_forward": float(loss_f.item()), "loss_backward": float(loss_b.item())}

        use_cyclic = self.step_count >= cfg.warmup_steps
        if use_cyclic:
            loss_c = self._cyclic_loss(q_src, q_tgt)
            total = total + cfg.lambda_cyclic * loss_c
            metrics["loss_cyclic"] = float(loss_c.item())

        total.backward()
        clip_grad_norm(self.forward_model.parameters(), cfg.grad_clip)
        clip_grad_norm(self.backward_model.parameters(), cfg.grad_clip)
        self.step_count += 1
        rate = self.schedule.rate(self.step_count)
        self.fwd_optimizer.lr = rate
        self.bwd_optimizer.lr = rate
        self.fwd_optimizer.step()
        self.bwd_optimizer.step()
        metrics["loss_total"] = float(total.item())
        return metrics

    def _cyclic_loss(self, q_src: np.ndarray, q_tgt: np.ndarray):
        """-mean_n log Σ_i P(y_i|x_n; θ_f) P(x_n|y_i; θ_b) over sampled ~Y.

        Both factors are teacher-forced scores of the *sampled* titles, so
        gradients flow into θ_f and θ_b exactly as in Eq. 5 (the sampling
        itself is treated as fixing the subset ~Y, not differentiated).
        """
        cfg = self.config
        pad = self.vocab.pad_id
        batch = q_src.shape[0]

        # Step 9 of Algorithm 1: sample k synthetic titles per query.
        self.forward_model.eval()
        titles = batched_top_n_sampling(
            self.forward_model, q_src, k=cfg.beam_width, n=cfg.top_n,
            max_len=cfg.max_title_len, rng=self._rng,
        )
        self.forward_model.train()

        # Flatten to (batch * k) rows.
        y_tgt_rows, y_src_rows = [], []
        for per_query in titles:
            for seq in per_query:
                y_tgt_rows.append([self.vocab.sos_id] + seq + [self.vocab.eos_id])
                y_src_rows.append(seq + [self.vocab.eos_id])
        k = cfg.beam_width
        rep = np.repeat(np.arange(batch), k)
        rep_q_src = pad_batch([q_src[i][q_src[i] != pad].tolist() for i in rep], pad)
        rep_q_tgt = pad_batch([q_tgt[i][q_tgt[i] != pad].tolist() for i in rep], pad)
        y_tgt = pad_batch(y_tgt_rows, pad)
        y_src = pad_batch(y_src_rows, pad)

        lp_forward = sequence_log_prob_tensor(self.forward_model, rep_q_src, y_tgt)
        lp_backward = sequence_log_prob_tensor(self.backward_model, y_src, rep_q_tgt)
        combined = (lp_forward + lp_backward).reshape(batch, k)
        translate_back = logsumexp(combined, axis=1)  # (batch,)
        return -translate_back.mean()

    def train(self, steps: int | None = None, callback=None) -> History:
        """Run Algorithm 1 for ``steps`` (default config.max_steps)."""
        steps = steps if steps is not None else self.config.max_steps
        for _ in range(steps):
            metrics = self.train_step()
            if self.step_count % self.config.log_every == 0 or self.step_count == 1:
                self.history.record(self.step_count, **metrics)
                if callback is not None:
                    callback(self.step_count)
        return self.history
