"""Independent maximum-likelihood training (paper Eq. 1 and Eq. 2).

The forward and backward objectives are independent, so the two models can
be trained separately without loss of accuracy — this is the paper's
baseline regime ("Separate" rows in Tables VI/VII, dashed curves in
Figure 7).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import BatchIterator, ParallelCorpus
from repro.models.base import Seq2SeqModel
from repro.optim import Adam, NoamSchedule, clip_grad_norm
from repro.training.history import History


@dataclass
class TrainingConfig:
    """Shared knobs for the maximum-likelihood loop."""

    batch_size: int = 16
    max_steps: int = 300
    learning_rate_factor: float = 1.0  # Noam multiplier
    warmup_lr_steps: int = 40  # Noam schedule warmup
    grad_clip: float = 5.0
    label_smoothing: float = 0.0
    log_every: int = 25
    seed: int = 0


class SeparateTrainer:
    """Trains one seq2seq model on one parallel corpus."""

    def __init__(
        self,
        model: Seq2SeqModel,
        corpus: ParallelCorpus,
        config: TrainingConfig | None = None,
    ):
        self.model = model
        self.corpus = corpus
        self.config = config or TrainingConfig()
        self.history = History()
        self._rng = np.random.default_rng(self.config.seed)
        self.optimizer = Adam(model.parameters())
        self.schedule = NoamSchedule(
            d_model=getattr(model.config, "d_model", 64),
            warmup_steps=self.config.warmup_lr_steps,
            factor=self.config.learning_rate_factor,
        )
        self._iterator = BatchIterator(corpus, self.config.batch_size, rng=self._rng)
        self.step_count = 0

    def train_step(self) -> float:
        """One optimization step; returns the batch loss."""
        batch = self._iterator.sample_batch()
        self.model.train()
        self.model.zero_grad()
        loss, _ = self.model.loss(
            batch.source, batch.target_in, batch.target_out,
            label_smoothing=self.config.label_smoothing,
        )
        loss.backward()
        clip_grad_norm(self.model.parameters(), self.config.grad_clip)
        self.step_count += 1
        self.optimizer.lr = self.schedule.rate(self.step_count)
        self.optimizer.step()
        return float(loss.item())

    def train(self, steps: int | None = None, callback=None) -> History:
        """Run the loop for ``steps`` (default: config.max_steps)."""
        steps = steps if steps is not None else self.config.max_steps
        for _ in range(steps):
            loss = self.train_step()
            if self.step_count % self.config.log_every == 0 or self.step_count == 1:
                self.history.record(
                    self.step_count, loss=loss, perplexity=float(np.exp(min(loss, 30.0)))
                )
                if callback is not None:
                    callback(self.step_count)
        return self.history
