"""Training-curve recording."""

from __future__ import annotations

from collections import defaultdict


class History:
    """Append-only metric series keyed by name.

    Each record is a (step, value) pair; :meth:`series` returns parallel
    step/value lists for plotting or table rendering (paper Figures 7-9).
    """

    def __init__(self):
        self._data: dict[str, list[tuple[int, float]]] = defaultdict(list)

    def record(self, step: int, **metrics: float) -> None:
        for name, value in metrics.items():
            self._data[name].append((step, float(value)))

    def series(self, name: str) -> tuple[list[int], list[float]]:
        points = self._data.get(name, [])
        return [s for s, _ in points], [v for _, v in points]

    def last(self, name: str) -> float:
        points = self._data.get(name)
        if not points:
            raise KeyError(f"no metric named {name!r} recorded")
        return points[-1][1]

    def names(self) -> list[str]:
        return sorted(self._data)

    def __contains__(self, name: str) -> bool:
        return name in self._data

    def merge(self, other: "History", prefix: str = "") -> None:
        """Copy all series from ``other``, optionally prefixing names."""
        for name, points in other._data.items():
            self._data[f"{prefix}{name}"].extend(points)
