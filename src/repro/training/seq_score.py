"""Differentiable sequence scoring and batched sampling for Algorithm 1.

The cyclic-consistency gradient (paper Eq. 5) needs, for every query x and
every sampled title y_i, the *differentiable* log probabilities
``log P(y_i | x; θ_f)`` and ``log P(x | y_i; θ_b)``.  The helpers here
produce those as autograd tensors, plus a batched version of the top-n
sampling decoder so synthetic-title generation inside the training loop is
one decode pass instead of one per query.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor
from repro.decoding.logspace import log_softmax_np
from repro.models.base import Seq2SeqModel


def sequence_log_prob_tensor(
    model: Seq2SeqModel, src: np.ndarray, tgt: np.ndarray
) -> Tensor:
    """Per-row log P(tgt | src) as an autograd tensor of shape (batch,).

    ``tgt`` includes SOS and EOS; PAD positions contribute zero.  Unlike
    :meth:`Seq2SeqModel.sequence_log_prob`, gradients flow into the model.
    """
    src = np.asarray(src)
    tgt = np.asarray(tgt)
    logits = model.forward(src, tgt[:, :-1])
    labels = tgt[:, 1:]
    batch, seq_len = labels.shape
    log_probs = logits.log_softmax(axis=-1)
    picked = log_probs[
        np.arange(batch)[:, None], np.arange(seq_len)[None, :], labels
    ]
    mask = labels == model.pad_id
    return picked.masked_fill(mask, 0.0).sum(axis=1)


def batched_top_n_sampling(
    model: Seq2SeqModel,
    src: np.ndarray,
    k: int,
    n: int,
    max_len: int,
    rng: np.random.Generator,
) -> list[list[list[int]]]:
    """Top-n sampling (Figure 4) for a whole batch of sources at once.

    Returns, for each of the ``batch`` sources, a list of ``k`` token-id
    sequences (without SOS/EOS).  Used in the cyclic training loop to build
    the synthetic title set ~Y for every query of the batch in a single
    decode pass of width ``batch * k``.
    """
    src = np.asarray(src)
    batch = src.shape[0]
    blocked = (model.pad_id, model.sos_id)

    state = model.start(src)
    last = np.full(batch, model.sos_id, dtype=np.int64)
    logits, state = model.step(state, last)
    log_probs = log_softmax_np(logits)  # (batch, vocab)

    # First step: k most likely unique non-special tokens per source.
    first_tokens = np.zeros((batch, k), dtype=np.int64)
    for b in range(batch):
        order = np.argsort(-log_probs[b])
        chosen = [
            int(t) for t in order if int(t) not in blocked and int(t) != model.eos_id
        ][:k]
        while len(chosen) < k:  # tiny vocabs: repeat the best token
            chosen.append(chosen[0] if chosen else model.eos_id)
        first_tokens[b] = chosen

    # Expand to batch*k rows: row b*k+j decodes candidate j of source b.
    expand = np.repeat(np.arange(batch), k)
    state = state.reorder(expand, model)
    sequences: list[list[int]] = [[int(t)] for t in first_tokens.reshape(-1)]
    alive = np.ones(batch * k, dtype=bool)
    last = first_tokens.reshape(-1)

    for _ in range(max_len - 1):
        if not alive.any():
            break
        logits, state = model.step(state, last)
        step_log_probs = log_softmax_np(logits)
        next_tokens = last.copy()
        for i in range(batch * k):
            if not alive[i]:
                continue
            row = step_log_probs[i].copy()
            for blocked_id in blocked:
                row[blocked_id] = -np.inf
            pool = np.argsort(-row)[:n]
            pool_logp = row[pool]
            probs = np.exp(pool_logp - pool_logp.max())
            probs /= probs.sum()
            choice = int(pool[rng.choice(len(pool), p=probs)])
            if choice == model.eos_id:
                alive[i] = False
            else:
                sequences[i].append(choice)
                next_tokens[i] = choice
        last = next_tokens

    return [
        [sequences[b * k + j] for j in range(k)] for b in range(batch)
    ]
