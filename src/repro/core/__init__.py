"""The query rewriter — the paper's primary contribution.

* :class:`CyclicRewriter` — the two-hop inference pipeline of Figure 3:
  query → k synthetic titles → k² synthetic queries → merge & top-k by
  ``P(x'|x) = Σ_t P(y_t|x; θ_f) P(x'|y_t; θ_b)``.
* :class:`DirectRewriter` — the low-latency query-to-query model of
  Section III-G (one decode instead of two).
* :class:`RewriteCache` — the offline key-value store covering head
  queries (the paper precomputes the top 8M, ~80% of traffic).
* :class:`ServingPipeline` — cache-first serving with a model fallback and
  latency accounting.
"""

from repro.core.rewriter import CyclicRewriter, DirectRewriter, RewriteResult, RewriterConfig
from repro.core.cache import RewriteCache
from repro.core.serving import ServingPipeline, ServingConfig, ServedRewrite
from repro.core.lm_rewriter import LMRewriter, LMRewriterConfig, build_lm_sequences

__all__ = [
    "CyclicRewriter",
    "DirectRewriter",
    "RewriteResult",
    "RewriterConfig",
    "RewriteCache",
    "ServingPipeline",
    "ServingConfig",
    "ServedRewrite",
    "LMRewriter",
    "LMRewriterConfig",
    "build_lm_sequences",
]
