"""The query rewriter — the paper's primary contribution — plus its
production serving tier.

Exported symbols:

* :class:`CyclicRewriter` — the two-hop inference pipeline of Figure 3:
  query → k synthetic titles → k² synthetic queries → merge & top-k by
  ``P(x'|x) = Σ_t P(y_t|x; θ_f) P(x'|y_t; θ_b)``.  Offline use: populating
  the cache tier.
* :class:`DirectRewriter` — the low-latency query-to-query model of
  Section III-G (one decode instead of two); ``rewrite_batch`` decodes
  many queries in one stacked pass for the batched serving path.
* :class:`RewriteResult` — one rewritten query with its log probability
  and (for two-hop rewrites) the synthetic title it came through.
* :class:`RewriterConfig` — inference knobs shared by the rewriters
  (k, top-n pool size, length caps, seed).
* :class:`RewriteCache` / :class:`CacheStats` — the key-value tier
  covering head queries (the paper precomputes the top 8M, ~80% of
  traffic), modeled as a finite resource: capacity-bounded sharded LRU
  with optional TTL and per-shard eviction/occupancy counters.  Expired
  entries are collected (and counted) on every access path, and the
  freshness surface (``delete``/``purge_expired``/``stored_at``/
  ``expiring_within``) lets ``repro.online`` keep the tier fresh under
  catalog churn.
* :class:`ServingPipeline` — cache-first serving with a model fallback;
  ``serve`` handles one request, ``serve_batch`` partitions a batch into
  cache hits and one batched model-tier decode for the misses, and
  ``search_batch`` feeds the batch's rewrites straight into a retrieval
  engine (``repro.search``) for the end-to-end rewrite-then-retrieve
  path (:class:`ServedSearch`).
* :class:`ServingConfig` / :class:`ServingStats` / :class:`ServedRewrite`
  — serving knobs, tier counters + latency percentiles (p50/p95/p99,
  nearest-rank) + cache gauges, and the per-request outcome record.
* :class:`LMRewriter` / :class:`LMRewriterConfig` /
  :func:`build_lm_sequences` — the Section V decoder-only LM exploration
  over the special language ``query <sep1> title <sep2> query2``.
"""

from repro.core.rewriter import CyclicRewriter, DirectRewriter, RewriteResult, RewriterConfig
from repro.core.cache import CacheStats, RewriteCache
from repro.core.serving import (
    ServedRewrite,
    ServedSearch,
    ServingConfig,
    ServingPipeline,
    ServingStats,
    sum_counters,
)
from repro.core.lm_rewriter import LMRewriter, LMRewriterConfig, build_lm_sequences

__all__ = [
    "CyclicRewriter",
    "DirectRewriter",
    "RewriteResult",
    "RewriterConfig",
    "RewriteCache",
    "CacheStats",
    "ServingPipeline",
    "ServingConfig",
    "ServingStats",
    "ServedRewrite",
    "ServedSearch",
    "sum_counters",
    "LMRewriter",
    "LMRewriterConfig",
    "build_lm_sequences",
]
