"""LM-based query rewriting (paper Section V future-work exploration).

Fine-tunes a causal LM on the "special language"
``query <sep1> title <sep2> query2`` and rewrites by prompting
``query <sep1>`` and letting the model generate a synthetic title and then
the rewritten query in a single pass.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.rewriter import RewriteResult
from repro.data.dataset import pad_batch
from repro.models.config import ModelConfig
from repro.models.lm import SEP1, SEP2, DecoderOnlyLM
from repro.optim import Adam, NoamSchedule, clip_grad_norm
from repro.text import Vocabulary, tokenize


@dataclass
class LMRewriterConfig:
    k: int = 3
    top_n: int = 5
    max_title_tokens: int = 20
    max_query_tokens: int = 10
    batch_size: int = 16
    train_steps: int = 300
    warmup_lr_steps: int = 40
    grad_clip: float = 5.0
    seed: int = 0


def build_lm_sequences(
    pairs: list[tuple[tuple[str, ...], tuple[str, ...], int]],
    synonym_pairs: list[tuple[tuple[str, ...], tuple[str, ...], int]],
    vocab: Vocabulary,
) -> list[list[int]]:
    """Encode ``query <sep1> title <sep2> query2 <eos>`` training sequences.

    ``query2`` is a synonymous query (one sharing clicks with ``query``)
    when available, else the query itself — the self-pair still teaches the
    format and the translate-back behaviour.
    """
    sep1 = vocab.add_token(SEP1)
    sep2 = vocab.add_token(SEP2)
    synonyms: dict[tuple[str, ...], tuple[str, ...]] = {}
    for a, b, _ in synonym_pairs:
        synonyms.setdefault(a, b)

    sequences: list[list[int]] = []
    for query, title, _ in pairs:
        rewrite = synonyms.get(query, query)
        ids = (
            vocab.encode(list(query), add_eos=False)
            + [sep1]
            + vocab.encode(list(title), add_eos=False)
            + [sep2]
            + vocab.encode(list(rewrite), add_eos=True)
        )
        sequences.append(ids)
    return sequences


class LMRewriter:
    """Trainable single-model rewriter over the special language."""

    def __init__(
        self,
        vocab: Vocabulary,
        model_config: ModelConfig | None = None,
        config: LMRewriterConfig | None = None,
    ):
        self.vocab = vocab
        self.config = config or LMRewriterConfig()
        self.sep1 = vocab.add_token(SEP1)
        self.sep2 = vocab.add_token(SEP2)
        model_config = model_config or ModelConfig()
        # The vocab may have grown by the separator tokens.
        model_config = model_config.scaled(vocab_size=len(vocab), max_len=96)
        self.model = DecoderOnlyLM(model_config, pad_id=vocab.pad_id)
        self._rng = np.random.default_rng(self.config.seed)

    # -- training ----------------------------------------------------------
    def fit(self, sequences: list[list[int]]) -> list[float]:
        """Causal-LM training on the special-language corpus."""
        if not sequences:
            raise ValueError("LMRewriter.fit needs a non-empty corpus")
        cfg = self.config
        usable = [s[: self.model.config.max_len] for s in sequences]
        optimizer = Adam(self.model.parameters())
        schedule = NoamSchedule(
            self.model.config.d_model, warmup_steps=cfg.warmup_lr_steps
        )
        losses: list[float] = []
        for step in range(1, cfg.train_steps + 1):
            idx = self._rng.choice(
                len(usable), size=min(cfg.batch_size, len(usable)), replace=False
            )
            batch = pad_batch([usable[i] for i in idx], self.vocab.pad_id)
            self.model.train()
            self.model.zero_grad()
            loss, _ = self.model.loss(batch)
            loss.backward()
            clip_grad_norm(self.model.parameters(), cfg.grad_clip)
            optimizer.lr = schedule.rate(step)
            optimizer.step()
            losses.append(float(loss.item()))
        self.model.eval()
        return losses

    # -- inference -----------------------------------------------------------
    def rewrite(self, query: str | list[str], k: int | None = None) -> list[RewriteResult]:
        """Generate k candidates: prompt ``query <sep1>``, read out the
        generated title and rewritten query."""
        cfg = self.config
        k = k or cfg.k
        tokens = tokenize(query) if isinstance(query, str) else list(query)
        if not tokens:
            return []
        prefix = self.vocab.encode(tokens, add_eos=False) + [self.sep1]
        original = tuple(tokens)
        results: list[RewriteResult] = []
        seen: set[tuple[str, ...]] = {original}
        forbid = {self.vocab.sos_id, self.vocab.unk_id}
        for _ in range(k * 2):  # oversample; duplicates are dropped
            if len(results) >= k:
                break
            title_ids = self.model.generate(
                prefix, cfg.max_title_tokens,
                stop_ids={self.sep2, self.vocab.eos_id},
                rng=self._rng, top_n=cfg.top_n,
                forbid_ids=forbid | {self.sep1},
            )
            if not title_ids:
                continue
            query_ids = self.model.generate(
                prefix + title_ids + [self.sep2], cfg.max_query_tokens,
                stop_ids={self.vocab.eos_id},
                rng=self._rng, top_n=cfg.top_n,
                forbid_ids=forbid | {self.sep1, self.sep2},
            )
            rewrite_tokens = tuple(self.vocab.decode(query_ids))
            if not rewrite_tokens or rewrite_tokens in seen:
                continue
            seen.add(rewrite_tokens)
            results.append(
                RewriteResult(
                    tokens=rewrite_tokens,
                    log_prob=0.0,  # single-sample generation; no marginal score
                    via_title=tuple(self.vocab.decode(title_ids)),
                )
            )
        return results

    def rewrite_batch(
        self, queries: list[str | list[str]], k: int | None = None
    ) -> list[list[RewriteResult]]:
        """Rewrite many queries at once via batched LM generation.

        Each sampling round makes two batched ``generate_batch`` calls
        (titles, then rewritten queries) over every query still short of
        ``k`` results, instead of two forward passes per query per
        attempt.  Returns one result list per query, in input order.
        """
        cfg = self.config
        k = k or cfg.k
        token_lists = [
            tokenize(q) if isinstance(q, str) else list(q) for q in queries
        ]
        results: list[list[RewriteResult]] = [[] for _ in queries]
        seen: list[set[tuple[str, ...]]] = [
            {tuple(tokens)} for tokens in token_lists
        ]
        prefixes = [
            self.vocab.encode(tokens, add_eos=False) + [self.sep1] if tokens else []
            for tokens in token_lists
        ]
        forbid = {self.vocab.sos_id, self.vocab.unk_id}
        for _ in range(k * 2):  # oversample; duplicates are dropped
            pending = [
                i for i, tokens in enumerate(token_lists)
                if tokens and len(results[i]) < k
            ]
            if not pending:
                break
            titles = self.model.generate_batch(
                [prefixes[i] for i in pending], cfg.max_title_tokens,
                stop_ids={self.sep2, self.vocab.eos_id},
                rng=self._rng, top_n=cfg.top_n,
                forbid_ids=forbid | {self.sep1},
            )
            with_title = [(i, t) for i, t in zip(pending, titles) if t]
            if not with_title:
                continue
            rewrites = self.model.generate_batch(
                [prefixes[i] + title_ids + [self.sep2] for i, title_ids in with_title],
                cfg.max_query_tokens,
                stop_ids={self.vocab.eos_id},
                rng=self._rng, top_n=cfg.top_n,
                forbid_ids=forbid | {self.sep1, self.sep2},
            )
            for (i, title_ids), query_ids in zip(with_title, rewrites):
                rewrite_tokens = tuple(self.vocab.decode(query_ids))
                if not rewrite_tokens or rewrite_tokens in seen[i]:
                    continue
                seen[i].add(rewrite_tokens)
                results[i].append(
                    RewriteResult(
                        tokens=rewrite_tokens,
                        log_prob=0.0,  # single-sample generation; no marginal score
                        via_title=tuple(self.vocab.decode(title_ids)),
                    )
                )
        return results
