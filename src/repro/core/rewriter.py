"""Query rewriting inference (paper Section III-E, Figure 3).

Given a trained forward (query-to-title) and backward (title-to-query)
model, a query ``x`` is rewritten by:

1. top-n sampling ``k`` synthetic titles ``y_1..y_k`` from the forward
   model;
2. top-n sampling ``k`` synthetic queries from each title with the
   backward model (``k²`` candidates);
3. scoring every candidate ``x'`` with the marginal
   ``P(x'|x) = Σ_t P(y_t|x; θ_f) P(x'|y_t; θ_b)`` — computed entirely in
   log space — and returning the top ``k`` distinct candidates ``x' ≠ x``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.dataset import pad_batch
from repro.decoding import top_n_sampling, top_n_sampling_batch
from repro.decoding.logspace import logsumexp_np
from repro.models.base import Seq2SeqModel, pad_sources
from repro.text import Vocabulary, tokenize


@dataclass
class RewriterConfig:
    """Inference hyperparameters (paper defaults: k=3, n=40)."""

    k: int = 3
    top_n: int = 10
    max_title_len: int = 24
    max_query_len: int = 12
    #: drop candidates whose marginal log-probability is this far below the best
    score_window: float = 30.0
    seed: int = 0


@dataclass(frozen=True)
class RewriteResult:
    """One rewritten query with its provenance."""

    tokens: tuple[str, ...]
    log_prob: float
    #: the synthetic title that generated this candidate (highest-scoring path)
    via_title: tuple[str, ...] = ()

    @property
    def text(self) -> str:
        return " ".join(self.tokens)


@dataclass
class _Candidate:
    token_ids: list[int]
    best_title_index: int
    score: float = -np.inf


class CyclicRewriter:
    """The two-hop rewriting pipeline of Figure 3."""

    def __init__(
        self,
        forward_model: Seq2SeqModel,
        backward_model: Seq2SeqModel,
        vocab: Vocabulary,
        config: RewriterConfig | None = None,
    ):
        self.forward_model = forward_model
        self.backward_model = backward_model
        self.vocab = vocab
        self.config = config or RewriterConfig()
        self._rng = np.random.default_rng(self.config.seed)

    def rewrite(self, query: str | list[str], k: int | None = None) -> list[RewriteResult]:
        """Return up to ``k`` rewritten queries (best first), never the
        original query itself."""
        cfg = self.config
        k = k or cfg.k
        query_tokens = tokenize(query) if isinstance(query, str) else list(query)
        if not query_tokens:
            return []
        src = np.array([self.vocab.encode(query_tokens, add_eos=True)])

        self.forward_model.eval()
        self.backward_model.eval()

        # Hop 1: k synthetic titles.  UNK is never a useful output token.
        titles = top_n_sampling(
            self.forward_model, src, k=cfg.k, n=cfg.top_n,
            max_len=cfg.max_title_len, rng=self._rng,
            forbid_tokens=(self.vocab.unk_id,),
        )
        titles = [t for t in titles if t.tokens]
        if not titles:
            return []

        # Hop 2: k synthetic queries per title.
        candidates: dict[tuple[int, ...], _Candidate] = {}
        for title_index, title in enumerate(titles):
            title_src = np.array([list(title.tokens) + [self.vocab.eos_id]])
            synthetic = top_n_sampling(
                self.backward_model, title_src, k=cfg.k, n=cfg.top_n,
                max_len=cfg.max_query_len, rng=self._rng,
                forbid_tokens=(self.vocab.unk_id,),
            )
            for hyp in synthetic:
                if not hyp.tokens:
                    continue
                key = tuple(hyp.tokens)
                if key not in candidates:
                    candidates[key] = _Candidate(
                        token_ids=list(hyp.tokens), best_title_index=title_index
                    )

        original_ids = tuple(self.vocab.encode(query_tokens, add_eos=False))
        candidates.pop(original_ids, None)
        if not candidates:
            return []

        scored = self._score_candidates(src, titles, list(candidates.values()))
        scored.sort(key=lambda c: c.score, reverse=True)
        best = scored[0].score
        results = []
        for cand in scored[:k]:
            if cand.score < best - cfg.score_window:
                break
            results.append(
                RewriteResult(
                    tokens=tuple(self.vocab.decode(cand.token_ids)),
                    log_prob=cand.score,
                    via_title=tuple(self.vocab.decode(list(titles[cand.best_title_index].tokens))),
                )
            )
        return results

    # -- scoring (Section III-E merge step) ----------------------------------
    def _score_candidates(
        self,
        src: np.ndarray,
        titles: list,
        candidates: list[_Candidate],
    ) -> list[_Candidate]:
        """Score each candidate by log Σ_t P(y_t|x) P(x'|y_t).

        The backward scores are computed in one batched pass over the
        (title, candidate) cross product; everything stays in log space —
        the numerical-stability requirement Section III-E highlights.
        """
        pad = self.vocab.pad_id
        n_titles = len(titles)
        n_cands = len(candidates)

        # Forward scores log P(y_t | x), re-scored to align with teacher
        # forcing (the sampled hypothesis carries its own log-prob already,
        # but re-scoring keeps scores consistent across decoders).
        title_rows = [list(t.tokens) for t in titles]
        rep_src = np.repeat(src, n_titles, axis=0)
        y_tgt = pad_batch(
            [[self.vocab.sos_id] + row + [self.vocab.eos_id] for row in title_rows], pad
        )
        lp_forward = self.forward_model.sequence_log_prob(rep_src, y_tgt)  # (n_titles,)

        # Backward scores log P(x' | y_t) for every (t, candidate) pair.
        y_src_rows = [row + [self.vocab.eos_id] for row in title_rows]
        pair_src = pad_batch(
            [y_src_rows[t] for t in range(n_titles) for _ in range(n_cands)], pad
        )
        pair_tgt = pad_batch(
            [
                [self.vocab.sos_id] + c.token_ids + [self.vocab.eos_id]
                for _ in range(n_titles)
                for c in candidates
            ],
            pad,
        )
        lp_backward = self.backward_model.sequence_log_prob(pair_src, pair_tgt)
        lp_backward = lp_backward.reshape(n_titles, n_cands)

        combined = lp_forward[:, None] + lp_backward  # (n_titles, n_cands)
        scores = logsumexp_np(combined, axis=0)
        best_title = combined.argmax(axis=0)
        for j, cand in enumerate(candidates):
            cand.score = float(scores[j])
            cand.best_title_index = int(best_title[j])
        return candidates


class DirectRewriter:
    """Direct query-to-query rewriting (Section III-G serving model).

    One decode instead of two: a single translation model trained on
    synonymous query pairs (queries sharing clicks on the same items).
    Used online for long-tail queries where the two-hop pipeline is too
    slow.
    """

    def __init__(
        self,
        model: Seq2SeqModel,
        vocab: Vocabulary,
        config: RewriterConfig | None = None,
    ):
        self.model = model
        self.vocab = vocab
        self.config = config or RewriterConfig()
        self._rng = np.random.default_rng(self.config.seed)

    def rewrite(self, query: str | list[str], k: int | None = None) -> list[RewriteResult]:
        cfg = self.config
        k = k or cfg.k
        query_tokens = tokenize(query) if isinstance(query, str) else list(query)
        if not query_tokens:
            return []
        src = np.array([self.vocab.encode(query_tokens, add_eos=True)])
        self.model.eval()
        hyps = top_n_sampling(
            self.model, src, k=k, n=cfg.top_n, max_len=cfg.max_query_len,
            rng=self._rng, forbid_tokens=(self.vocab.unk_id,),
        )
        return self._results_from_hyps(hyps, query_tokens, k)

    def rewrite_batch(
        self, queries: list[str | list[str]], k: int | None = None
    ) -> list[list[RewriteResult]]:
        """Rewrite many queries in one batched decode (serving hot path).

        All queries' candidate sequences are stacked into a single flat
        decode batch, so a batch of B queries costs the same number of
        model forward passes as one query.  Returns one result list per
        query, in input order; empty queries get empty lists.
        """
        cfg = self.config
        k = k or cfg.k
        token_lists = [
            tokenize(q) if isinstance(q, str) else list(q) for q in queries
        ]
        results: list[list[RewriteResult]] = [[] for _ in queries]
        live = [i for i, tokens in enumerate(token_lists) if tokens]
        if not live:
            return results
        sources = [
            self.vocab.encode(token_lists[i], add_eos=True) for i in live
        ]
        self.model.eval()
        grouped = top_n_sampling_batch(
            self.model, pad_sources(sources, self.vocab.pad_id),
            k=k, n=cfg.top_n, max_len=cfg.max_query_len,
            rng=self._rng, forbid_tokens=(self.vocab.unk_id,),
        )
        for i, hyps in zip(live, grouped):
            results[i] = self._results_from_hyps(hyps, token_lists[i], k)
        return results

    def _results_from_hyps(
        self, hyps, query_tokens: list[str], k: int
    ) -> list[RewriteResult]:
        original = tuple(self.vocab.encode(query_tokens, add_eos=False))
        results = [
            RewriteResult(tokens=tuple(self.vocab.decode(list(h.tokens))), log_prob=h.log_prob)
            for h in sorted(hyps, key=lambda h: h.log_prob, reverse=True)
            if h.tokens and tuple(h.tokens) != original
        ]
        return results[:k]
