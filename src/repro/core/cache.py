"""Offline rewrite cache (paper Section III-G, first deployment step).

The paper precomputes rewrites for the top 8 million queries — covering
more than 80% of traffic — and serves them from a key-value store in under
5 ms.  This class reproduces that tier: populate it offline from any
rewriter, then look up by normalized query text at serving time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.text import normalize


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class RewriteCache:
    """Normalized-query -> precomputed rewrites store."""

    def __init__(self):
        self._store: dict[str, list[str]] = {}
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, query: str) -> bool:
        return normalize(query) in self._store

    def put(self, query: str, rewrites: list[str]) -> None:
        self._store[normalize(query)] = list(rewrites)

    def get(self, query: str) -> list[str] | None:
        """Rewrites for ``query`` or None on a miss (stats are updated)."""
        found = self._store.get(normalize(query))
        if found is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return list(found)

    def populate(self, rewriter, queries: list[str], k: int = 3, progress=None) -> int:
        """Precompute rewrites for head ``queries`` using any rewriter with
        a ``rewrite(query, k) -> list[RewriteResult]`` method.

        Returns the number of queries that produced at least one rewrite.
        """
        filled = 0
        for i, query in enumerate(queries):
            results = rewriter.rewrite(query, k=k)
            if results:
                self.put(query, [r.text for r in results])
                filled += 1
            if progress is not None:
                progress(i + 1, len(queries))
        return filled
