"""Offline rewrite cache (paper Section III-G, first deployment step).

The paper precomputes rewrites for the top 8 million queries — covering
more than 80% of traffic — and serves them from a key-value store in under
5 ms.  This module reproduces that tier as a *finite* resource, the way a
production key-value store is provisioned:

* **bounded capacity** — the store holds at most ``capacity`` entries and
  evicts in LRU order (a lookup refreshes recency), so the "top 8M
  queries" tier is a budget, not an ever-growing dict;
* **sharding** — entries are spread over ``shards`` independent LRU
  shards by a stable hash of the normalized query, mirroring the
  partitioned deployment and keeping per-shard occupancy/eviction
  counters observable;
* **optional TTL** — precomputed rewrites go stale as the catalog and
  click log drift; entries older than ``ttl_seconds`` are treated as
  misses, deleted (and counted as expirations) on *any* access path that
  discovers them — ``get``, ``__contains__``, or ``put``'s eviction scan —
  and can be swept eagerly with :meth:`RewriteCache.purge_expired`.
  Capacity pressure never evicts a live entry while an expired one is
  still occupying its slot.

The default construction (``RewriteCache()``) remains an unbounded
single-shard store with no TTL, matching the original seed behaviour.
"""

from __future__ import annotations

import threading
import time
import zlib
from collections import OrderedDict
from dataclasses import dataclass

from repro.text import normalize


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    expirations: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class _Shard:
    """One LRU partition: insertion/refresh order is recency order.

    ``lock`` serializes every access to the shard's entries — writers to
    *different* shards never contend, mirroring the sharded deployment."""

    __slots__ = ("capacity", "entries", "evictions", "earliest_expiry", "lock")

    def __init__(self, capacity: int | None):
        self.capacity = capacity
        #: key -> (rewrites, stored_at); oldest (least recently used) first
        self.entries: OrderedDict[str, tuple[list[str], float]] = OrderedDict()
        self.evictions = 0
        self.lock = threading.Lock()
        #: conservative lower bound on the earliest moment any entry in
        #: this shard can expire — lets expired-entry scans be skipped in
        #: O(1) while nothing can possibly be expired.  Individual
        #: deletions may leave it stale (too low), which only costs one
        #: harmless extra scan; a full purge recomputes it exactly.
        self.earliest_expiry = float("inf")


class RewriteCache:
    """Normalized-query -> precomputed rewrites store (bounded, sharded LRU).

    Parameters
    ----------
    capacity:
        Maximum total number of entries across all shards; ``None`` means
        unbounded.  The bound is split evenly over the shards, so the
        store can never hold more than ``capacity`` entries.
    shards:
        Number of independent LRU partitions (must divide the key space
        reasonably; any ``>= 1`` works).
    ttl_seconds:
        Entries older than this are expired lazily on access; ``None``
        disables expiry.
    clock:
        Monotonic time source, injectable for tests.

    Thread safety: every operation takes the owning shard's mutex (plus a
    separate counter mutex for the shared :class:`CacheStats`), so
    concurrent ``get``/``put``/``delete`` from any number of threads keep
    the LRU structures intact and the hit/miss/eviction/expiration/
    occupancy gauges exactly consistent — each get counts exactly one hit
    or miss, and every entry ever stored is accounted for by exactly one
    of: still live, evicted, expired, or deleted.  Operations on
    different shards never contend (single-writer-per-shard, like the
    partitioned deployment); the clock callable must itself be safe to
    call from multiple threads (``time.monotonic`` and
    :class:`~repro.online.clock.VirtualClock.now` both are).
    """

    def __init__(
        self,
        capacity: int | None = None,
        shards: int = 1,
        ttl_seconds: float | None = None,
        clock=time.monotonic,
    ):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if capacity is not None and capacity < shards:
            raise ValueError("capacity must be at least the shard count")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive")
        self._capacity = capacity
        self._ttl = ttl_seconds
        self._clock = clock
        #: namespace prefix prepended to every normalized key ("" for the
        #: root store; see :meth:`tenant_view`)
        self._prefix = ""
        base, extra = (0, 0) if capacity is None else divmod(capacity, shards)
        self._shards = [
            _Shard(None if capacity is None else base + (1 if i < extra else 0))
            for i in range(shards)
        ]
        self.stats = CacheStats()
        # CacheStats is shared across shards; its increments get their own
        # mutex so two shards' operations never race a counter update.
        self._stats_lock = threading.Lock()

    # -- multi-tenancy -------------------------------------------------------
    @property
    def namespace(self) -> str:
        """This view's tenant namespace ("" for the root store)."""
        return self._prefix[:-1] if self._prefix else ""

    def tenant_view(self, namespace: str) -> "RewriteCache":
        """A tenant-scoped view over this cache's *shared* physical store.

        The view shares the shards (capacity, TTL, clock, LRU order, and
        locks) with the root cache, but prefixes every key with
        ``namespace`` + NUL — a byte :func:`~repro.text.normalize` can
        never emit — so two tenants' entries for the *same* query text
        can never collide: one marketplace's precomputed rewrites are
        invisible to every other marketplace, which is the isolation
        invariant the multi-tenant replay scenarios pin.  Each view keeps
        its own :class:`CacheStats`, so per-tenant hit/miss accounting
        stays separable while capacity/eviction pressure remains a shared
        (physical) budget.  Views nest: a view's view prefixes further.

        Expirations/evictions discovered during a view's operations are
        counted on that view's stats — attribution follows whoever did
        the work, the same rule the root cache applies to itself.
        """
        if not namespace:
            raise ValueError("namespace must be non-empty")
        if "\x00" in namespace:
            raise ValueError("namespace must not contain NUL")
        view = RewriteCache.__new__(RewriteCache)
        view._capacity = self._capacity
        view._ttl = self._ttl
        view._clock = self._clock
        view._prefix = self._prefix + namespace + "\x00"
        view._shards = self._shards
        view.stats = CacheStats()
        view._stats_lock = threading.Lock()
        return view

    def _key(self, query: str) -> str:
        """Physical key: the view's namespace prefix + the normalized query."""
        return self._prefix + normalize(query)

    # -- introspection -------------------------------------------------------
    @property
    def clock(self):
        """The cache's time source (zero-argument callable), so freshness
        machinery layered on top can share the exact same notion of now."""
        return self._clock

    @property
    def capacity(self) -> int | None:
        return self._capacity

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    @property
    def fill_ratio(self) -> float:
        """Occupancy as a fraction of capacity (0.0 when unbounded)."""
        if not self._capacity:
            return 0.0
        return len(self) / self._capacity

    def shard_occupancy(self) -> list[int]:
        return [len(s.entries) for s in self._shards]

    def shard_evictions(self) -> list[int]:
        return [s.evictions for s in self._shards]

    def __len__(self) -> int:
        """Live *physical* entry count (each shard read under its own
        mutex) — on a tenant view this still counts every namespace,
        because capacity is a shared physical budget."""
        return sum(self._shard_len(s) for s in self._shards)

    @staticmethod
    def _shard_len(shard: _Shard) -> int:
        with shard.lock:
            return len(shard.entries)

    def __contains__(self, query: str) -> bool:
        """Whether a *live* entry exists (no hit/miss accounting).

        An expired entry discovered here is deleted and counted as an
        expiration — leaving it in place would let dead entries occupy
        capacity until the next ``get``, which is exactly the state where
        ``put`` used to evict live neighbours instead.
        """
        key = self._key(query)
        shard = self._shard_for(key)
        with shard.lock:
            entry = shard.entries.get(key)
            if entry is None:
                return False
            if self._expired(entry):
                del shard.entries[key]
                with self._stats_lock:
                    self.stats.expirations += 1
                return False
            return True

    # -- core operations ---------------------------------------------------------
    def _shard_for(self, key: str) -> _Shard:
        # zlib.crc32 is stable across processes (unlike ``hash`` on str),
        # so shard placement is deterministic and testable.
        return self._shards[zlib.crc32(key.encode("utf-8")) % len(self._shards)]

    def _expired(self, entry: tuple[list[str], float]) -> bool:
        return self._ttl is not None and self._clock() - entry[1] > self._ttl

    def _purge_shard_expired(self, shard: _Shard) -> int:
        """Delete every expired entry in ``shard``; returns how many.

        Caller must hold ``shard.lock``.  O(1) when nothing can be
        expired yet (the shard's earliest-expiry bound is in the future);
        otherwise one O(shard) sweep that also recomputes the bound
        exactly, so the steady-state write path of a full TTL'd cache
        stays O(1) per insert.
        """
        if self._ttl is None or not shard.entries:
            return 0
        now = self._clock()
        if now <= shard.earliest_expiry:
            return 0
        dead = [k for k, e in shard.entries.items() if now - e[1] > self._ttl]
        for key in dead:
            del shard.entries[key]
        with self._stats_lock:
            self.stats.expirations += len(dead)
        oldest = min((e[1] for e in shard.entries.values()), default=None)
        shard.earliest_expiry = float("inf") if oldest is None else oldest + self._ttl
        return len(dead)

    def put(self, query: str, rewrites: list[str]) -> None:
        """Insert or refresh an entry, evicting LRU entries past capacity.

        When the shard is over budget, expired entries are collected first
        (counted as expirations, not evictions); only if the shard is
        *still* over budget does true LRU eviction of live entries kick
        in.  Before this ordering, an expired entry could survive an
        eviction round while a live one was dropped.
        """
        key = self._key(query)
        shard = self._shard_for(key)
        with shard.lock:
            written = self._clock()
            shard.entries[key] = (list(rewrites), written)
            shard.entries.move_to_end(key)
            if self._ttl is not None:
                shard.earliest_expiry = min(shard.earliest_expiry, written + self._ttl)
            if shard.capacity is not None and len(shard.entries) > shard.capacity:
                self._purge_shard_expired(shard)
            evicted = 0
            while shard.capacity is not None and len(shard.entries) > shard.capacity:
                shard.entries.popitem(last=False)
                shard.evictions += 1
                evicted += 1
            if evicted:
                with self._stats_lock:
                    self.stats.evictions += evicted

    def get(self, query: str) -> list[str] | None:
        """Rewrites for ``query`` or None on a miss (stats are updated).

        A hit refreshes the entry's LRU position; an entry past its TTL is
        removed and counted as both an expiration and a miss.
        """
        key = self._key(query)
        shard = self._shard_for(key)
        with shard.lock:
            entry = shard.entries.get(key)
            if entry is None:
                with self._stats_lock:
                    self.stats.misses += 1
                return None
            if self._expired(entry):
                del shard.entries[key]
                with self._stats_lock:
                    self.stats.expirations += 1
                    self.stats.misses += 1
                return None
            shard.entries.move_to_end(key)
            with self._stats_lock:
                self.stats.hits += 1
            return list(entry[0])

    # -- freshness maintenance ----------------------------------------------
    def delete(self, query: str) -> bool:
        """Invalidate one entry (expired or live); True if it existed.

        Counts neither an eviction nor an expiration — the caller (e.g. a
        freshness controller reacting to catalog churn) owns the
        invalidation accounting.
        """
        key = self._key(query)
        shard = self._shard_for(key)
        with shard.lock:
            return shard.entries.pop(key, None) is not None

    def purge_expired(self) -> int:
        """Sweep every shard, deleting (and counting) all expired entries.

        Returns the number purged.  ``get``/``__contains__``/``put``
        already collect expired entries lazily; this sweep is for a
        freshness controller that wants capacity back *before* the dead
        keys are touched again.
        """
        purged = 0
        for shard in self._shards:
            with shard.lock:
                purged += self._purge_shard_expired(shard)
        return purged

    def stored_at(self, query: str) -> float | None:
        """Write timestamp of the *live* entry for ``query``, else None.

        A pure peek: no hit/miss accounting, no LRU refresh, and expired
        entries read as absent (without being collected).
        """
        key = self._key(query)
        shard = self._shard_for(key)
        with shard.lock:
            entry = shard.entries.get(key)
            if entry is None or self._expired(entry):
                return None
            return entry[1]

    def expiring_within(self, margin_seconds: float) -> list[str]:
        """Normalized keys of live entries whose TTL runs out within
        ``margin_seconds`` — the refresh-ahead set.  Empty when TTL is off.

        A tenant view reports only its own namespace's entries, with the
        namespace prefix stripped, so a freshness controller layered on a
        view sees the same logical keys it manages.
        """
        if self._ttl is None:
            return []
        now = self._clock()
        keys: list[str] = []
        for shard in self._shards:
            with shard.lock:
                for key, (_, written) in shard.entries.items():
                    if not key.startswith(self._prefix):
                        continue
                    remaining = self._ttl - (now - written)
                    if 0.0 <= remaining <= margin_seconds:
                        keys.append(key[len(self._prefix):])
        return keys

    def populate(self, rewriter, queries: list[str], k: int = 3, progress=None) -> int:
        """Precompute rewrites for head ``queries`` using any rewriter with
        a ``rewrite(query, k) -> list[RewriteResult]`` method.

        Returns the number of queries that produced at least one rewrite.
        """
        filled = 0
        for i, query in enumerate(queries):
            results = rewriter.rewrite(query, k=k)
            if results:
                self.put(query, [r.text for r in results])
                filled += 1
            if progress is not None:
                progress(i + 1, len(queries))
        return filled
