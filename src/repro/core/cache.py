"""Offline rewrite cache (paper Section III-G, first deployment step).

The paper precomputes rewrites for the top 8 million queries — covering
more than 80% of traffic — and serves them from a key-value store in under
5 ms.  This module reproduces that tier as a *finite* resource, the way a
production key-value store is provisioned:

* **bounded capacity** — the store holds at most ``capacity`` entries and
  evicts in LRU order (a lookup refreshes recency), so the "top 8M
  queries" tier is a budget, not an ever-growing dict;
* **sharding** — entries are spread over ``shards`` independent LRU
  shards by a stable hash of the normalized query, mirroring the
  partitioned deployment and keeping per-shard occupancy/eviction
  counters observable;
* **optional TTL** — precomputed rewrites go stale as the catalog and
  click log drift; entries older than ``ttl_seconds`` are treated as
  misses and collected lazily on access.

The default construction (``RewriteCache()``) remains an unbounded
single-shard store with no TTL, matching the original seed behaviour.
"""

from __future__ import annotations

import time
import zlib
from collections import OrderedDict
from dataclasses import dataclass

from repro.text import normalize


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    expirations: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class _Shard:
    """One LRU partition: insertion/refresh order is recency order."""

    __slots__ = ("capacity", "entries", "evictions")

    def __init__(self, capacity: int | None):
        self.capacity = capacity
        #: key -> (rewrites, stored_at); oldest (least recently used) first
        self.entries: OrderedDict[str, tuple[list[str], float]] = OrderedDict()
        self.evictions = 0


class RewriteCache:
    """Normalized-query -> precomputed rewrites store (bounded, sharded LRU).

    Parameters
    ----------
    capacity:
        Maximum total number of entries across all shards; ``None`` means
        unbounded.  The bound is split evenly over the shards, so the
        store can never hold more than ``capacity`` entries.
    shards:
        Number of independent LRU partitions (must divide the key space
        reasonably; any ``>= 1`` works).
    ttl_seconds:
        Entries older than this are expired lazily on access; ``None``
        disables expiry.
    clock:
        Monotonic time source, injectable for tests.
    """

    def __init__(
        self,
        capacity: int | None = None,
        shards: int = 1,
        ttl_seconds: float | None = None,
        clock=time.monotonic,
    ):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if capacity is not None and capacity < shards:
            raise ValueError("capacity must be at least the shard count")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive")
        self._capacity = capacity
        self._ttl = ttl_seconds
        self._clock = clock
        base, extra = (0, 0) if capacity is None else divmod(capacity, shards)
        self._shards = [
            _Shard(None if capacity is None else base + (1 if i < extra else 0))
            for i in range(shards)
        ]
        self.stats = CacheStats()

    # -- introspection -------------------------------------------------------
    @property
    def capacity(self) -> int | None:
        return self._capacity

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    @property
    def fill_ratio(self) -> float:
        """Occupancy as a fraction of capacity (0.0 when unbounded)."""
        if not self._capacity:
            return 0.0
        return len(self) / self._capacity

    def shard_occupancy(self) -> list[int]:
        return [len(s.entries) for s in self._shards]

    def shard_evictions(self) -> list[int]:
        return [s.evictions for s in self._shards]

    def __len__(self) -> int:
        return sum(len(s.entries) for s in self._shards)

    def __contains__(self, query: str) -> bool:
        key = normalize(query)
        entry = self._shard_for(key).entries.get(key)
        return entry is not None and not self._expired(entry)

    # -- core operations ---------------------------------------------------------
    def _shard_for(self, key: str) -> _Shard:
        # zlib.crc32 is stable across processes (unlike ``hash`` on str),
        # so shard placement is deterministic and testable.
        return self._shards[zlib.crc32(key.encode("utf-8")) % len(self._shards)]

    def _expired(self, entry: tuple[list[str], float]) -> bool:
        return self._ttl is not None and self._clock() - entry[1] > self._ttl

    def put(self, query: str, rewrites: list[str]) -> None:
        """Insert or refresh an entry, evicting LRU entries past capacity."""
        key = normalize(query)
        shard = self._shard_for(key)
        shard.entries[key] = (list(rewrites), self._clock())
        shard.entries.move_to_end(key)
        while shard.capacity is not None and len(shard.entries) > shard.capacity:
            shard.entries.popitem(last=False)
            shard.evictions += 1
            self.stats.evictions += 1

    def get(self, query: str) -> list[str] | None:
        """Rewrites for ``query`` or None on a miss (stats are updated).

        A hit refreshes the entry's LRU position; an entry past its TTL is
        removed and counted as both an expiration and a miss.
        """
        key = normalize(query)
        shard = self._shard_for(key)
        entry = shard.entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        if self._expired(entry):
            del shard.entries[key]
            self.stats.expirations += 1
            self.stats.misses += 1
            return None
        shard.entries.move_to_end(key)
        self.stats.hits += 1
        return list(entry[0])

    def populate(self, rewriter, queries: list[str], k: int = 3, progress=None) -> int:
        """Precompute rewrites for head ``queries`` using any rewriter with
        a ``rewrite(query, k) -> list[RewriteResult]`` method.

        Returns the number of queries that produced at least one rewrite.
        """
        filled = 0
        for i, query in enumerate(queries):
            results = rewriter.rewrite(query, k=k)
            if results:
                self.put(query, [r.text for r in results])
                filled += 1
            if progress is not None:
                progress(i + 1, len(queries))
        return filled
