"""Online serving pipeline (paper Section III-G).

Two tiers, as deployed at JD:

1. **Cache tier** — head queries hit the precomputed key-value store
   (paper: <5 ms, >80% of traffic).
2. **Model tier** — long-tail queries fall through to a fast direct
   query-to-query model (the hybrid transformer-encoder/RNN-decoder, about
   30 ms on a 32-core CPU in the paper).

Two serving modes:

* :meth:`ServingPipeline.serve` — one request at a time, the seed path.
* :meth:`ServingPipeline.serve_batch` — the throughput path: a batch of
  requests is partitioned into cache hits and model-tier misses, and all
  misses are decoded in **one** batched model pass (``rewrite_batch``),
  so the per-call model overhead is paid once per batch instead of once
  per miss.

The pipeline measures wall-clock latency per request and keeps per-tier
counters, so the cache-coverage / latency tradeoff of Section III-G can be
reproduced quantitatively.  When the cache tier is bounded
(:class:`~repro.core.cache.RewriteCache` with a capacity), its eviction
count, fill ratio, and per-shard occupancy are mirrored into
:class:`ServingStats` after every serve.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

from repro.core.cache import RewriteCache
from repro.text import tokenize


@dataclass
class ServingConfig:
    """Serving knobs (paper: at most 3 rewrites per query)."""

    max_rewrites: int = 3
    #: soft latency budget in ms (the paper's backend budget is ~50 ms);
    #: requests are not cut off, but breaches are counted.
    latency_budget_ms: float = 50.0
    #: write model-tier results back into the cache tier, so repeated tail
    #: queries promote themselves into the key-value store (the bounded
    #: LRU cache then evicts whatever went cold).
    cache_model_results: bool = False


@dataclass
class ServedRewrite:
    """Outcome of one serving request.

    For requests served through :meth:`ServingPipeline.serve_batch`,
    ``latency_ms`` of model-tier requests is the batch's model time
    amortized evenly over its misses (plus the request's own cache-lookup
    time); the batch decode is shared work with no meaningful per-request
    attribution.
    """

    query: str
    rewrites: list[str]
    source: str  # "cache" | "model" | "none"
    latency_ms: float


@dataclass
class ServedSearch:
    """Outcome of one end-to-end request: rewrite tiers plus retrieval.

    ``latency_ms`` covers the whole request (cache lookup, amortized
    model decode if any, and the retrieval fan-out)."""

    served: ServedRewrite
    doc_ids: list[int]
    postings_accessed: int
    latency_ms: float

    @property
    def query(self) -> str:
        return self.served.query

    @property
    def rewrites(self) -> list[str]:
        return self.served.rewrites


@dataclass
class ServingStats:
    cache_served: int = 0
    model_served: int = 0
    unserved: int = 0
    budget_breaches: int = 0
    batches: int = 0
    #: requests accepted into a scheduler's queue (0 when no scheduler
    #: fronts the pipeline; see :mod:`repro.online.scheduler`)
    admitted: int = 0
    #: requests rejected by scheduler admission control (load shedding)
    shed: int = 0
    #: end-to-end retrievals performed through :meth:`ServingPipeline.search_batch`
    search_requests: int = 0
    #: cumulative postings touched by those retrievals (paper's CPU-cost proxy)
    search_postings_accessed: int = 0
    #: retrievals per mode ("lexical" | "semantic" | "hybrid")
    search_by_mode: dict = field(default_factory=dict)
    latencies_ms: list[float] = field(default_factory=list)
    #: cache-tier gauges, mirrored from the bounded cache after each serve
    cache_evictions: int = 0
    cache_expirations: int = 0
    cache_fill_ratio: float = 0.0
    cache_shard_occupancy: list[int] = field(default_factory=list)
    #: cluster-tier gauges, mirrored from the engine's shard backend
    #: after each retrieval batch ("" / zeros when the engine has no
    #: backend; see :mod:`repro.cluster`)
    search_backend: str = ""
    failovers: int = 0
    rerouted_requests: int = 0
    #: model-tier decode gauges, mirrored from the fallback rewriter's
    #: model after each serve (zeros without a neural fallback):
    #: cumulative ``step`` calls and rows stepped.  With active-row
    #: compaction ``decode_rows`` grows slower than steps × batch width —
    #: the visible work saving.  Deliberately NOT part of
    #: :meth:`counters`: the replay digests pin that dict's exact shape,
    #: and these are work accounting, not request accounting.
    decode_steps: int = 0
    decode_rows: int = 0

    @property
    def total(self) -> int:
        return self.cache_served + self.model_served + self.unserved

    def counters(self) -> dict:
        """The deterministic projection of these stats.

        Everything except wall-clock-derived values (the latency samples
        and the budget breaches computed from them): two replays of the
        same virtual-clocked schedule must agree on this dict exactly,
        which is what the load-replay determinism acceptance compares.
        """
        return {
            "cache_served": self.cache_served,
            "model_served": self.model_served,
            "unserved": self.unserved,
            "batches": self.batches,
            "admitted": self.admitted,
            "shed": self.shed,
            "search_requests": self.search_requests,
            "search_postings_accessed": self.search_postings_accessed,
            "search_by_mode": dict(self.search_by_mode),
            "cache_evictions": self.cache_evictions,
            "cache_expirations": self.cache_expirations,
            "cache_fill_ratio": self.cache_fill_ratio,
            "cache_shard_occupancy": list(self.cache_shard_occupancy),
            "search_backend": self.search_backend,
            "failovers": self.failovers,
            "rerouted_requests": self.rerouted_requests,
        }

    def mean_latency_ms(self) -> float:
        return sum(self.latencies_ms) / len(self.latencies_ms) if self.latencies_ms else 0.0

    def percentile_latency_ms(self, q: float) -> float:
        """Nearest-rank percentile: the ``ceil(q·n)``-th smallest latency."""
        if not (0.0 < q <= 1.0):
            raise ValueError("q must be in (0, 1]")
        if not self.latencies_ms:
            return 0.0
        ordered = sorted(self.latencies_ms)
        return ordered[math.ceil(q * len(ordered)) - 1]

    def p50_latency_ms(self) -> float:
        return self.percentile_latency_ms(0.50)

    def p95_latency_ms(self) -> float:
        return self.percentile_latency_ms(0.95)

    def p99_latency_ms(self) -> float:
        return self.percentile_latency_ms(0.99)


def sum_counters(stats_list) -> dict:
    """Sum the *additive* deterministic counters of several
    :class:`ServingStats` — the global view over per-tenant pipelines.

    Multi-tenant drivers pin "per-tenant counters sum to global" as an
    isolation invariant; this is the canonical summation, covering every
    integer counter of :meth:`ServingStats.counters` plus the per-mode
    retrieval tally (dict-merged).  Non-additive gauges (fill ratio,
    shard occupancy) are deliberately excluded — they describe one
    physical cache, not a sum.
    """
    total = {
        "cache_served": 0,
        "model_served": 0,
        "unserved": 0,
        "batches": 0,
        "admitted": 0,
        "shed": 0,
        "search_requests": 0,
        "search_postings_accessed": 0,
        "cache_evictions": 0,
        "cache_expirations": 0,
        "failovers": 0,
        "rerouted_requests": 0,
        "search_by_mode": {},
    }
    for stats in stats_list:
        counters = stats.counters()
        for key in total:
            if key == "search_by_mode":
                for mode, count in counters["search_by_mode"].items():
                    total["search_by_mode"][mode] = (
                        total["search_by_mode"].get(mode, 0) + count
                    )
            else:
                total[key] += counters[key]
    return total


class ServingPipeline:
    """Cache-first, model-fallback rewrite serving."""

    def __init__(
        self,
        cache: RewriteCache | None,
        fallback_rewriter,
        config: ServingConfig | None = None,
        search_engine=None,
        *,
        tenant: str | None = None,
    ):
        """``fallback_rewriter`` is any object with
        ``rewrite(query, k) -> list[RewriteResult]`` (typically a
        :class:`~repro.core.rewriter.DirectRewriter` over a hybrid model);
        pass None to serve cache-only.  ``serve_batch`` additionally uses
        ``rewrite_batch(queries, k)`` when the rewriter provides it.

        ``search_engine`` is any object with ``search(query, rewrites) ->
        SearchOutcome`` (a :class:`~repro.search.SearchEngine` or
        :class:`~repro.search.ShardedSearchEngine`); it enables
        :meth:`search_batch`, the end-to-end rewrite-then-retrieve path.

        ``tenant`` names the marketplace this pipeline serves in a
        multi-tenant deployment (``repro.online.scenarios``); it is a
        label for telemetry/aggregation only and changes no behaviour."""
        self.cache = cache
        self.fallback = fallback_rewriter
        self.config = config or ServingConfig()
        self.search_engine = search_engine
        self.tenant = tenant
        self.stats = ServingStats()

    def close(self) -> None:
        """Release the retrieval engine's worker resources, if any.

        Engines with a shard backend (thread pools, worker processes)
        expose ``close()``; plain engines and cache-only pipelines make
        this a no-op.  The gateway and the experiment harnesses call it
        on shutdown so a pipeline owns its stack's lifecycle end to end.
        """
        engine = self.search_engine
        if engine is not None and callable(getattr(engine, "close", None)):
            engine.close()

    def __enter__(self) -> "ServingPipeline":
        """Context-manager support: ``with ServingPipeline(...) as p:``."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Close the underlying engine on scope exit."""
        self.close()

    # -- internal ------------------------------------------------------------
    def _lookup_cache(self, query: str) -> list[str] | None:
        """None on a cache *miss*; the (truncated) rewrite list on a hit.

        The distinction matters: a hit whose list truncates to empty
        (``max_rewrites=0``, or an empty list stored directly) is still an
        authoritative cache answer — "no rewrites for this query" — and
        must not be re-decoded through the model tier on every request.
        Callers therefore test ``is not None``, never truthiness.
        """
        if self.cache is None:
            return None
        cached = self.cache.get(query)
        if cached is None:
            return None
        return cached[: self.config.max_rewrites]

    def _record(self, source: str, latency_ms: float) -> None:
        self.stats.latencies_ms.append(latency_ms)
        if latency_ms > self.config.latency_budget_ms:
            self.stats.budget_breaches += 1
        if source == "cache":
            self.stats.cache_served += 1
        elif source == "model":
            self.stats.model_served += 1
        else:
            self.stats.unserved += 1

    def _writeback(self, query: str, rewrites: list[str]) -> None:
        if self.config.cache_model_results and self.cache is not None and rewrites:
            self.cache.put(query, rewrites)

    def _sync_cache_gauges(self) -> None:
        # O(shards) per call — negligible next to a model decode, and it
        # keeps ServingStats a plain value object with no cache backref.
        if self.cache is None:
            return
        self.stats.cache_evictions = self.cache.stats.evictions
        self.stats.cache_expirations = self.cache.stats.expirations
        self.stats.cache_fill_ratio = self.cache.fill_ratio
        self.stats.cache_shard_occupancy = self.cache.shard_occupancy()

    def _sync_decode_gauges(self) -> None:
        # Any fallback exposing a `model` with decode telemetry (every
        # Seq2SeqModel) is sampled; rule-based fallbacks have neither
        # attribute and leave the gauges at zero.
        model = getattr(self.fallback, "model", None)
        if model is None:
            return
        self.stats.decode_steps = int(getattr(model, "decode_steps", 0))
        self.stats.decode_rows = int(getattr(model, "decode_rows", 0))

    # -- serving -------------------------------------------------------------
    def serve(self, query: str) -> ServedRewrite:
        """Serve one request, recording tier and latency."""
        started = time.perf_counter()
        rewrites = self._lookup_cache(query)
        source = "cache" if rewrites is not None else "none"

        if rewrites is None and self.fallback is not None:
            results = self.fallback.rewrite(query, k=self.config.max_rewrites)
            rewrites = [r.text for r in results]
            if rewrites:
                source = "model"
                self._writeback(query, rewrites)

        latency_ms = (time.perf_counter() - started) * 1000.0
        self._record(source, latency_ms)
        self._sync_cache_gauges()
        self._sync_decode_gauges()
        return ServedRewrite(
            query=query, rewrites=rewrites or [], source=source, latency_ms=latency_ms
        )

    def serve_batch(self, queries: list[str]) -> list[ServedRewrite]:
        """Serve a batch of requests with one batched model-tier decode.

        The batch is partitioned into cache hits and misses; all misses go
        through the fallback's ``rewrite_batch`` in a single stacked decode
        (falling back to per-query ``rewrite`` for rewriters without batch
        support).  Results come back in request order, and tier counters
        account every request exactly once (hit, model, or unserved).
        """
        results: list[ServedRewrite | None] = [None] * len(queries)
        lookup_ms = [0.0] * len(queries)
        misses: list[int] = []

        for i, query in enumerate(queries):
            started = time.perf_counter()
            rewrites = self._lookup_cache(query)
            lookup_ms[i] = (time.perf_counter() - started) * 1000.0
            if rewrites is not None:
                results[i] = ServedRewrite(
                    query=query, rewrites=rewrites, source="cache",
                    latency_ms=lookup_ms[i],
                )
            else:
                misses.append(i)

        if misses and self.fallback is not None:
            miss_queries = [queries[i] for i in misses]
            started = time.perf_counter()
            if hasattr(self.fallback, "rewrite_batch"):
                batched = self.fallback.rewrite_batch(
                    miss_queries, k=self.config.max_rewrites
                )
            else:
                batched = [
                    self.fallback.rewrite(q, k=self.config.max_rewrites)
                    for q in miss_queries
                ]
            model_ms = (time.perf_counter() - started) * 1000.0
            amortized_ms = model_ms / len(misses)
            for i, rewrite_results in zip(misses, batched):
                rewrites = [r.text for r in rewrite_results]
                source = "model" if rewrites else "none"
                if rewrites:
                    self._writeback(queries[i], rewrites)
                results[i] = ServedRewrite(
                    query=queries[i], rewrites=rewrites, source=source,
                    latency_ms=lookup_ms[i] + amortized_ms,
                )
        else:
            for i in misses:
                results[i] = ServedRewrite(
                    query=queries[i], rewrites=[], source="none",
                    latency_ms=lookup_ms[i],
                )

        for served in results:
            self._record(served.source, served.latency_ms)
        if queries:
            self.stats.batches += 1
        self._sync_cache_gauges()
        self._sync_decode_gauges()
        return results

    def _resolve_modes(
        self, queries: list[str], modes: str | list[str | None] | None
    ) -> list[str | None]:
        """Validate per-request retrieval modes against the engine.

        ``modes`` is ``None`` (engine default for every request), one
        mode string for the whole batch, or a per-request list (``None``
        entries fall back to the engine default).  Engines advertise what
        they accept through a ``retrieval_modes`` attribute; an engine
        without one is lexical-only, so only ``None``/``"lexical"`` pass.
        """
        if modes is None:
            per_request: list[str | None] = [None] * len(queries)
        elif isinstance(modes, str):
            per_request = [modes] * len(queries)
        else:
            per_request = list(modes)
            if len(per_request) != len(queries):
                raise ValueError(
                    f"got {len(per_request)} modes for {len(queries)} queries"
                )
        supported = getattr(self.search_engine, "retrieval_modes", ("lexical",))
        for mode in per_request:
            if mode is not None and mode not in supported:
                raise ValueError(
                    f"retrieval mode {mode!r} not supported by "
                    f"{type(self.search_engine).__name__}; "
                    f"available: {', '.join(supported)}"
                )
        return per_request

    def search_batch(
        self,
        queries: list[str],
        modes: str | list[str | None] | None = None,
    ) -> list[ServedSearch]:
        """Serve a batch end to end: rewrite tiers, then retrieval.

        ``serve_batch`` produces each request's rewrites (cache tier or
        one stacked model decode), and every request is then retrieved
        through the configured search engine as ``original query +
        rewrites`` — the Section III-H merged-tree path.  Queries that
        tokenize to nothing and produced no rewrites come back with an
        empty candidate list instead of failing the batch.

        ``modes`` selects the retrieval mode per request (``"lexical" |
        "semantic" | "hybrid"``) for engines that support modes (a
        :class:`~repro.search.hybrid.HybridSearchEngine`); omit it to use
        each engine's default.  Mode usage is tallied in
        ``ServingStats.search_by_mode``.
        """
        if self.search_engine is None:
            raise ValueError(
                "search_batch needs a search engine; construct the pipeline "
                "with search_engine=SearchEngine(catalog) or a ShardedSearchEngine"
            )
        per_request = self._resolve_modes(queries, modes)
        served_batch = self.serve_batch(queries)
        results: list[ServedSearch] = []
        for served, mode in zip(served_batch, per_request):
            started = time.perf_counter()
            # Only search when something actually tokenizes: a rewrite list
            # of punctuation-only strings must not fail the whole batch.
            # Short-circuits on the query, so the common case pays one
            # extra tokenize and never touches the rewrites.
            if tokenize(served.query) or any(tokenize(r) for r in served.rewrites):
                # Mode-less engines take no ``mode`` kwarg; _resolve_modes
                # already guaranteed their requests are lexical-or-default.
                if mode is None or not hasattr(self.search_engine, "retrieval_modes"):
                    outcome = self.search_engine.search(served.query, served.rewrites)
                else:
                    outcome = self.search_engine.search(
                        served.query, served.rewrites, mode=mode
                    )
                doc_ids = outcome.doc_ids
                postings = outcome.postings_accessed
                used_mode = getattr(outcome, "mode", "lexical")
            else:
                doc_ids = []
                postings = 0
                # No retrieval ran, so tally under the mode that WOULD
                # have served the request: the explicit one, else the
                # engine's advertised default.
                used_mode = mode or getattr(
                    self.search_engine, "default_mode", "lexical"
                )
            retrieval_ms = (time.perf_counter() - started) * 1000.0
            self.stats.search_requests += 1
            self.stats.search_postings_accessed += postings
            self.stats.search_by_mode[used_mode] = (
                self.stats.search_by_mode.get(used_mode, 0) + 1
            )
            results.append(
                ServedSearch(
                    served=served,
                    doc_ids=doc_ids,
                    postings_accessed=postings,
                    latency_ms=served.latency_ms + retrieval_ms,
                )
            )
        self._sync_cluster_gauges()
        return results

    def _sync_cluster_gauges(self) -> None:
        """Mirror the engine's cluster counters into :class:`ServingStats`.

        Engines without a shard backend (a plain ``SearchEngine``) expose
        no ``cluster_stats``; the gauges then stay at their zero defaults.
        The mirrored values are deterministic under replay: failovers and
        reroutes are driven by scripted kill/respawn events, not timing.
        """
        reader = getattr(self.search_engine, "cluster_stats", None)
        if not callable(reader):
            return
        cluster = reader()
        self.stats.search_backend = cluster.get("backend", "")
        self.stats.failovers = int(cluster.get("failovers", 0))
        self.stats.rerouted_requests = int(cluster.get("rerouted_requests", 0))
