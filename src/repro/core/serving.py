"""Online serving pipeline (paper Section III-G).

Two tiers, as deployed at JD:

1. **Cache tier** — head queries hit the precomputed key-value store
   (paper: <5 ms, >80% of traffic).
2. **Model tier** — long-tail queries fall through to a fast direct
   query-to-query model (the hybrid transformer-encoder/RNN-decoder, about
   30 ms on a 32-core CPU in the paper).

The pipeline measures wall-clock latency per request and keeps per-tier
counters, so the cache-coverage / latency tradeoff of Section III-G can be
reproduced quantitatively.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.cache import RewriteCache


@dataclass
class ServingConfig:
    """Serving knobs (paper: at most 3 rewrites per query)."""

    max_rewrites: int = 3
    #: soft latency budget in ms (the paper's backend budget is ~50 ms);
    #: requests are not cut off, but breaches are counted.
    latency_budget_ms: float = 50.0


@dataclass
class ServedRewrite:
    """Outcome of one serving request."""

    query: str
    rewrites: list[str]
    source: str  # "cache" | "model" | "none"
    latency_ms: float


@dataclass
class ServingStats:
    cache_served: int = 0
    model_served: int = 0
    unserved: int = 0
    budget_breaches: int = 0
    latencies_ms: list[float] = field(default_factory=list)

    @property
    def total(self) -> int:
        return self.cache_served + self.model_served + self.unserved

    def mean_latency_ms(self) -> float:
        return sum(self.latencies_ms) / len(self.latencies_ms) if self.latencies_ms else 0.0

    def p99_latency_ms(self) -> float:
        if not self.latencies_ms:
            return 0.0
        ordered = sorted(self.latencies_ms)
        return ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))]


class ServingPipeline:
    """Cache-first, model-fallback rewrite serving."""

    def __init__(
        self,
        cache: RewriteCache | None,
        fallback_rewriter,
        config: ServingConfig | None = None,
    ):
        """``fallback_rewriter`` is any object with
        ``rewrite(query, k) -> list[RewriteResult]`` (typically a
        :class:`~repro.core.rewriter.DirectRewriter` over a hybrid model);
        pass None to serve cache-only."""
        self.cache = cache
        self.fallback = fallback_rewriter
        self.config = config or ServingConfig()
        self.stats = ServingStats()

    def serve(self, query: str) -> ServedRewrite:
        """Serve one request, recording tier and latency."""
        started = time.perf_counter()
        rewrites: list[str] = []
        source = "none"

        if self.cache is not None:
            cached = self.cache.get(query)
            if cached is not None:
                rewrites = cached[: self.config.max_rewrites]
                source = "cache"

        if not rewrites and self.fallback is not None:
            results = self.fallback.rewrite(query, k=self.config.max_rewrites)
            rewrites = [r.text for r in results]
            if rewrites:
                source = "model"

        latency_ms = (time.perf_counter() - started) * 1000.0
        self.stats.latencies_ms.append(latency_ms)
        if latency_ms > self.config.latency_budget_ms:
            self.stats.budget_breaches += 1
        if source == "cache":
            self.stats.cache_served += 1
        elif source == "model":
            self.stats.model_served += 1
        else:
            self.stats.unserved += 1
        return ServedRewrite(query=query, rewrites=rewrites, source=source, latency_ms=latency_ms)
