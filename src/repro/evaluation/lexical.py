"""Lexical and semantic similarity metrics (paper Table VII).

The rewriting goal is *paradoxical by design*: rewrites should be lexically
DIVERSE (low n-gram F1, high edit distance) yet semantically RELEVANT (high
embedding cosine).  Rule-based replacement scores high on all three —
too similar to add recall; the translation models trade a little cosine for
much more diversity.
"""

from __future__ import annotations

import numpy as np

from repro.text import levenshtein, ngram_f1, tokenize


def rewrite_similarity(
    original: str | list[str],
    rewritten: str | list[str],
    encoder=None,
) -> dict[str, float]:
    """F1 / edit-distance / (optional) cosine between one query pair."""
    original_tokens = tokenize(original) if isinstance(original, str) else list(original)
    rewritten_tokens = tokenize(rewritten) if isinstance(rewritten, str) else list(rewritten)
    metrics = {
        "f1": ngram_f1(rewritten_tokens, original_tokens),
        "edit_distance": float(levenshtein(rewritten_tokens, original_tokens)),
    }
    if encoder is not None:
        metrics["cosine"] = encoder.cosine(original_tokens, rewritten_tokens)
    return metrics


def method_similarity_metrics(
    rewriter,
    queries: list[str],
    encoder=None,
    k: int = 3,
) -> dict[str, float]:
    """One Table VII row: mean F1 / edit distance / cosine for a method.

    ``rewriter`` is anything with ``rewrite(query, k) -> [RewriteResult]``.
    Queries yielding no rewrites are skipped (matching the paper's setup,
    where every evaluated query has at least a rule-based synonym).
    """
    f1s: list[float] = []
    edits: list[float] = []
    cosines: list[float] = []
    covered = 0
    for query in queries:
        results = rewriter.rewrite(query, k=k)
        if not results:
            continue
        covered += 1
        for result in results:
            metrics = rewrite_similarity(query, list(result.tokens), encoder=encoder)
            f1s.append(metrics["f1"])
            edits.append(metrics["edit_distance"])
            if encoder is not None:
                cosines.append(metrics["cosine"])
    if not f1s:
        raise ValueError("rewriter produced no rewrites on the evaluation set")
    row = {
        "f1": float(np.mean(f1s)),
        "edit_distance": float(np.mean(edits)),
        "coverage": covered / len(queries),
    }
    if cosines:
        row["cosine"] = float(np.mean(cosines))
    return row
