"""Simulated human relevancy evaluation (paper Table VI).

The paper asks labelers: given the original query, are method A's rewrites
more relevant than method B's?  Our substitute labeler exploits the
simulator's ground truth: every logged query carries its generating
:class:`~repro.data.domain.Intent`, so a rewrite can be judged by
*retrieving with it* and checking how well the retrieved products match
that intent.  A tie band and label noise model human disagreement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.catalog import Catalog
from repro.data.domain import Intent
from repro.search import SearchConfig, SearchEngine
from repro.text import tokenize


@dataclass
class LabelerConfig:
    #: products examined per rewrite when judging
    judge_depth: int = 10
    #: relevance difference below this is a "tie" (human judgments tie often:
    #: 49-60% of the paper's Table VI comparisons are ties)
    tie_band: float = 0.1
    #: probability a judgment flips to a random label (human noise)
    noise: float = 0.05
    seed: int = 0


class SimulatedLabeler:
    """Oracle-with-noise relevance judge over the catalog."""

    def __init__(self, catalog: Catalog, config: LabelerConfig | None = None):
        self.catalog = catalog
        self.config = config or LabelerConfig()
        self._engine = SearchEngine(catalog, SearchConfig(max_candidates=self.config.judge_depth))
        self._rng = np.random.default_rng(self.config.seed)

    # -- single rewrite ------------------------------------------------------
    def relevance(self, intent: Intent, rewrite: str | list[str]) -> float:
        """Mean intent-match of the products the rewrite retrieves, in [0,1].

        A rewrite that retrieves nothing scores 0 (a human would mark a
        rewrite useless if it brings back no results); retrieval falls back
        from AND to best-effort token lookup so near-miss rewrites still
        get partial credit.
        """
        tokens = tokenize(rewrite) if isinstance(rewrite, str) else list(rewrite)
        if not tokens:
            return 0.0
        outcome = self._engine.search(" ".join(tokens))
        doc_ids = outcome.doc_ids
        if not doc_ids:
            # AND failed: fall back to the single most selective term.
            best_token = min(
                tokens, key=lambda t: self._engine.index.postings_length(t) or 1 << 30
            )
            doc_ids = self._engine.index.postings(best_token)[: self.config.judge_depth]
        if not doc_ids:
            return 0.0
        scores = [
            intent.matches(self.catalog.get(doc_id))
            for doc_id in doc_ids[: self.config.judge_depth]
        ]
        return float(np.mean(scores))

    def best_relevance(self, intent: Intent, rewrites: list[str]) -> float:
        """Relevance of a method's rewrite set = its best rewrite.

        Retrieval unions candidates from all rewrites, so a set is as
        useful as its best member.
        """
        if not rewrites:
            return 0.0
        return max(self.relevance(intent, r) for r in rewrites)

    # -- pairwise comparison ------------------------------------------------------
    def compare(self, intent: Intent, rewrites_a: list[str], rewrites_b: list[str]) -> str:
        """'win' if A's rewrites beat B's, 'lose' if worse, 'tie' otherwise."""
        if self._rng.random() < self.config.noise:
            return str(self._rng.choice(["win", "tie", "lose"]))
        score_a = self.best_relevance(intent, rewrites_a)
        score_b = self.best_relevance(intent, rewrites_b)
        if abs(score_a - score_b) <= self.config.tie_band:
            return "tie"
        return "win" if score_a > score_b else "lose"


def pairwise_evaluation(
    labeler: SimulatedLabeler,
    evaluation: list[tuple[str, Intent]],
    method_a,
    method_b,
    k: int = 3,
) -> dict[str, float]:
    """One Table VI row: win/tie/lose fractions of method A versus B.

    ``evaluation`` is a list of (query text, ground-truth intent) pairs;
    methods are rewriters with ``rewrite(query, k)``.
    """
    if not evaluation:
        raise ValueError("pairwise_evaluation needs a non-empty evaluation set")
    tallies = {"win": 0, "tie": 0, "lose": 0}
    for query, intent in evaluation:
        rewrites_a = [r.text for r in method_a.rewrite(query, k=k)]
        rewrites_b = [r.text for r in method_b.rewrite(query, k=k)]
        tallies[labeler.compare(intent, rewrites_a, rewrites_b)] += 1
    total = len(evaluation)
    return {label: count / total for label, count in tallies.items()}
