"""Evaluation machinery for every offline and online experiment.

* :mod:`repro.evaluation.lexical` — n-gram F1 and edit distance plus the
  Table VII aggregation over a rewriter.
* :mod:`repro.evaluation.human` — the simulated human labeler behind the
  Table VI win/tie/lose comparisons.
* :mod:`repro.evaluation.abtest` — the online A/B simulator producing
  UCVR / GMV / QRR deltas (Table VIII).
"""

from repro.evaluation.lexical import rewrite_similarity, method_similarity_metrics
from repro.evaluation.human import SimulatedLabeler, LabelerConfig, pairwise_evaluation
from repro.evaluation.abtest import (
    ABTestConfig,
    ABTestSimulator,
    ABTestReport,
    UserModel,
    UserModelConfig,
)
from repro.evaluation.utility import (
    rewrite_utility,
    method_utility,
    spearman_correlation,
)

__all__ = [
    "rewrite_similarity",
    "method_similarity_metrics",
    "SimulatedLabeler",
    "LabelerConfig",
    "pairwise_evaluation",
    "ABTestConfig",
    "ABTestSimulator",
    "ABTestReport",
    "UserModel",
    "UserModelConfig",
    "rewrite_utility",
    "method_utility",
    "spearman_correlation",
]
