"""Online A/B test simulation (paper Section IV-D, Table VIII).

The paper runs 10 days of live traffic: the control serves the production
retrieval (inverted index + standard rule-based rewriting), the variation
adds at most 3 model rewrites, each contributing at most 1,000 extra
candidates; everything then flows through the same ranker.  The reported
metrics are relative improvements in

* **UCVR** — user conversion rate (sessions with ≥1 purchase),
* **GMV**  — gross merchandise value (sum of purchased item prices),
* **QRR**  — query rewrite (reformulation) rate: how often users, unhappy
  with results, retype their query.  *Lower* is better; the paper reports a
  small negative delta.

Our substitute wires the same causal path: rewrites add candidates for
queries the lexical index under-serves; an oracle-quality ranker (the
paper stresses its ranker is state-of-the-art and shared by both arms)
orders candidates by true intent relevance; a position-discounted cascade
user model clicks, purchases or reformulates.  Common random numbers are
used across arms so deltas are paired, not two noisy marginals.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.catalog import Catalog
from repro.data.domain import Intent, QueryRecord
from repro.search import SearchConfig, SearchEngine


@dataclass
class UserModelConfig:
    """Cascade browsing/purchase behaviour."""

    examine_depth: int = 10
    #: geometric position discount for examination
    position_decay: float = 0.85
    #: P(click | examined, relevance r) = r * click_scale
    click_scale: float = 0.6
    #: P(purchase | clicked) — modulated by relevance again
    purchase_given_click: float = 0.35
    #: if nothing examined was relevant above this, the user may reformulate
    relevance_threshold: float = 0.5
    reformulate_prob: float = 0.7


@dataclass
class ABTestConfig:
    days: int = 10
    sessions_per_day: int = 300
    max_rewrites: int = 3
    #: extra candidates each rewrite may add (paper: 1,000)
    extra_candidates_per_rewrite: int = 1000
    seed: int = 0


@dataclass
class ArmMetrics:
    sessions: int = 0
    converted_sessions: int = 0
    gmv: float = 0.0
    reformulations: int = 0
    #: per-session records, kept for paired bootstrap significance tests
    session_converted: list[int] = field(default_factory=list)
    session_gmv: list[float] = field(default_factory=list)
    session_reformulated: list[int] = field(default_factory=list)

    @property
    def ucvr(self) -> float:
        return self.converted_sessions / self.sessions if self.sessions else 0.0

    @property
    def qrr(self) -> float:
        return self.reformulations / self.sessions if self.sessions else 0.0

    def record(self, converted: bool, gmv: float, reformulated: bool) -> None:
        self.sessions += 1
        self.converted_sessions += int(converted)
        self.gmv += gmv
        self.reformulations += int(reformulated)
        self.session_converted.append(int(converted))
        self.session_gmv.append(gmv)
        self.session_reformulated.append(int(reformulated))


@dataclass
class ABTestReport:
    control: ArmMetrics
    variation: ArmMetrics

    @staticmethod
    def _relative(new: float, old: float) -> float:
        if old == 0.0:
            return 0.0
        return (new - old) / old

    @property
    def ucvr_delta(self) -> float:
        """Relative UCVR improvement (paper: +0.5219%)."""
        return self._relative(self.variation.ucvr, self.control.ucvr)

    @property
    def gmv_delta(self) -> float:
        """Relative GMV improvement (paper: +1.1054%)."""
        return self._relative(self.variation.gmv, self.control.gmv)

    @property
    def qrr_delta(self) -> float:
        """Relative QRR change — negative is good (paper: -0.0397%)."""
        return self._relative(self.variation.qrr, self.control.qrr)

    def as_row(self) -> dict[str, float]:
        return {
            "UCVR": self.ucvr_delta,
            "GMV": self.gmv_delta,
            "QRR": self.qrr_delta,
        }

    def significance(
        self,
        metric: str = "UCVR",
        resamples: int = 2000,
        seed: int = 0,
    ) -> dict[str, float]:
        """Paired-bootstrap significance of one metric's delta.

        The paper reports its A/B improvements as statistically significant;
        because our arms replay the SAME sessions (common random numbers),
        a paired bootstrap over sessions is the right test.  Returns the
        mean delta, a 95% confidence interval and the fraction of resamples
        whose delta crosses zero (a one-sided p-value proxy).
        """
        arrays = {
            "UCVR": (
                np.asarray(self.variation.session_converted, dtype=float),
                np.asarray(self.control.session_converted, dtype=float),
            ),
            "GMV": (
                np.asarray(self.variation.session_gmv, dtype=float),
                np.asarray(self.control.session_gmv, dtype=float),
            ),
            "QRR": (
                np.asarray(self.variation.session_reformulated, dtype=float),
                np.asarray(self.control.session_reformulated, dtype=float),
            ),
        }
        if metric not in arrays:
            raise ValueError(f"unknown metric {metric!r}")
        variation, control = arrays[metric]
        if variation.size == 0 or variation.size != control.size:
            raise ValueError("paired significance needs equal, non-empty session arrays")
        paired_delta = variation - control
        rng = np.random.default_rng(seed)
        n = paired_delta.size
        samples = np.empty(resamples)
        for i in range(resamples):
            idx = rng.integers(0, n, size=n)
            samples[i] = paired_delta[idx].mean()
        mean_delta = float(paired_delta.mean())
        crossing = float((samples <= 0).mean() if mean_delta > 0 else (samples >= 0).mean())
        low, high = np.percentile(samples, [2.5, 97.5])
        return {
            "delta": mean_delta,
            "ci_low": float(low),
            "ci_high": float(high),
            "p_value": crossing,
        }


class UserModel:
    """Position-discounted cascade user."""

    def __init__(self, catalog: Catalog, config: UserModelConfig | None = None):
        self.catalog = catalog
        self.config = config or UserModelConfig()

    def browse(
        self,
        intent: Intent,
        ranked_doc_ids: list[int],
        rng: np.random.Generator,
    ) -> tuple[bool, float, bool]:
        """Simulate one result-page interaction.

        Returns (converted, gmv, reformulated).
        """
        cfg = self.config
        converted = False
        gmv = 0.0
        saw_relevant = False
        for position, doc_id in enumerate(ranked_doc_ids[: cfg.examine_depth]):
            examine_prob = cfg.position_decay**position
            if rng.random() > examine_prob:
                continue
            product = self.catalog.get(doc_id)
            relevance = intent.matches(product)
            if relevance >= cfg.relevance_threshold:
                saw_relevant = True
            if rng.random() < relevance * cfg.click_scale:
                if rng.random() < relevance * cfg.purchase_given_click:
                    converted = True
                    gmv += product.price
        reformulated = False
        if not saw_relevant and rng.random() < cfg.reformulate_prob:
            reformulated = True
        return converted, gmv, reformulated


class ABTestSimulator:
    """Paired control/variation traffic replay.

    Parameters
    ----------
    catalog:
        Product catalog (also the retrieval corpus).
    query_pool:
        (query text, intent) pairs sampled as live traffic — typically the
        distinct queries of the click log.
    control_rewriter:
        The production rewriting both arms share (rule-based baseline);
        may be None for a bare-index control.
    variation_rewriter:
        The model under test; its rewrites are ADDED on top of control
        behaviour, exactly as in the paper's setup.
    ranker:
        "oracle" ranks by true intent relevance (the paper's strong-ranker
        assumption); "lexical" ranks by query-term overlap only.
    """

    def __init__(
        self,
        catalog: Catalog,
        query_pool: list[tuple[str, Intent]],
        control_rewriter,
        variation_rewriter,
        config: ABTestConfig | None = None,
        user_config: UserModelConfig | None = None,
        ranker: str = "oracle",
    ):
        if not query_pool:
            raise ValueError("ABTestSimulator needs a non-empty query pool")
        if ranker not in ("oracle", "lexical"):
            raise ValueError(f"unknown ranker {ranker!r}")
        self.catalog = catalog
        self.query_pool = query_pool
        self.control_rewriter = control_rewriter
        self.variation_rewriter = variation_rewriter
        self.config = config or ABTestConfig()
        self.user = UserModel(catalog, user_config)
        self.ranker = ranker
        self.engine = SearchEngine(
            catalog,
            SearchConfig(max_candidates=self.config.extra_candidates_per_rewrite * 4),
        )
        self._rewrite_cache: dict[tuple[str, str], list[str]] = {}

    # -- candidate generation per arm ---------------------------------------
    def _rewrites(self, which: str, query: str) -> list[str]:
        key = (which, query)
        if key not in self._rewrite_cache:
            rewriter = self.control_rewriter if which == "control" else self.variation_rewriter
            if rewriter is None:
                rewrites: list[str] = []
            else:
                rewrites = [
                    r.text for r in rewriter.rewrite(query, k=self.config.max_rewrites)
                ]
            self._rewrite_cache[key] = rewrites
        return self._rewrite_cache[key]

    def _candidates(self, query: str, arm: str) -> list[int]:
        control_rewrites = self._rewrites("control", query)
        outcome = self.engine.search(query, control_rewrites)
        docs = list(outcome.doc_ids)
        if arm == "variation":
            extra_rewrites = self._rewrites("variation", query)
            if extra_rewrites:
                seen = set(docs)
                extra_outcome = self.engine.search(query, extra_rewrites)
                budget = self.config.extra_candidates_per_rewrite * max(
                    1, len(extra_rewrites)
                )
                added = 0
                for doc_id in extra_outcome.doc_ids:
                    if doc_id not in seen:
                        docs.append(doc_id)
                        seen.add(doc_id)
                        added += 1
                        if added >= budget:
                            break
        return docs

    def _rank(self, intent: Intent, doc_ids: list[int], rng: np.random.Generator) -> list[int]:
        if self.ranker == "oracle":
            # Strong shared ranker: true relevance + small noise.
            scores = [
                intent.matches(self.catalog.get(d)) + rng.normal(0.0, 0.01) for d in doc_ids
            ]
            order = np.argsort(scores)[::-1]
            return [doc_ids[i] for i in order]
        return doc_ids  # lexical: keep index order (already overlap-ranked)

    # -- the experiment -----------------------------------------------------------
    def run(self) -> ABTestReport:
        cfg = self.config
        control = ArmMetrics()
        variation = ArmMetrics()
        master = np.random.default_rng(cfg.seed)
        pool_size = len(self.query_pool)

        for day in range(cfg.days):
            for session in range(cfg.sessions_per_day):
                query, intent = self.query_pool[int(master.integers(0, pool_size))]
                behaviour_seed = int(master.integers(0, 2**31 - 1))

                for arm, metrics in (("control", control), ("variation", variation)):
                    docs = self._candidates(query, arm)
                    # Common random numbers: the same user visits both arms.
                    rng = np.random.default_rng(behaviour_seed)
                    ranked = self._rank(intent, docs, rng)
                    converted, gmv, reformulated = self.user.browse(intent, ranked, rng)
                    metrics.record(converted, gmv, reformulated)
        return ABTestReport(control=control, variation=variation)
