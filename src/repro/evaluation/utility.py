"""Offline rewrite-utility metric (paper Section V, third future-work item).

The paper observes that "neither the lexical similarity (F1 score and edit
distance) nor the semantic similarity (cosine similarity) aligns well with
the query rewriting objective": the goal is rewrites that are *lexically
diverse yet semantically relevant*, and each Table VII metric captures only
one side.

This module implements the composite the paper asks for.  For an original
query ``q`` and a rewrite ``q'``:

* **novelty** — the fraction of items retrieved by ``q'`` that the original
  query misses.  A rewrite that retrieves nothing new (e.g. the rule-based
  single-word swap, or the identity) is useless no matter how relevant.
* **relatedness** — embedding cosine between ``q`` and ``q'`` clipped to
  [0, 1], the semantic-safety proxy available without human labels.
* **utility** = novelty × relatedness, with utility 0 when the rewrite
  retrieves nothing at all.

Both factors come from production artifacts (the inverted index and the
embedding-retrieval model), so the metric is computable offline at scale —
exactly the constraint the paper's future-work paragraph sets.  Tests and
the correlation experiment check it agrees with the ground-truth labeler
better than F1 or cosine alone.
"""

from __future__ import annotations

import numpy as np

from repro.search.engine import SearchEngine
from repro.text import tokenize


def rewrite_utility(
    original: str | list[str],
    rewrite: str | list[str],
    engine: SearchEngine,
    encoder,
) -> dict[str, float]:
    """Score one rewrite; returns novelty, relatedness and their product."""
    original_tokens = tokenize(original) if isinstance(original, str) else list(original)
    rewrite_tokens = tokenize(rewrite) if isinstance(rewrite, str) else list(rewrite)
    if not original_tokens or not rewrite_tokens:
        return {"novelty": 0.0, "relatedness": 0.0, "utility": 0.0}

    base_docs = set(engine.search(" ".join(original_tokens)).doc_ids)
    rewrite_docs = set(engine.search(" ".join(rewrite_tokens)).doc_ids)
    if not rewrite_docs:
        return {"novelty": 0.0, "relatedness": 0.0, "utility": 0.0}

    new_docs = rewrite_docs - base_docs
    novelty = len(new_docs) / len(rewrite_docs)
    relatedness = float(np.clip(encoder.cosine(original_tokens, rewrite_tokens), 0.0, 1.0))
    return {
        "novelty": novelty,
        "relatedness": relatedness,
        "utility": novelty * relatedness,
    }


def method_utility(
    rewriter,
    queries: list[str],
    engine: SearchEngine,
    encoder,
    k: int = 3,
) -> dict[str, float]:
    """Mean utility of a rewriting method over an evaluation query set.

    A query's score is its best rewrite's utility (retrieval unions the
    candidates, so a set is as useful as its best member); queries with no
    rewrites score 0, so coverage is priced in.
    """
    if not queries:
        raise ValueError("method_utility needs a non-empty query set")
    utilities: list[float] = []
    novelty: list[float] = []
    relatedness: list[float] = []
    for query in queries:
        results = rewriter.rewrite(query, k=k)
        if not results:
            utilities.append(0.0)
            continue
        scores = [
            rewrite_utility(query, list(r.tokens), engine, encoder) for r in results
        ]
        best = max(scores, key=lambda s: s["utility"])
        utilities.append(best["utility"])
        novelty.append(best["novelty"])
        relatedness.append(best["relatedness"])
    return {
        "utility": float(np.mean(utilities)),
        "novelty": float(np.mean(novelty)) if novelty else 0.0,
        "relatedness": float(np.mean(relatedness)) if relatedness else 0.0,
    }


def spearman_correlation(a: list[float], b: list[float]) -> float:
    """Spearman rank correlation (no scipy dependency needed)."""
    if len(a) != len(b) or len(a) < 2:
        raise ValueError("need two equal-length series of at least 2 points")
    def ranks(values: list[float]) -> np.ndarray:
        order = np.argsort(values, kind="stable")
        out = np.empty(len(values))
        out[order] = np.arange(len(values), dtype=float)
        # average ties
        values_arr = np.asarray(values)
        for v in np.unique(values_arr):
            mask = values_arr == v
            if mask.sum() > 1:
                out[mask] = out[mask].mean()
        return out

    ra, rb = ranks(a), ranks(b)
    ra -= ra.mean()
    rb -= rb.mean()
    denom = np.sqrt((ra**2).sum() * (rb**2).sum())
    if denom == 0:
        return 0.0
    return float((ra * rb).sum() / denom)
