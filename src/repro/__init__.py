"""Reproduction of "Query Rewriting via Cycle-Consistent Translation for
E-Commerce Search" (Qiu et al., ICDE 2021).

The public API re-exports the most commonly used entry points; see the
subpackages for the full surface:

- :mod:`repro.autograd`, :mod:`repro.nn`, :mod:`repro.optim` — NumPy neural substrate
- :mod:`repro.text`, :mod:`repro.data` — tokenization and the synthetic marketplace
- :mod:`repro.models`, :mod:`repro.decoding`, :mod:`repro.training` — NMT models,
  decoders, and the cyclic-consistent training algorithm
- :mod:`repro.core` — the query rewriter (inference pipeline, cache, serving)
- :mod:`repro.online` — live-traffic replay + cache freshness under catalog churn
- :mod:`repro.baselines`, :mod:`repro.search`, :mod:`repro.embedding`,
  :mod:`repro.evaluation`, :mod:`repro.experiments`
"""

__version__ = "1.0.0"
