"""Scenario-library sweep: every adversarial replay arm + its pinned bars.

The scenario library (:mod:`repro.online.scenarios`) packages the online
serving stack's regression harness into named arms — multi-tenant
isolation, hot-key storm, churn storm, cold-restart, vocabulary drift,
replica failover — each with deterministic traffic and pinned pass/fail
invariants.  This
experiment runs every registered arm at the requested scale and renders
one row per invariant, so the CLI artifact doubles as a human-readable
conformance report for the serving tier.

Alongside the per-arm bars, the run re-checks the two library-level
guarantees the benchmark suite pins (``benchmarks/test_scenarios.py``):
same-seed replays fingerprint identically, and a deliberately broken
config (``namespace_cache=False``) makes the isolation invariant fail —
proof the gates can actually catch a regression, not just pass.
"""

from __future__ import annotations

from repro.experiments.rendering import ascii_table
from repro.experiments.result import ExperimentResult
from repro.experiments.scale import ExperimentScale, SMALL
from repro.online import SCENARIOS, ScenarioConfig, run_scenario


def _scenario_config(scale: ExperimentScale) -> ScenarioConfig:
    """The shared base config, shrunk by the scale's workload factor."""
    return ScenarioConfig(seed=scale.seed).scaled(min(1.0, scale.workload_factor))


def run(scale: ExperimentScale = SMALL) -> ExperimentResult:
    base = _scenario_config(scale)

    outcomes = {name: run_scenario(name, base) for name in SCENARIOS}

    # Library-level guarantee 1: same-seed determinism (full fingerprint).
    deterministic = all(
        run_scenario(name, base).fingerprint() == outcomes[name].fingerprint()
        for name in SCENARIOS
    )

    # Library-level guarantee 2: the gates detect a real regression — a
    # shared, un-namespaced cache must trip the isolation invariant.
    broken = run_scenario(
        "multi_tenant", ScenarioConfig(seed=base.seed, namespace_cache=False).scaled(
            min(1.0, scale.workload_factor)
        )
    )
    broken_names = [result.name for result in broken.failures()]
    gates_catch_regressions = "zero_cross_tenant_cache_serves" in broken_names

    measured: dict[str, object] = {
        "scenarios": len(outcomes),
        "requests_per_tenant": base.requests_per_tenant,
        "all_passed": all(outcome.passed for outcome in outcomes.values()),
        "deterministic": deterministic,
        "gates_catch_regressions": gates_catch_regressions,
        "broken_config_failures": broken_names,
    }
    rows = []
    for name, outcome in outcomes.items():
        measured[f"{name}_passed"] = outcome.passed
        measured[f"{name}_invariants"] = len(outcome.invariants)
        measured[f"{name}_totals"] = outcome.totals()
        for result in outcome.invariants:
            measured[f"{name}_{result.name}"] = result.passed
            rows.append(
                [
                    name,
                    result.name,
                    result.bar,
                    f"{result.observed:g}",
                    "PASS" if result.passed else "FAIL",
                ]
            )
    rows.append(
        [
            "(library)",
            "same_seed_fingerprints_identical",
            "== rerun",
            "-",
            "PASS" if deterministic else "FAIL",
        ]
    )
    rows.append(
        [
            "(library)",
            "broken_config_detected",
            "namespace_cache=False fails",
            f"{len(broken_names)} failure(s)",
            "PASS" if gates_catch_regressions else "FAIL",
        ]
    )
    rendered = ascii_table(
        ["scenario", "invariant", "bar", "observed", "verdict"],
        rows,
        float_format="{:.3f}",
    )
    return ExperimentResult(
        experiment_id="scenarios",
        title="Scenario library: adversarial replay arms vs pinned invariants",
        measured=measured,
        paper={
            "claim": "the deployed serving tier isolates tenants and survives "
            "hot-key storms, churn storms, restarts and vocabulary drift",
            "setting": "Section III-G/H production serving behind the "
            "cache + scheduler + freshness stack",
        },
        rendered=rendered,
        notes=(
            "Every registered scenario replayed at this scale with its pinned "
            "invariants judged; plus the two library-level guarantees: "
            "same-seed runs fingerprint byte-identically, and a deliberately "
            "broken config (shared cache without tenant namespaces) trips the "
            "cross-tenant isolation gate — the harness can fail."
        ),
    )
