"""Persistent index segments — cold start, equality, and corruption bars.

The serving tier holds its retrieval state in memory (inverted-index
postings, IVF vector cells); :mod:`repro.store` persists that state as
checksummed binary segments under a versioned manifest.  This
experiment drives the full persistence lifecycle on a ≥50k-document
catalog and renders a PASS/FAIL verdict per bar (the CI smoke greps
the artifact for ``FAIL``):

* **Cold start** — building the hybrid engine from the catalog
  (tokenize + add every document, encode every title, fit IVF cells)
  is timed against :meth:`~repro.search.hybrid.HybridSearchEngine.load`
  restoring the same state from segments.  The acceptance bar is a
  ≥5x restore speedup at full scale — persistence must beat rebuild
  by a margin, not a rounding error.
* **Equality** — the restored engine must rank seeded queries
  *identically* (same doc ids, same scores) to the live engine in all
  three retrieval modes (``lexical | semantic | hybrid``): the store
  round-trips exact state, not an approximation of it.
* **Churn + delta save** — after listing/delisting products, a second
  save must write delta segments (not full rewrites), and a reload
  must still match the live engine exactly.
* **Compaction** — folding the delta chain back into fresh full
  segments must shrink the store's file count and keep reloads exact.
* **Corruption sweep** — seeded bit-flips, truncations and zero-fills
  over the store's files must every one of them either leave loads
  byte-identical or raise a typed :class:`~repro.store.StoreError`.
  Zero silent wrong-result loads, ever; one silent load fails the bar.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.data.catalog import Catalog, CatalogConfig, CatalogGenerator
from repro.data.clicklog import ClickLogConfig
from repro.data.marketplace import MarketplaceConfig, generate_marketplace
from repro.embedding import DualEncoder, DualEncoderConfig
from repro.experiments.rendering import ascii_table
from repro.experiments.result import ExperimentResult
from repro.experiments.scale import SMALL, ExperimentScale
from repro.search import HybridConfig, HybridSearchEngine, SearchConfig
from repro.store import SegmentStore, StoreError

#: corpus floor — the acceptance bar reads "cold start from segments is
#: >= 5x faster than rebuild at 50k documents"
TARGET_DOCS = 50_000
NUM_SHARDS = 4
#: seeded queries compared live-vs-restored, per retrieval mode
NUM_QUERIES = 60
TOP_K = 10
#: products listed (half of them then delisted) before the delta save
CHURN_DOCS = 600
#: restore-speedup acceptance bar at full scale; smoke scales only
#: require restore-not-slower (tiny corpora make ratios meaningless)
SPEEDUP_BAR = 5.0
#: corpus size of the (separate, small) corruption-sweep store
CORRUPTION_DOCS = 240
#: seeded corruption trials over the small store's files
CORRUPTION_TRIALS = 60


def _build_catalog(scale: ExperimentScale) -> Catalog:
    generator = CatalogGenerator(CatalogConfig(seed=scale.seed))
    rng = np.random.default_rng(scale.seed)
    return Catalog(
        products=generator.sample_products(scale.scaled(TARGET_DOCS, 2_000), rng)
    )


def _make_encoder(scale: ExperimentScale) -> DualEncoder:
    """Untrained dual encoder — deterministic embeddings are all the
    store cares about (it persists index state, not model quality)."""
    market = generate_marketplace(
        MarketplaceConfig(
            catalog=CatalogConfig(products_per_category=scale.products_per_category),
            clicks=ClickLogConfig(num_sessions=200, intent_pool_size=40),
            seed=scale.seed,
        )
    )
    return DualEncoder(market.vocab, DualEncoderConfig(seed=scale.seed))


def _seeded_queries(catalog: Catalog, rng: np.random.Generator) -> list[str]:
    """Two-token title prefixes of uniformly sampled products."""
    picks = rng.choice(len(catalog.products), size=NUM_QUERIES, replace=True)
    return [
        " ".join(catalog.products[int(i)].title_tokens[:2]) for i in picks
    ]


def _match_rate(live, restored, queries: list[str]) -> dict[str, float]:
    """Fraction of queries per mode whose (doc_ids, scores) match exactly."""
    rates = {}
    for mode in ("lexical", "semantic", "hybrid"):
        matches = 0
        for query in queries:
            a = live.search(query, mode=mode)
            b = restored.search(query, mode=mode)
            if a.doc_ids[:TOP_K] == b.doc_ids[:TOP_K] and a.scores[:TOP_K] == b.scores[:TOP_K]:
                matches += 1
        rates[mode] = matches / len(queries)
    return rates


def _corruption_sweep(scale: ExperimentScale, root: Path) -> dict[str, int]:
    """Seeded corruption trials over a small store; returns the tally.

    Builds a fresh 2-shard lexical+vector store, records oracle
    results, then repeatedly corrupts one file (bit-flip, truncation,
    or zero-fill at a seeded offset), attempts a full load, and
    restores the pristine bytes.  Every trial must either raise a
    typed :class:`StoreError` or produce byte-identical results.
    """
    generator = CatalogGenerator(CatalogConfig(seed=scale.seed + 7))
    rng = np.random.default_rng(scale.seed + 7)
    catalog = Catalog(
        products=generator.sample_products(
            max(CORRUPTION_DOCS, scale.scaled(CORRUPTION_DOCS, CORRUPTION_DOCS)), rng
        )
    )
    encoder = _make_encoder(scale)
    engine = HybridSearchEngine(
        catalog,
        encoder,
        SearchConfig(ranker="bm25"),
        HybridConfig(nprobe=4),
        num_shards=2,
        num_clusters=8,
        parallel=False,
        seed=scale.seed,
    )
    engine.save(root)
    queries = _seeded_queries(catalog, rng)[:10]
    oracle = {
        (query, mode): engine.search(query, mode=mode)
        for query in queries
        for mode in ("lexical", "semantic", "hybrid")
    }
    files = sorted(path for path in root.rglob("*") if path.is_file())

    detected = identical = silent = 0
    for trial in range(scale.scaled(CORRUPTION_TRIALS, 24)):
        victim = files[trial % len(files)]
        pristine = victim.read_bytes()
        kind = trial % 3
        if kind == 0 and pristine:  # single bit flip
            at = int(rng.integers(len(pristine)))
            mutated = bytearray(pristine)
            mutated[at] ^= 1 << int(rng.integers(8))
            victim.write_bytes(bytes(mutated))
        elif kind == 1 and len(pristine) > 1:  # truncation
            keep = int(rng.integers(1, len(pristine)))
            victim.write_bytes(pristine[:keep])
        else:  # zero-fill a window
            at = int(rng.integers(max(1, len(pristine) - 8)))
            width = int(rng.integers(1, 9))
            mutated = bytearray(pristine)
            mutated[at : at + width] = b"\x00" * min(width, len(pristine) - at)
            victim.write_bytes(bytes(mutated))
        try:
            restored = HybridSearchEngine.load(
                root, catalog, encoder, SearchConfig(ranker="bm25"),
                HybridConfig(nprobe=4), parallel=False,
            )
        except StoreError:
            detected += 1
        else:
            wrong = False
            for (query, mode), want in oracle.items():
                got = restored.search(query, mode=mode)
                if got.doc_ids != want.doc_ids or got.scores != want.scores:
                    wrong = True
                    break
            if wrong:
                silent += 1
            else:
                identical += 1
        finally:
            victim.write_bytes(pristine)
    engine.close()
    return {
        "trials": detected + identical + silent,
        "detected": detected,
        "identical": identical,
        "silent": silent,
    }


def run(scale: ExperimentScale = SMALL) -> ExperimentResult:
    rng = np.random.default_rng(scale.seed + 3)
    catalog = _build_catalog(scale)
    encoder = _make_encoder(scale)
    churn_docs = scale.scaled(CHURN_DOCS, 60)

    # -- cold build (the rebuild baseline), timed ----------------------------
    started = time.perf_counter()
    engine = HybridSearchEngine(
        catalog,
        encoder,
        SearchConfig(ranker="bm25"),
        HybridConfig(nprobe=8),
        num_shards=NUM_SHARDS,
        num_clusters=32,
        parallel=False,
        seed=scale.seed,
    )
    build_seconds = time.perf_counter() - started

    workdir = Path(tempfile.mkdtemp(prefix="repro-persistence-"))
    try:
        root = workdir / "store"

        started = time.perf_counter()
        engine.save(root)
        save_seconds = time.perf_counter() - started

        # -- cold start from segments, timed (best of rounds) ----------------
        load_seconds = float("inf")
        restored = None
        for _ in range(scale.timing_rounds(3)):
            started = time.perf_counter()
            restored = HybridSearchEngine.load(
                root, catalog, encoder, SearchConfig(ranker="bm25"),
                HybridConfig(nprobe=8), parallel=False,
            )
            load_seconds = min(load_seconds, time.perf_counter() - started)
        speedup = build_seconds / load_seconds

        # -- exact result equality, all three modes --------------------------
        queries = _seeded_queries(catalog, rng)
        rates = _match_rate(engine, restored, queries)

        # -- churn -> delta save -> reload equality --------------------------
        generator = CatalogGenerator(CatalogConfig(seed=scale.seed))
        fresh = generator.sample_products(
            churn_docs, rng, start_id=catalog.next_product_id()
        )
        for product in fresh:
            engine.add_product(product)
        for product in fresh[: churn_docs // 2]:
            engine.remove_product(product.product_id)

        started = time.perf_counter()
        engine.save(root)
        delta_save_seconds = time.perf_counter() - started
        lexical_store = SegmentStore(root / "lexical", "lexical")
        vector_store = SegmentStore(root / "vector", "vector")
        delta_segments = sum(
            0 if ref.is_full else 1
            for store in (lexical_store, vector_store)
            for ref in store.manifest().segments
        )
        restored = HybridSearchEngine.load(
            root, catalog, encoder, SearchConfig(ranker="bm25"),
            HybridConfig(nprobe=8), parallel=False,
        )
        churn_queries = queries[:20] + [
            " ".join(p.title_tokens[:2]) for p in fresh[churn_docs // 2 :][:10]
        ]
        churn_rates = _match_rate(engine, restored, churn_queries)

        # -- compaction: fewer files, still exact ----------------------------
        files_before = len(list(root.rglob("*.seg")))
        lexical_store.compact()
        vector_store.compact()
        files_after = len(list(root.rglob("*.seg")))
        restored = HybridSearchEngine.load(
            root, catalog, encoder, SearchConfig(ranker="bm25"),
            HybridConfig(nprobe=8), parallel=False,
        )
        compact_rates = _match_rate(engine, restored, churn_queries)
        store_bytes = sum(
            path.stat().st_size for path in root.rglob("*") if path.is_file()
        )
        engine.close()

        # -- corruption sweep on its own small store -------------------------
        sweep = _corruption_sweep(scale, workdir / "corruption")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    speedup_bar = SPEEDUP_BAR if scale.workload_factor >= 1.0 else 1.0
    exact = all(
        rate == 1.0
        for group in (rates, churn_rates, compact_rates)
        for rate in group.values()
    )
    verdicts = {
        "cold_start": speedup >= speedup_bar,
        "equality": exact,
        "delta_save": delta_segments > 0,
        "compaction": files_after < files_before,
        "corruption": sweep["silent"] == 0 and sweep["trials"] > 0,
    }

    measured = {
        "docs_indexed": len(catalog.products) - churn_docs + churn_docs // 2,
        "num_shards": NUM_SHARDS,
        "build_seconds": build_seconds,
        "save_seconds": save_seconds,
        "load_seconds": load_seconds,
        "restore_speedup": speedup,
        "speedup_bar": speedup_bar,
        "match_rate_lexical": rates["lexical"],
        "match_rate_semantic": rates["semantic"],
        "match_rate_hybrid": rates["hybrid"],
        "churn_docs_added": churn_docs,
        "churn_docs_removed": churn_docs // 2,
        "delta_save_seconds": delta_save_seconds,
        "delta_segments": delta_segments,
        "churn_match_rate": min(churn_rates.values()),
        "files_before_compaction": files_before,
        "files_after_compaction": files_after,
        "compact_match_rate": min(compact_rates.values()),
        "store_bytes": store_bytes,
        "corruption_trials": sweep["trials"],
        "corruption_detected": sweep["detected"],
        "corruption_identical": sweep["identical"],
        "corruption_silent": sweep["silent"],
        "all_passed": all(verdicts.values()),
    }

    def verdict(name: str) -> str:
        return "PASS" if verdicts[name] else "FAIL"

    rows = [
        [
            "cold start from segments",
            f"{load_seconds:.3f}s vs {build_seconds:.3f}s rebuild",
            f"{speedup:.1f}x (bar >= {speedup_bar:.0f}x) {verdict('cold_start')}",
        ],
        [
            "exact result equality",
            f"{len(queries)} queries x 3 modes",
            f"match {min(rates.values()):.3f} {verdict('equality')}",
        ],
        [
            "churn -> delta save",
            f"+{churn_docs}/-{churn_docs // 2} docs, {delta_segments} delta segs",
            f"match {min(churn_rates.values()):.3f} {verdict('delta_save')}",
        ],
        [
            "compaction",
            f"{files_before} -> {files_after} segment files",
            f"match {min(compact_rates.values()):.3f} {verdict('compaction')}",
        ],
        [
            "corruption sweep",
            f"{sweep['trials']} trials: {sweep['detected']} detected, "
            f"{sweep['identical']} benign",
            f"{sweep['silent']} silent {verdict('corruption')}",
        ],
    ]
    rendered = ascii_table(["bar", "result", "verdict"], rows, float_format="{:.3f}")
    return ExperimentResult(
        experiment_id="persistence",
        title="Persistent index segments: cold start, equality, corruption bars",
        measured=measured,
        paper={
            "claim": "a serving index restores from disk without a catalog rebuild",
            "scale": "production indexes restart from segment files, not raw data",
        },
        rendered=rendered,
        notes=(
            "Restore times are best-of-rounds over checksummed segments; "
            "equality is exact (doc ids AND scores) across lexical/semantic/"
            "hybrid modes, including after churn (delta segments) and "
            "compaction.  Every seeded corruption must be detected by a typed "
            "StoreError or leave results byte-identical — a single silent "
            "wrong-result load fails the bar."
        ),
    )
