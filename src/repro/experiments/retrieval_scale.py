"""Retrieval at catalog scale — the engine behind the Section III-H story.

The paper's system-cost claims (Figure 5, Table V) assume the retrieval
layer itself can keep up with production traffic.  This experiment builds
a ≥50k-document synthetic catalog and replays the same rewrite-augmented
queries through two implementations:

* **seed path** — the pre-rewrite implementation, reproduced verbatim
  here: one hash set materialized per term, set-AND per query, set-union
  across rewrites, then a full O(n log n) sort of every candidate;
* **engine path** — the current ``repro.search`` engine: one merged
  syntax tree (Section III-H), galloping sorted-postings intersection,
  vectorized BM25 scoring, and a bounded-heap top-k.

Both paths score with the same BM25 formula, so their top-k lists must be
*identical* — the speedup is pure mechanics, not a relevance change.  The
experiment also fans the same queries out over a 4-shard
:class:`~repro.search.ShardedIndex` (global-statistics ranking, so the
merged top-k again matches the unsharded engine exactly), exercises
incremental ``add_document``/``remove_document`` churn, and re-checks the
Figure 5 invariant that the merged tree's postings cost never exceeds the
separate trees'.

The worker-scaling sweep replays the same requests through 1/2/4/8
:class:`~repro.cluster.ProcessBackend` shard workers (each cold-started
from segments) against the in-process thread fan-out: results must stay
identical to the unsharded engine at every worker count, and on machines
with the cores to show it, 8 workers must beat the thread baseline by a
cores-gated qps ratio (no GIL on the scoring path).
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.data.catalog import CATEGORY_SPECS, CatalogGenerator, Catalog, CatalogConfig
from repro.experiments.rendering import ascii_table
from repro.experiments.result import ExperimentResult
from repro.experiments.scale import ExperimentScale, SMALL
from repro.search import BM25Ranker, SearchConfig, SearchEngine, ShardedSearchEngine
from repro.text import tokenize

#: corpus floor — the acceptance bar is "a ≥50k-doc synthetic catalog"
#: (scaled down only by a sub-1.0 ``ExperimentScale.workload_factor``)
TARGET_DOCS = 50_000
NUM_QUERIES = 30
TOP_K = 100
TIMING_ROUNDS = 3
NUM_SHARDS = 4
CHURN_DOCS = 500
#: process-worker counts swept against the thread-backend baseline
WORKER_COUNTS = (1, 2, 4, 8)
#: (cores floor, required qps ratio of 8 process workers over threads);
#: near-linear scaling is only observable when the cores exist, so the
#: bar is gated on the machine — one core means no bar at all (SKIP)
WORKER_QPS_BARS = ((8, 3.0), (4, 1.5), (2, 1.1))


def _worker_qps_bar(cores: int) -> float | None:
    """The cores-gated qps-ratio bar (None below two cores)."""
    for floor, bar in WORKER_QPS_BARS:
        if cores >= floor:
            return bar
    return None


def _build_catalog(scale: ExperimentScale) -> Catalog:
    generator = CatalogGenerator(CatalogConfig(seed=scale.seed))
    rng = np.random.default_rng(scale.seed)
    return Catalog(products=generator.sample_products(scale.scaled(TARGET_DOCS, 2_000), rng))


def _build_queries(scale: ExperimentScale) -> list[tuple[str, list[str]]]:
    """Rewrite-augmented requests over the catalog vocabulary.

    Each request is ``brand + canonical-category + feature`` with two
    rewrites that keep the brand/category tokens and swap the feature —
    the token-sharing shape that makes Section III-H's merged tree pay.
    """
    rng = np.random.default_rng(scale.seed + 1)
    names = sorted(CATEGORY_SPECS)
    requests: list[tuple[str, list[str]]] = []
    for i in range(NUM_QUERIES):
        spec = CATEGORY_SPECS[names[i % len(names)]]
        brand = str(rng.choice(spec.brands))
        features = [str(f) for f in rng.permutation(np.array(spec.features))]
        base = f"{brand} {' '.join(spec.canonical)}"
        query = f"{base} {features[0]}"
        rewrites = [f"{base} {features[1]}", f"{base} {features[2]}"]
        requests.append((query, rewrites))
    return requests


# -- the seed path, reproduced for comparison --------------------------------
def _seed_intersect(index, tokens: list[str]) -> set[int]:
    """Verbatim seed semantics: a ``set(postings)`` per term, cheapest first."""
    ordered = sorted(set(tokens), key=lambda t: (index.postings_length(t), t))
    result: set[int] | None = None
    for token in ordered:
        postings = set(index.postings(token))
        result = postings if result is None else result & postings
        if not result:
            break
    return result or set()


def _seed_search(index, ranker, query: str, rewrites: list[str], k: int) -> list[int]:
    """Set-AND per query variant, set-union, score-all, full sort, cap k."""
    candidates: set[int] = set()
    for text in [query, *rewrites]:
        tokens = tokenize(text)
        if tokens:
            candidates |= _seed_intersect(index, tokens)
    query_tokens = tokenize(query)
    ordered = sorted(
        candidates,
        key=lambda doc_id: (-ranker.score_doc(index, query_tokens, doc_id), doc_id),
    )
    return ordered[:k]


def run(scale: ExperimentScale = SMALL) -> ExperimentResult:
    catalog = _build_catalog(scale)
    requests = _build_queries(scale)
    timing_rounds = scale.timing_rounds(TIMING_ROUNDS)
    churn_docs = scale.scaled(CHURN_DOCS, 50)
    config = SearchConfig(max_candidates=TOP_K, ranker="bm25")
    engine = SearchEngine(catalog, config)
    ranker: BM25Ranker = engine.ranker

    # Warm-up pass: also checks result parity between the two paths.
    matches = 0
    candidate_counts: list[int] = []
    for query, rewrites in requests:
        expected = _seed_search(engine.index, ranker, query, rewrites, TOP_K)
        outcome = engine.search(query, rewrites)
        candidate_counts.append(len(outcome.doc_ids))
        if outcome.doc_ids == expected:
            matches += 1
    topk_match_rate = matches / len(requests)

    started = time.perf_counter()
    for _ in range(timing_rounds):
        for query, rewrites in requests:
            _seed_search(engine.index, ranker, query, rewrites, TOP_K)
    seed_seconds = time.perf_counter() - started

    started = time.perf_counter()
    for _ in range(timing_rounds):
        for query, rewrites in requests:
            engine.search(query, rewrites)
    engine_seconds = time.perf_counter() - started
    total_queries = timing_rounds * len(requests)

    # Figure 5 invariant at scale: merged tree never costs more postings.
    merged_postings = 0
    separate_postings = 0
    for query, rewrites in requests:
        costs = engine.compare_costs(query, rewrites)
        merged_postings += int(costs["merged_postings"])
        separate_postings += int(costs["separate_postings"])

    # Shard fan-out: merged top-k must equal the unsharded engine's.
    sharded = ShardedSearchEngine(
        catalog, config, num_shards=NUM_SHARDS, parallel=True
    )
    unsharded_topk = [engine.search(q, rw).doc_ids for q, rw in requests]
    started = time.perf_counter()
    sharded_topk = [sharded.search(q, rw).doc_ids for q, rw in requests]
    sharded_seconds = time.perf_counter() - started
    sharded_matches = sum(a == b for a, b in zip(sharded_topk, unsharded_topk))

    # Worker scaling: the same corpus behind 1/2/4/8 process workers,
    # each cold-started from segments, against the thread fan-out
    # baseline.  Process results must equal the unsharded top-k exactly
    # (equivalence by construction); the qps bar is cores-gated.
    cores = os.cpu_count() or 1
    thread_engine = ShardedSearchEngine(
        catalog, config, num_shards=max(WORKER_COUNTS), parallel=True
    )
    started = time.perf_counter()
    for _ in range(timing_rounds):
        for query, rewrites in requests:
            thread_engine.search(query, rewrites)
    thread_qps = total_queries / (time.perf_counter() - started)
    thread_engine.close()

    worker_qps: dict[int, float] = {}
    worker_matches = 0
    worker_compared = 0
    sweep_root = Path(tempfile.mkdtemp(prefix="repro-worker-sweep-"))
    try:
        for workers in WORKER_COUNTS:
            build = ShardedSearchEngine(
                catalog, config, num_shards=workers, parallel=False
            )
            store = sweep_root / f"workers-{workers}"
            build.save(store)
            build.close()
            process_engine = ShardedSearchEngine.load(
                catalog, store, config, backend="process"
            )
            try:
                for (query, rewrites), expected in zip(requests, unsharded_topk):
                    worker_compared += 1
                    if process_engine.search(query, rewrites).doc_ids == expected:
                        worker_matches += 1
                started = time.perf_counter()
                for _ in range(timing_rounds):
                    for query, rewrites in requests:
                        process_engine.search(query, rewrites)
                worker_qps[workers] = total_queries / (time.perf_counter() - started)
            finally:
                process_engine.close()
    finally:
        shutil.rmtree(sweep_root, ignore_errors=True)
    scaling_ratio = worker_qps[max(WORKER_COUNTS)] / thread_qps
    qps_bar = _worker_qps_bar(cores)
    bar_met = qps_bar is None or scaling_ratio >= qps_bar

    # Incremental churn: the catalog is no longer build-once.
    generator = CatalogGenerator(CatalogConfig(seed=scale.seed))
    churn_rng = np.random.default_rng(scale.seed + 2)
    fresh = generator.sample_products(
        churn_docs, churn_rng, start_id=catalog.next_product_id()
    )
    for product in fresh:
        catalog.add_product(product)
        sharded.add_document(product.product_id, product.title_tokens)
    for product in fresh[: churn_docs // 2]:
        catalog.remove_product(product.product_id)
        sharded.remove_document(product.product_id)
    probe = fresh[-1]
    probe_hit = probe.product_id in sharded.search(probe.title).doc_ids
    docs_after_churn = len(sharded.index)
    sharded.close()

    measured = {
        "docs_indexed": len(engine.index),
        "num_queries": len(requests),
        "top_k": TOP_K,
        "mean_candidates": float(np.mean(candidate_counts)),
        "seed_ms_per_query": seed_seconds * 1000.0 / total_queries,
        "engine_ms_per_query": engine_seconds * 1000.0 / total_queries,
        "speedup": seed_seconds / engine_seconds,
        "topk_match_rate": topk_match_rate,
        "merged_postings": merged_postings,
        "separate_postings": separate_postings,
        "postings_ratio": merged_postings / max(1, separate_postings),
        "num_shards": NUM_SHARDS,
        "sharded_match_rate": sharded_matches / len(requests),
        "sharded_ms_per_query": sharded_seconds * 1000.0 / len(requests),
        "churn_docs_added": churn_docs,
        "churn_docs_removed": churn_docs // 2,
        "docs_after_churn": docs_after_churn,
        "churn_probe_found": bool(probe_hit),
        "worker_cpu_count": cores,
        "worker_thread_qps": thread_qps,
        **{
            f"worker_qps_{workers}": qps for workers, qps in worker_qps.items()
        },
        "worker_scaling_ratio": scaling_ratio,
        "worker_match_rate": worker_matches / worker_compared,
        "worker_qps_bar": 0.0 if qps_bar is None else qps_bar,
        "worker_bar_met": bool(bar_met),
    }
    rows = [
        ["seed path (sets + full sort)", f"{measured['seed_ms_per_query']:.2f} ms/q", "-"],
        [
            "engine (gallop + heap top-k)",
            f"{measured['engine_ms_per_query']:.2f} ms/q",
            f"{measured['speedup']:.1f}x",
        ],
        [
            f"sharded fan-out ({NUM_SHARDS} shards)",
            f"{measured['sharded_ms_per_query']:.2f} ms/q",
            f"match {measured['sharded_match_rate']:.0%}",
        ],
        [
            "merged vs separate postings",
            f"{merged_postings} vs {separate_postings}",
            f"ratio {measured['postings_ratio']:.3f}",
        ],
        [
            "incremental churn",
            f"+{churn_docs}/-{churn_docs // 2} docs",
            f"{docs_after_churn} indexed, probe {'hit' if probe_hit else 'MISS'}",
        ],
        [
            f"thread fan-out baseline ({max(WORKER_COUNTS)} shards)",
            f"{thread_qps:.0f} q/s",
            "-",
        ],
        *[
            [
                f"process workers x{workers}",
                f"{qps:.0f} q/s",
                f"{qps / thread_qps:.2f}x threads, "
                f"match {measured['worker_match_rate']:.0%}",
            ]
            for workers, qps in worker_qps.items()
        ],
        [
            "worker scaling verdict",
            f"{scaling_ratio:.2f}x @ {cores} cores",
            (
                "SKIP (bar needs >= 2 cores)"
                if qps_bar is None
                else ("PASS" if bar_met else "FAIL")
            )
            + f" (bar {qps_bar or 0.0:.1f}x)",
        ],
    ]
    rendered = ascii_table(["path", "latency", "vs seed"], rows, float_format="{:.3f}")
    return ExperimentResult(
        experiment_id="retrieval_scale",
        title="Sharded top-k retrieval at catalog scale (Section III-H engine)",
        measured=measured,
        paper={
            "claim": "tree merging keeps multi-query retrieval near single-query cost",
            "scale": "production index behind the serving tier",
        },
        rendered=rendered,
        notes=(
            "Both paths rank with the same BM25 scores, so top-k lists are "
            "identical; the speedup is galloping intersection + bounded-heap "
            "selection vs per-term sets + full sort."
        ),
    )
