"""Experiment scale presets.

The paper trains on 300M pairs with 512-d transformers on GPUs; this
reproduction runs on NumPy/CPU, so every experiment takes an
:class:`ExperimentScale` that sets marketplace size, model size and step
budgets.  ``SMALL`` keeps the full benchmark suite in CI-friendly time;
``DEFAULT`` gives cleaner curves when you have minutes instead of seconds.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ExperimentScale:
    name: str
    # marketplace
    products_per_category: int
    num_sessions: int
    # models
    d_model: int
    num_heads: int
    d_ff: int
    forward_layers: int
    backward_layers: int
    # training
    warmup_steps: int
    joint_steps: int
    batch_size: int
    beam_width: int
    top_n: int
    max_title_len: int
    # evaluation
    eval_queries: int
    human_eval_queries: int
    abtest_days: int
    abtest_sessions_per_day: int
    seed: int = 0


SMALL = ExperimentScale(
    name="small",
    products_per_category=20,
    num_sessions=6000,
    d_model=32,
    num_heads=4,
    d_ff=64,
    forward_layers=2,
    backward_layers=1,
    warmup_steps=170,
    joint_steps=170,
    batch_size=16,
    beam_width=3,
    top_n=5,
    max_title_len=14,
    eval_queries=24,
    human_eval_queries=40,
    abtest_days=2,
    abtest_sessions_per_day=60,
)

DEFAULT = ExperimentScale(
    name="default",
    products_per_category=30,
    num_sessions=12000,
    d_model=48,
    num_heads=4,
    d_ff=96,
    forward_layers=2,
    backward_layers=1,
    warmup_steps=300,
    joint_steps=300,
    batch_size=16,
    beam_width=3,
    top_n=8,
    max_title_len=16,
    eval_queries=48,
    human_eval_queries=120,
    abtest_days=10,
    abtest_sessions_per_day=200,
)
