"""Experiment scale presets.

The paper trains on 300M pairs with 512-d transformers on GPUs; this
reproduction runs on NumPy/CPU, so every experiment takes an
:class:`ExperimentScale` that sets marketplace size, model size and step
budgets.  ``SMALL`` keeps the full benchmark suite in CI-friendly time;
``DEFAULT`` gives cleaner curves when you have minutes instead of seconds;
``TINY`` exists for smoke tests only — every experiment must *run* and
produce its artifact in seconds, with no pretence of meaningful numbers
(the CLI smoke test drives all registered experiments at this scale).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ExperimentScale:
    name: str
    # marketplace
    products_per_category: int
    num_sessions: int
    # models
    d_model: int
    num_heads: int
    d_ff: int
    forward_layers: int
    backward_layers: int
    # training
    warmup_steps: int
    joint_steps: int
    batch_size: int
    beam_width: int
    top_n: int
    max_title_len: int
    # evaluation
    eval_queries: int
    human_eval_queries: int
    abtest_days: int
    abtest_sessions_per_day: int
    seed: int = 0
    #: multiplier for the scale-independent serving/retrieval workloads
    #: (corpus sizes, replay lengths, timing rounds).  1.0 keeps every
    #: acceptance-bar size (e.g. the ≥50k-doc retrieval corpus); TINY
    #: shrinks them to smoke-test proportions.
    workload_factor: float = 1.0

    def scaled(self, n: int, floor: int) -> int:
        """``n`` scaled by :attr:`workload_factor`, never below ``floor``.

        The one idiom every scale-independent experiment uses to shrink
        its workload constants at smoke scales while keeping the
        acceptance-bar sizes intact at factor 1.0."""
        return max(floor, int(n * self.workload_factor))

    def timing_rounds(self, rounds: int) -> int:
        """Full timing repeats at factor ≥ 1; a single round for smoke
        scales, where wall-clock comparisons are not meaningful anyway."""
        return rounds if self.workload_factor >= 1.0 else 1


SMALL = ExperimentScale(
    name="small",
    products_per_category=20,
    num_sessions=6000,
    d_model=32,
    num_heads=4,
    d_ff=64,
    forward_layers=2,
    backward_layers=1,
    warmup_steps=170,
    joint_steps=170,
    batch_size=16,
    beam_width=3,
    top_n=5,
    max_title_len=14,
    eval_queries=24,
    human_eval_queries=40,
    abtest_days=2,
    abtest_sessions_per_day=60,
)

TINY = ExperimentScale(
    name="tiny",
    products_per_category=6,
    num_sessions=500,
    d_model=16,
    num_heads=2,
    d_ff=32,
    forward_layers=1,
    backward_layers=1,
    warmup_steps=8,
    joint_steps=8,
    batch_size=8,
    beam_width=2,
    top_n=3,
    max_title_len=12,
    eval_queries=6,
    human_eval_queries=10,
    abtest_days=1,
    abtest_sessions_per_day=20,
    workload_factor=0.04,
)

DEFAULT = ExperimentScale(
    name="default",
    products_per_category=30,
    num_sessions=12000,
    d_model=48,
    num_heads=4,
    d_ff=96,
    forward_layers=2,
    backward_layers=1,
    warmup_steps=300,
    joint_steps=300,
    batch_size=16,
    beam_width=3,
    top_n=8,
    max_title_len=16,
    eval_queries=48,
    human_eval_queries=120,
    abtest_days=10,
    abtest_sessions_per_day=200,
)
