"""Experiment result container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class ExperimentResult:
    """Outcome of one table/figure reproduction.

    ``measured`` holds this run's numbers, ``paper`` the published
    reference values (same keys where comparable), and ``rendered`` an
    ASCII rendering suitable for terminal display and EXPERIMENTS.md.
    """

    experiment_id: str
    title: str
    measured: dict[str, Any]
    paper: dict[str, Any] = field(default_factory=dict)
    rendered: str = ""
    notes: str = ""

    def render(self) -> str:
        header = f"== {self.experiment_id}: {self.title} =="
        parts = [header]
        if self.rendered:
            parts.append(self.rendered)
        if self.notes:
            parts.append(f"note: {self.notes}")
        return "\n".join(parts)
