"""Online freshness under churn — the serving tier against live traffic.

Section III-G's deployment precomputes rewrites for head queries, but the
catalog and click log drift while those entries sit in the key-value
store.  This experiment replays one head-skewed traffic stream, with
catalog churn events interleaved, through two otherwise-identical serving
stacks (bounded TTL cache + rule-dictionary fallback + sharded retrieval):

* **baseline** — no freshness management: entries serve stale until their
  TTL runs out, then fault through the model tier;
* **freshness** — a :class:`~repro.online.FreshnessController`
  invalidates + re-populates the affected head entries on every churn
  event, sweeps expired entries out of capacity, and refresh-ahead
  re-populates entries close to expiry.

Both arms replay the *same* precomputed schedule on their own catalog
copies under a virtual clock, so the only difference is policy.  The
claim under test: the controller cuts the stale-or-empty serve rate while
keeping throughput within 10% of the baseline — freshness is close to
free because invalidation is targeted (only churned categories) and
re-population costs one cheap rewrite per affected head query.
"""

from __future__ import annotations

from repro.baselines import RuleBasedRewriter
from repro.core import RewriteCache, ServingConfig, ServingPipeline
from repro.data.catalog import CatalogConfig, CatalogGenerator, alias_to_canonical
from repro.data.clicklog import ClickLogConfig, ClickLogSimulator
from repro.experiments.rendering import ascii_table
from repro.experiments.result import ExperimentResult
from repro.experiments.scale import ExperimentScale, SMALL
from repro.online import (
    FreshnessController,
    ReplayConfig,
    ReplayReport,
    TrafficReplay,
    VirtualClock,
)
from repro.search import SearchConfig, ShardedSearchEngine

#: catalog/traffic shape — independent of ExperimentScale so the replay
#: stays a serving-layer workload, not a model-training one
PRODUCTS_PER_CATEGORY = 40
NUM_SESSIONS = 2_500
#: cache tier: TTL'd bounded sharded LRU, clocked by the replay
CACHE_SHARDS = 4
TTL_SECONDS = 120.0
REFRESH_MARGIN_SECONDS = 15.0
#: controller maintenance cadence: scan at TTL granularity, not per batch
#: (must stay below REFRESH_MARGIN_SECONDS so every expiry window is seen)
TICK_INTERVAL_SECONDS = 10.0
MAX_REWRITES = 3
#: retrieval fan-out of the end-to-end probes
NUM_SHARDS = 4
TOP_K = 20
#: timing repeats per arm — the replay is deterministic, so repeats agree
#: on every counter and only wall time varies; best-of-N makes the
#: throughput comparison robust to scheduler noise on a sub-second run
TIMING_ROUNDS = 3


def _build_arm(
    replay: TrafficReplay,
    generator: CatalogGenerator,
    rewriter: RuleBasedRewriter,
    *,
    with_freshness: bool,
    arm: str,
) -> ReplayReport:
    """One serving stack on its own catalog copy, replayed over the schedule."""
    catalog = generator.generate()
    # Serial fan-out: at this catalog size thread scheduling costs more
    # than it saves, and the arm-vs-arm throughput comparison should not
    # inherit executor jitter.  The sharded churn/merge semantics are
    # identical either way.
    engine = ShardedSearchEngine(
        catalog,
        SearchConfig(max_candidates=TOP_K, ranker="bm25"),
        num_shards=NUM_SHARDS,
        parallel=False,
    )
    clock = VirtualClock()
    head = replay.head_queries()
    capacity = max(CACHE_SHARDS, int(len(head) * 1.25))
    cache = RewriteCache(
        capacity=capacity, shards=CACHE_SHARDS, ttl_seconds=TTL_SECONDS, clock=clock.now
    )
    cache.populate(rewriter, list(head), k=MAX_REWRITES)
    pipeline = ServingPipeline(
        cache,
        rewriter,
        ServingConfig(max_rewrites=MAX_REWRITES, cache_model_results=True),
        search_engine=engine,
    )
    controller = (
        FreshnessController(
            cache,
            rewriter,
            head,
            max_rewrites=MAX_REWRITES,
            refresh_margin_seconds=REFRESH_MARGIN_SECONDS,
            tick_interval_seconds=TICK_INTERVAL_SECONDS,
        )
        if with_freshness
        else None
    )
    try:
        return replay.run(pipeline, clock, controller, arm=arm)
    finally:
        engine.close()


def run(
    scale: ExperimentScale = SMALL, config: ReplayConfig | None = None
) -> ExperimentResult:
    # A sub-1.0 workload factor (the TINY smoke preset) shrinks the stream
    # and skips the timing repeats; at factor 1.0 the defaults are exactly
    # the ≥10k-request acceptance workload.
    cfg = config or ReplayConfig(
        seed=scale.seed,
        num_requests=scale.scaled(ReplayConfig.num_requests, 600),
        churn_every=scale.scaled(ReplayConfig.churn_every, 150),
    )
    timing_rounds = scale.timing_rounds(TIMING_ROUNDS)
    generator = CatalogGenerator(
        CatalogConfig(products_per_category=PRODUCTS_PER_CATEGORY, seed=scale.seed)
    )
    base_catalog = generator.generate()
    click_log = ClickLogSimulator(
        base_catalog,
        config=ClickLogConfig(
            num_sessions=scale.scaled(NUM_SESSIONS, 400), seed=scale.seed
        ),
    ).simulate()
    replay = TrafficReplay(click_log, generator, cfg)
    rewriter = RuleBasedRewriter(alias_to_canonical())

    # Alternate which arm runs first in each timing round so systematic
    # drift (thermal throttling, rising machine load) charges both arms
    # equally; best-of-N per arm then absorbs one-off GC/scheduler spikes.
    # Each round rebuilds the full stack from the same seed, so repeats
    # agree on every counter and only wall time varies.
    baseline_rounds: list[ReplayReport] = []
    fresh_rounds: list[ReplayReport] = []
    for round_index in range(timing_rounds):
        order = (False, True) if round_index % 2 == 0 else (True, False)
        for with_freshness in order:
            report = _build_arm(
                replay,
                generator,
                rewriter,
                with_freshness=with_freshness,
                arm="freshness" if with_freshness else "baseline",
            )
            (fresh_rounds if with_freshness else baseline_rounds).append(report)
    baseline = min(baseline_rounds, key=lambda report: report.seconds)
    fresh = min(fresh_rounds, key=lambda report: report.seconds)
    freshness = fresh.freshness

    measured = {
        "requests_per_arm": baseline.requests,
        "churn_events": baseline.churn_events,
        "head_queries": len(replay.head_queries()),
        "baseline_hit_rate": baseline.stats.lifetime_hit_rate,
        "freshness_hit_rate": fresh.stats.lifetime_hit_rate,
        "baseline_stale_rate": baseline.stale_rate,
        "freshness_stale_rate": fresh.stale_rate,
        "baseline_empty_rate": baseline.empty_rate,
        "freshness_empty_rate": fresh.empty_rate,
        "baseline_stale_or_empty_rate": baseline.stale_or_empty_rate,
        "freshness_stale_or_empty_rate": fresh.stale_or_empty_rate,
        "baseline_qps": baseline.qps,
        "freshness_qps": fresh.qps,
        "qps_ratio": fresh.qps / baseline.qps if baseline.qps else 0.0,
        "baseline_expirations": baseline.cache_expirations,
        "freshness_expirations": fresh.cache_expirations,
        "baseline_evictions": baseline.cache_evictions,
        "freshness_evictions": fresh.cache_evictions,
        "baseline_searches": baseline.searches,
        "freshness_searches": fresh.searches,
        "baseline_dead_doc_hits": baseline.dead_doc_hits,
        "freshness_dead_doc_hits": fresh.dead_doc_hits,
        "invalidated": freshness.invalidated,
        "refreshed": freshness.refreshed,
        "proactive_refreshed": freshness.proactive_refreshed,
        "purged_expired": freshness.purged_expired,
        "baseline_p99_ms": baseline.stats.p99_latency_ms(),
        "freshness_p99_ms": fresh.stats.p99_latency_ms(),
    }
    rows = [
        ["requests / churn events", f"{baseline.requests}", f"{baseline.churn_events} churns"],
        [
            "stale serves",
            f"{baseline.stats.total_stale} ({measured['baseline_stale_rate']:.1%})",
            f"{fresh.stats.total_stale} ({measured['freshness_stale_rate']:.1%})",
        ],
        [
            "stale-or-empty rate",
            f"{measured['baseline_stale_or_empty_rate']:.1%}",
            f"{measured['freshness_stale_or_empty_rate']:.1%}",
        ],
        [
            "cache hit rate",
            f"{measured['baseline_hit_rate']:.1%}",
            f"{measured['freshness_hit_rate']:.1%}",
        ],
        [
            "throughput",
            f"{measured['baseline_qps']:.0f} req/s",
            f"{measured['freshness_qps']:.0f} req/s ({measured['qps_ratio']:.2f}x)",
        ],
        [
            "expirations / evictions",
            f"{baseline.cache_expirations} / {baseline.cache_evictions}",
            f"{fresh.cache_expirations} / {fresh.cache_evictions}",
        ],
        [
            "controller activity",
            "-",
            (
                f"{freshness.invalidated} invalidated, {freshness.refreshed} refreshed, "
                f"{freshness.proactive_refreshed} ahead, {freshness.purged_expired} purged"
            ),
        ],
        [
            "delisted docs surfaced",
            f"{baseline.dead_doc_hits} in {baseline.searches} probes",
            f"{fresh.dead_doc_hits} in {fresh.searches} probes",
        ],
    ]
    rendered = ascii_table(["quantity", "baseline", "freshness"], rows, float_format="{:.3f}")
    return ExperimentResult(
        experiment_id="online_replay",
        title="Online freshness under catalog churn (live-traffic replay)",
        measured=measured,
        paper={
            "claim": "precomputed head rewrites stay servable as catalog drifts",
            "setting": "Section III-G cache tier under production churn",
        },
        rendered=rendered,
        notes=(
            "Both arms replay the identical precomputed stream on their own "
            "catalog copies under a virtual clock; the freshness arm adds "
            "churn-driven invalidation + re-population, expired-entry sweeps, "
            "and refresh-ahead, cutting stale serves at matched throughput."
        ),
    )
