"""Figure 9 — pure RNN vs hybrid (transformer encoder + RNN decoder) on
direct query-to-query training.

Section III-G's serving simplification trains a single q2q model on
synonymous query pairs (shared-click queries).  The paper finds the hybrid
clearly better than the pure-RNN model, concluding the transformer encoder
is worth keeping even under latency constraints.
"""

from __future__ import annotations

from repro.data.dataset import ParallelCorpus, train_eval_split
from repro.experiments.rendering import ascii_table, render_series
from repro.experiments.result import ExperimentResult
from repro.experiments.scale import ExperimentScale, SMALL
from repro.experiments.shared import build_context
from repro.models import HybridNMT, ModelConfig, RecurrentNMT
from repro.training import SeparateTrainer, TrainingConfig, teacher_forced_metrics


def run(scale: ExperimentScale = SMALL) -> ExperimentResult:
    context = build_context(scale)
    marketplace = context.marketplace
    synonym_pairs = marketplace.synonym_pairs
    if len(synonym_pairs) < 20:
        raise RuntimeError("too few synonym pairs for the q2q experiment")
    train_pairs, eval_pairs = train_eval_split(synonym_pairs, 0.1)
    corpus = ParallelCorpus.from_pairs(train_pairs, marketplace.vocab)
    eval_corpus = ParallelCorpus.from_pairs(eval_pairs or train_pairs[:32], marketplace.vocab)

    base = ModelConfig(
        vocab_size=len(marketplace.vocab),
        d_model=scale.d_model,
        num_heads=scale.num_heads,
        d_ff=scale.d_ff,
        encoder_layers=1,
        decoder_layers=1,
        dropout=0.0,
        cell_type="rnn",
        seed=scale.seed,
    )
    steps = scale.warmup_steps
    eval_every = max(1, steps // 8)

    results = {}
    curves = {}
    for name, model in (
        ("rnn", RecurrentNMT(base, use_attention=True)),
        ("hybrid", HybridNMT(base)),
    ):
        trainer = SeparateTrainer(
            model, corpus, TrainingConfig(batch_size=16, max_steps=steps, seed=scale.seed)
        )
        points: dict[str, list] = {"steps": [], "perplexity": [], "accuracy": [], "log_prob": []}
        for step in range(1, steps + 1):
            trainer.train_step()
            if step % eval_every == 0 or step == steps:
                metrics = teacher_forced_metrics(model, eval_corpus, max_batches=4)
                model.train()
                points["steps"].append(step)
                for key in ("perplexity", "accuracy", "log_prob"):
                    points[key].append(metrics[key])
        curves[name] = points
        results[name] = {k: v[-1] for k, v in points.items() if k != "steps"}

    lines = []
    for metric in ("perplexity", "accuracy", "log_prob"):
        for name in ("hybrid", "rnn"):
            lines.append(render_series(f"{name} {metric}", curves[name]["steps"], curves[name][metric]))
    rows = [
        [metric, results["hybrid"][metric], results["rnn"][metric]]
        for metric in ("perplexity", "accuracy", "log_prob")
    ]
    rendered = "\n".join(lines + ["", ascii_table(["final metric", "hybrid", "pure rnn"], rows)])
    return ExperimentResult(
        experiment_id="fig9",
        title="RNN vs hybrid RNN on direct query-to-query training",
        measured=results,
        paper={"claim": "hybrid (transformer encoder) significantly better than pure RNN"},
        rendered=rendered,
    )
