"""Gateway soak: the socket-path conformance run as a CLI experiment.

Boots a real :class:`~repro.gateway.app.Gateway` on an ephemeral
loopback port, replays a deterministic churn-free trace through it with
concurrent HTTP clients, replays the same trace in process on a
:class:`~repro.online.clock.VirtualClock`, and renders the conformance
verdicts: per-tenant serving counters byte-identical across the two
paths, zero HTTP 500s, schema-valid responses throughout, and a drain
receipt conserving every admitted request.  A second same-seed run
re-checks that the deterministic side of the outcome fingerprints
identically.

This is the CI smoke entry for the front door (``gateway_soak`` in the
benchmark-smoke workflow); the acceptance-scale version lives in
``benchmarks/test_gateway_soak.py``.
"""

from __future__ import annotations

from repro.experiments.rendering import ascii_table
from repro.experiments.result import ExperimentResult
from repro.experiments.scale import SMALL, ExperimentScale
from repro.gateway.soak import SoakConfig, run_soak


def _soak_config(scale: ExperimentScale) -> SoakConfig:
    """The soak shrunk to the scale's workload factor (floors keep it real)."""
    return SoakConfig(
        seed=scale.seed,
        num_requests=scale.scaled(600, 160),
        clients=4,
        sessions_per_tenant=scale.scaled(300, 120),
    )


def run(scale: ExperimentScale = SMALL) -> ExperimentResult:
    """Run the soak (twice, for the determinism cross-check) and render."""
    config = _soak_config(scale)
    outcome = run_soak(config)
    rerun_fingerprint = run_soak(config).fingerprint()
    deterministic = outcome.fingerprint() == rerun_fingerprint

    receipt = outcome.receipt or {}
    answered_200 = outcome.responses_by_status.get("200", 0)
    checks = [
        ("socket_counters_byte_identical", outcome.identical, "== twin replay"),
        ("zero_http_500s", outcome.http_500s == 0, "== 0"),
        ("all_responses_schema_valid", outcome.schema_failures == 0, "== 0"),
        (
            "every_request_answered_200",
            answered_200 == outcome.requests,
            f"== {outcome.requests}",
        ),
        (
            "zero_lost_requests",
            outcome.receipt is not None and outcome.lost_requests == 0,
            "admitted == completed + shed",
        ),
        ("same_seed_fingerprints_identical", deterministic, "== rerun"),
    ]
    measured: dict[str, object] = {
        "requests": outcome.requests,
        "tenants": len(config.tenants),
        "clients": config.clients,
        "responses_by_status": dict(outcome.responses_by_status),
        "schema_failures": outcome.schema_failures,
        "http_500s": outcome.http_500s,
        "lost_requests": outcome.lost_requests,
        "receipt": dict(receipt),
        "identical": outcome.identical,
        "deterministic": deterministic,
        "all_passed": all(passed for _, passed, _ in checks),
    }
    for name, passed, _ in checks:
        measured[name] = passed

    rows = [
        [name, bar, "PASS" if passed else "FAIL"] for name, passed, bar in checks
    ]
    for tenant in sorted(outcome.twin_counters):
        counters = outcome.twin_counters[tenant]
        rows.append(
            [
                f"{tenant} counters",
                f"admitted={counters['admitted']} cache={counters['cache_served']} "
                f"model={counters['model_served']} "
                f"searches={counters['search_requests']}",
                "=",
            ]
        )
    rendered = ascii_table(["check", "bar / observed", "verdict"], rows)
    return ExperimentResult(
        experiment_id="gateway_soak",
        title="Gateway soak: socket path vs in-process virtual-clock twin",
        measured=measured,
        paper={
            "claim": "the serving tier behind a real service front door "
            "behaves exactly like its deterministic replay model",
            "setting": "Section III-G production serving, here behind an "
            "async HTTP gateway with wall-clock micro-batch scheduling",
        },
        rendered=rendered,
        notes=(
            f"{outcome.requests} requests over {config.clients} concurrent "
            "HTTP connections against a live asyncio gateway on an ephemeral "
            "port; the same trace replayed in process on a VirtualClock. "
            "Deterministic ServingStats counters must be byte-identical, "
            "with zero 500s and zero admitted-but-lost requests across a "
            "graceful drain."
        ),
    )
