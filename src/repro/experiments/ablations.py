"""Ablations beyond the paper's tables — the design choices Section III
argues for, measured directly.

* **λ sweep** — the cyclic-loss weight's effect on translate-back quality
  (III-C: λ trades bi-directional likelihood against cyclic consistency).
* **Decoder diversity** — beam search vs top-n sampling candidate
  diversity (III-F: beam search outputs near-duplicates).
* **Warmup sensitivity** — switching the cyclic loss on too early hurts
  (III-D: "the cyclic consistency only makes sense when the two models are
  well trained").
"""

from __future__ import annotations

import numpy as np

from repro.decoding import beam_search, top_n_sampling
from repro.experiments.rendering import ascii_table
from repro.experiments.result import ExperimentResult
from repro.experiments.scale import ExperimentScale, SMALL
from repro.experiments.shared import build_context, make_models
from repro.text import levenshtein
from repro.training import CyclicConfig, CyclicTrainer, translate_back_metrics


def lambda_sweep(
    scale: ExperimentScale = SMALL,
    lambdas: tuple[float, ...] = (0.0, 0.1, 0.5),
) -> ExperimentResult:
    """Final translate-back log prob / accuracy as a function of λ."""
    context = build_context(scale)
    marketplace = context.marketplace
    eval_queries = [
        marketplace.vocab.encode(list(q), add_eos=True)
        for q, _, _ in (marketplace.eval_pairs or marketplace.train_pairs)[: scale.eval_queries]
    ]
    total = scale.warmup_steps + scale.joint_steps
    rows = []
    measured = {}
    for lam in lambdas:
        forward, backward = make_models(scale, len(marketplace.vocab))
        trainer = CyclicTrainer(
            forward, backward, marketplace.train_pairs, marketplace.vocab,
            CyclicConfig(
                batch_size=scale.batch_size,
                max_steps=total,
                beam_width=scale.beam_width,
                top_n=scale.top_n,
                warmup_steps=scale.warmup_steps if lam > 0 else total + 1,
                lambda_cyclic=lam,
                max_title_len=scale.max_title_len,
                seed=scale.seed,
            ),
        )
        trainer.train(total)
        metrics = translate_back_metrics(
            forward, backward, eval_queries, marketplace.vocab,
            k=scale.beam_width, top_n=scale.top_n,
            rng=np.random.default_rng(scale.seed),
        )
        measured[f"lambda_{lam}"] = metrics
        rows.append([lam, metrics["log_prob"], metrics["accuracy"], metrics["perplexity"]])
    rendered = ascii_table(
        ["lambda", "q2q log prob", "q2q accuracy", "q2q perplexity"], rows
    )
    return ExperimentResult(
        experiment_id="ablation_lambda",
        title="Cyclic-loss weight sweep",
        measured=measured,
        paper={"lambda": 0.1},
        rendered=rendered,
        notes="λ>0 should beat λ=0 on translate-back metrics.",
    )


def decoder_diversity(scale: ExperimentScale = SMALL, n_queries: int = 12) -> ExperimentResult:
    """Mean pairwise edit distance among candidates: beam vs top-n.

    Reproduces the III-F observation that beam-search candidates are
    near-duplicates ("differ in a blank space, or a single token").
    """
    context = build_context(scale)
    forward = context.joint.forward
    vocab = context.vocab
    queries = context.evaluation_queries(n_queries)
    rng = np.random.default_rng(scale.seed)

    def pairwise_diversity(hypotheses) -> float:
        seqs = [list(h.tokens) for h in hypotheses if h.tokens]
        if len(seqs) < 2:
            return 0.0
        distances = [
            levenshtein(seqs[i], seqs[j])
            for i in range(len(seqs))
            for j in range(i + 1, len(seqs))
        ]
        return float(np.mean(distances))

    beam_scores, topn_scores = [], []
    for query in queries:
        src = np.array([vocab.encode(query.split(), add_eos=True)])
        beams = beam_search(forward, src, beam_size=3, max_len=scale.max_title_len)
        samples = top_n_sampling(
            forward, src, k=3, n=scale.top_n, max_len=scale.max_title_len, rng=rng
        )
        beam_scores.append(pairwise_diversity(beams))
        topn_scores.append(pairwise_diversity(samples))

    measured = {
        "beam_mean_pairwise_edit": float(np.mean(beam_scores)),
        "topn_mean_pairwise_edit": float(np.mean(topn_scores)),
    }
    rendered = ascii_table(
        ["decoder", "mean pairwise edit distance among candidates"],
        [
            ["beam search", measured["beam_mean_pairwise_edit"]],
            ["top-n sampling", measured["topn_mean_pairwise_edit"]],
        ],
    )
    return ExperimentResult(
        experiment_id="ablation_diversity",
        title="Candidate diversity: beam search vs top-n sampling",
        measured=measured,
        paper={"claim": "beam search outputs very similar sequences; top-n sampling is more diverse"},
        rendered=rendered,
    )


def offline_metric(scale: ExperimentScale = SMALL) -> ExperimentResult:
    """§V offline-metric exploration: utility = novelty × relatedness.

    Table VII's metrics are misaligned with the rewriting objective: the
    rule-based method "wins" F1/edit/cosine precisely because its rewrites
    barely change the query — and therefore barely add recall.  Scoring the
    same three methods with the composite utility metric (new-items fraction
    × embedding relatedness) should invert that ordering, putting the
    translation models ahead.
    """
    from repro.evaluation import method_utility
    from repro.search import SearchEngine

    context = build_context(scale)
    engine = SearchEngine(context.marketplace.catalog)
    queries = context.evaluation_queries(scale.eval_queries)
    methods = {
        "rule_based": context.rule_rewriter,
        "separate": context.rewriter("separate"),
        "joint": context.rewriter("joint"),
    }
    measured = {
        name: method_utility(method, queries, engine, context.encoder, k=3)
        for name, method in methods.items()
    }
    rows = [
        [name, measured[name]["utility"], measured[name]["novelty"], measured[name]["relatedness"]]
        for name in ("rule_based", "separate", "joint")
    ]
    rendered = ascii_table(["method", "utility", "novelty", "relatedness"], rows)
    return ExperimentResult(
        experiment_id="ablation_offline_metric",
        title="Offline utility metric (Section V exploration)",
        measured=measured,
        paper={"claim": "neither lexical nor semantic similarity aligns with the rewriting objective"},
        rendered=rendered,
        notes="Target: the translation models out-score the rule baseline on utility.",
    )


def warmup_sensitivity(
    scale: ExperimentScale = SMALL,
    warmups: tuple[int, ...] | None = None,
) -> ExperimentResult:
    """Effect of enabling the cyclic loss early vs after proper warmup."""
    context = build_context(scale)
    marketplace = context.marketplace
    total = scale.warmup_steps + scale.joint_steps
    warmups = warmups or (total // 10, scale.warmup_steps)
    eval_queries = [
        marketplace.vocab.encode(list(q), add_eos=True)
        for q, _, _ in (marketplace.eval_pairs or marketplace.train_pairs)[: scale.eval_queries]
    ]
    rows = []
    measured = {}
    for warmup in warmups:
        forward, backward = make_models(scale, len(marketplace.vocab))
        trainer = CyclicTrainer(
            forward, backward, marketplace.train_pairs, marketplace.vocab,
            CyclicConfig(
                batch_size=scale.batch_size,
                max_steps=total,
                beam_width=scale.beam_width,
                top_n=scale.top_n,
                warmup_steps=warmup,
                max_title_len=scale.max_title_len,
                seed=scale.seed,
            ),
        )
        trainer.train(total)
        metrics = translate_back_metrics(
            forward, backward, eval_queries, marketplace.vocab,
            k=scale.beam_width, top_n=scale.top_n,
            rng=np.random.default_rng(scale.seed),
        )
        measured[f"warmup_{warmup}"] = metrics
        rows.append([warmup, metrics["log_prob"], metrics["accuracy"]])
    rendered = ascii_table(["warmup steps G", "q2q log prob", "q2q accuracy"], rows)
    return ExperimentResult(
        experiment_id="ablation_warmup",
        title="Warmup-steps sensitivity of cyclic training",
        measured=measured,
        paper={"claim": "cyclic loss only helps once both models are trained (G=40k of 80k steps)"},
        rendered=rendered,
    )
