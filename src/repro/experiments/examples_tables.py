"""Tables III & IV — example rewrites from the separate vs joint models.

The paper's showcase: hard colloquial queries ("cellphone for grandpa")
rewritten into standard catalog language ("senior phone"), with the jointly
trained model staying closer to the original intent than the separately
trained one.
"""

from __future__ import annotations

from repro.experiments.rendering import ascii_table
from repro.experiments.result import ExperimentResult
from repro.experiments.scale import ExperimentScale, SMALL
from repro.experiments.shared import build_context

#: the paper's Table III/IV query intents, transliterated to our marketplace
SHOWCASE_QUERIES = [
    "cellphone for grandpa",  # 给爷爷的手机
    "milk powder for elderly",  # 老人奶粉
    "commemorative coin",  # 猪年纪念币 (zodiac coin)
    "wrinkle removal for him",  # 男士去皱
    "comfortable ah-di sneaker",  # 阿迪 comfortable men's shoe (Fig 6)
]


def run(scale: ExperimentScale = SMALL) -> ExperimentResult:
    context = build_context(scale)
    separate = context.rewriter("separate")
    joint = context.rewriter("joint")

    rows = []
    measured: dict[str, dict[str, list[str]]] = {}
    for query in SHOWCASE_QUERIES:
        separate_rewrites = [r.text for r in separate.rewrite(query, k=2)]
        joint_results = joint.rewrite(query, k=2)
        joint_rewrites = [r.text for r in joint_results]
        via = " ".join(joint_results[0].via_title) if joint_results else ""
        measured[query] = {"separate": separate_rewrites, "joint": joint_rewrites}
        rows.append(
            [
                query,
                "; ".join(separate_rewrites) or "(none)",
                "; ".join(joint_rewrites) or "(none)",
                via[:40],
            ]
        )
    rendered = ascii_table(
        ["original query", "separate (Table III)", "joint (Table IV)", "joint via title"], rows
    )
    return ExperimentResult(
        experiment_id="table3_table4",
        title="Good cases from separately vs jointly trained models",
        measured=measured,
        paper={
            "example": "给爷爷的手机 (cellphone for grandpa) -> separate: 'apple iphone8plus'; joint: 'senior phone'"
        },
        rendered=rendered,
        notes="Qualitative: the joint model should keep the audience/category intent where the separate model drifts.",
    )
