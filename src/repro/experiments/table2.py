"""Table II — model hyperparameters (paper values vs reproduction values)."""

from __future__ import annotations

from repro.experiments.rendering import ascii_table
from repro.experiments.result import ExperimentResult
from repro.experiments.scale import ExperimentScale, SMALL
from repro.models.config import paper_hyperparameters


def run(scale: ExperimentScale = SMALL) -> ExperimentResult:
    paper = paper_hyperparameters()
    measured = {
        "query_to_title": {
            "transformer_layers": scale.forward_layers,
            "num_heads": scale.num_heads,
            "feed_forward_hidden": scale.d_ff,
            "embedding_dim": scale.d_model,
            "dropout": 0.0,
        },
        "title_to_query": {
            "transformer_layers": scale.backward_layers,
            "num_heads": scale.num_heads,
            "feed_forward_hidden": scale.d_ff,
            "embedding_dim": scale.d_model,
            "dropout": 0.0,
        },
    }
    rows = []
    for key in paper["query_to_title"]:
        rows.append(
            [
                key,
                paper["query_to_title"][key],
                paper["title_to_query"][key],
                measured["query_to_title"][key],
                measured["title_to_query"][key],
            ]
        )
    rendered = ascii_table(
        ["hyperparameter", "paper q2t", "paper t2q", "repro q2t", "repro t2q"], rows
    )
    return ExperimentResult(
        experiment_id="table2",
        title="Model hyperparameters",
        measured=measured,
        paper=paper,
        rendered=rendered,
        notes="Widths are scaled to the NumPy/CPU substrate; the q2t-deeper-than-t2q asymmetry is preserved.",
    )
