"""Batched-serving throughput: per-query loop vs ``serve_batch``.

The paper's serving tier must sustain heavy traffic, so the interesting
number is queries/second, not single-request latency.  This experiment
replays the same mixed head/tail workload through two identical two-tier
pipelines — one serving requests one at a time (the seed path), one in
batches whose cache misses share a single stacked model decode — and
reports the throughput ratio.  It also hammers a deliberately undersized
cache with write-backs to show the LRU bound holding under load.

The fallback model is an *untrained* hybrid (transformer encoder + RNN
decoder): decode cost per token is identical to a trained one, and
throughput is a property of the serving machinery, not model quality.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import DirectRewriter, RewriteCache, RewriterConfig, ServingConfig, ServingPipeline
from repro.decoding import top_n_sampling_batch
from repro.decoding.reference import top_n_sampling_batch_reference
from repro.experiments.rendering import ascii_table
from repro.experiments.result import ExperimentResult
from repro.experiments.scale import ExperimentScale, SMALL
from repro.experiments.shared import build_context
from repro.models import HybridNMT, ModelConfig, TransformerNMT

#: requests per serving batch on the batched path
BATCH_SIZE = 16
#: cache shards for both pipelines
CACHE_SHARDS = 4
#: decode-throughput bar: the cached+compacted transformer decode path
#: must beat the frozen full-prefix reference by at least this factor
DECODE_SPEEDUP_TARGET = 3.0


def _build_pipeline(context, scale: ExperimentScale, capacity: int) -> ServingPipeline:
    """A fresh two-tier pipeline (own cache + own rewriter RNG)."""
    model = HybridNMT(
        ModelConfig(
            vocab_size=len(context.vocab),
            d_model=scale.d_model,
            num_heads=scale.num_heads,
            d_ff=scale.d_ff,
            encoder_layers=1,
            decoder_layers=1,
            dropout=0.0,
            seed=scale.seed,
        )
    )
    model.eval()
    fallback = DirectRewriter(
        model,
        context.vocab,
        RewriterConfig(k=3, top_n=scale.top_n, max_query_len=10, seed=scale.seed),
    )
    cache = RewriteCache(capacity=capacity, shards=CACHE_SHARDS)
    return ServingPipeline(
        cache, fallback, ServingConfig(max_rewrites=3, cache_model_results=True)
    )


def _decode_throughput(scale: ExperimentScale, vocab_size: int) -> dict:
    """Time the optimized transformer decode against the frozen reference.

    Both paths run :func:`top_n_sampling_batch` semantics over the same
    untrained :class:`TransformerNMT`, the same sources and the same RNG
    seeds — the reference from ``repro.decoding.reference`` keeps the seed
    behaviour (full-prefix re-decode, no compaction, per-row sampling).
    Hypotheses must come back identical at every scale; the ≥3× speedup
    bar is judged only at full workload (wall-clock at smoke scales is
    noise, so the verdict is SKIP there).
    """
    model = TransformerNMT(
        ModelConfig(
            vocab_size=vocab_size,
            d_model=scale.d_model,
            num_heads=scale.num_heads,
            d_ff=scale.d_ff,
            encoder_layers=2,
            decoder_layers=2,
            max_len=80,
            dropout=0.0,
            seed=scale.seed,
        )
    )
    model.eval()
    rng = np.random.default_rng(scale.seed)
    n_sources = scale.scaled(8, 2)
    src = rng.integers(3, vocab_size, size=(n_sources, 9))
    src[:, 7:] = np.where(rng.random((n_sources, 2)) < 0.5, 0, src[:, 7:])
    max_len = scale.scaled(32, 6)
    rounds = scale.timing_rounds(3)

    timings = {}
    outputs = {}
    rows_stepped = {}
    for name, decode in (
        ("new", top_n_sampling_batch),
        ("reference", top_n_sampling_batch_reference),
    ):
        decode(model, src, k=3, n=scale.top_n, max_len=max_len,
               rng=np.random.default_rng(scale.seed))  # warm-up
        model.reset_decode_counters()
        started = time.perf_counter()
        for r in range(rounds):
            outputs[name] = decode(
                model, src, k=3, n=scale.top_n, max_len=max_len,
                rng=np.random.default_rng(scale.seed + 1),
            )
        timings[name] = (time.perf_counter() - started) / rounds
        rows_stepped[name] = model.decode_rows // rounds

    identical = [
        [(h.tokens, h.finished) for h in group] for group in outputs["new"]
    ] == [
        [(h.tokens, h.finished) for h in group] for group in outputs["reference"]
    ]
    speedup = timings["reference"] / max(timings["new"], 1e-9)
    if not identical:
        verdict = "FAIL"
    elif scale.workload_factor < 1.0:
        verdict = "SKIP"
    else:
        verdict = "PASS" if speedup >= DECODE_SPEEDUP_TARGET else "FAIL"
    return {
        "decode_new_ms": timings["new"] * 1000.0,
        "decode_reference_ms": timings["reference"] * 1000.0,
        "decode_speedup": speedup,
        "decode_outputs_identical": identical,
        "decode_rows_new": rows_stepped["new"],
        "decode_rows_reference": rows_stepped["reference"],
        "decode_verdict": verdict,
    }


def run(scale: ExperimentScale = SMALL) -> ExperimentResult:
    context = build_context(scale)
    rng = np.random.default_rng(scale.seed)
    records = sorted(
        context.marketplace.click_log.queries.values(),
        key=lambda r: (-r.total_clicks, r.text),
    )
    texts = [r.text for r in records]
    weights = np.array([max(r.total_clicks, 1) for r in records], dtype=float)
    weights /= weights.sum()

    # Mixed head/tail workload over a deliberately undersized cache: only
    # part of the head fits, and write-backs from the tail force LRU
    # evictions well before the replay ends.
    capacity = max(CACHE_SHARDS, len(texts) // 16)
    head = texts[: capacity // 2]
    n_requests = scale.abtest_sessions_per_day * 4
    requests = [
        texts[int(i)] for i in rng.choice(len(texts), size=n_requests, p=weights)
    ]

    # Path A: the per-query loop.
    per_query = _build_pipeline(context, scale, capacity)
    for query in head:
        per_query.cache.put(query, [query + " (precomputed)"])
    started = time.perf_counter()
    for query in requests:
        per_query.serve(query)
    seq_seconds = time.perf_counter() - started

    # Path B: batched serving, same workload, same cache provisioning.
    batched = _build_pipeline(context, scale, capacity)
    for query in head:
        batched.cache.put(query, [query + " (precomputed)"])
    max_occupancy = len(batched.cache)
    started = time.perf_counter()
    for start in range(0, n_requests, BATCH_SIZE):
        batched.serve_batch(requests[start : start + BATCH_SIZE])
        max_occupancy = max(max_occupancy, len(batched.cache))
    batch_seconds = time.perf_counter() - started

    decode = _decode_throughput(scale, len(context.vocab))

    qps_per_query = n_requests / seq_seconds
    qps_batched = n_requests / batch_seconds
    measured = {
        **decode,
        "requests": n_requests,
        "batch_size": BATCH_SIZE,
        "qps_per_query": qps_per_query,
        "qps_batched": qps_batched,
        "speedup": qps_batched / qps_per_query,
        "cache_capacity": capacity,
        "max_cache_occupancy": max_occupancy,
        "cache_evictions": batched.stats.cache_evictions,
        "batched_cache_share": batched.stats.cache_served / max(1, batched.stats.total),
        "batched_model_share": batched.stats.model_served / max(1, batched.stats.total),
    }
    rows = [
        ["per-query loop", f"{qps_per_query:.1f} qps", f"{seq_seconds * 1000:.0f} ms total"],
        ["serve_batch (B=16)", f"{qps_batched:.1f} qps", f"{batch_seconds * 1000:.0f} ms total"],
        ["speedup", f"{measured['speedup']:.2f}x", "target >= 2x"],
        [
            "cache bound under load",
            f"cap {capacity}",
            f"max occupancy {max_occupancy}, {measured['cache_evictions']} evictions",
        ],
        [
            "decode: cached+compacted",
            f"{decode['decode_new_ms']:.1f} ms",
            f"{decode['decode_rows_new']} rows stepped",
        ],
        [
            "decode: frozen reference",
            f"{decode['decode_reference_ms']:.1f} ms",
            f"{decode['decode_rows_reference']} rows stepped",
        ],
        [
            "decode speedup",
            f"{decode['decode_speedup']:.2f}x",
            f"target >= {DECODE_SPEEDUP_TARGET:.0f}x, outputs identical="
            f"{decode['decode_outputs_identical']} [{decode['decode_verdict']}]",
        ],
    ]
    rendered = ascii_table(["path", "throughput", "detail"], rows, float_format="{:.3f}")
    return ExperimentResult(
        experiment_id="serving_batched",
        title="Batched serving throughput (Section III-G at scale)",
        measured=measured,
        paper={"throughput": "batched model tier", "cache": "bounded top-8M KV store"},
        rendered=rendered,
        notes=(
            "Same workload, same untrained hybrid fallback; the batched path "
            "stacks all cache misses of a batch into one decode.  Write-backs "
            "exercise LRU eviction; occupancy never exceeds capacity.  The "
            "decode phase races the KV-cached, row-compacted transformer "
            "decode against the frozen full-prefix reference on identical "
            "seeds; outputs must match token-for-token."
        ),
    )
