"""Batched-serving throughput: per-query loop vs ``serve_batch``.

The paper's serving tier must sustain heavy traffic, so the interesting
number is queries/second, not single-request latency.  This experiment
replays the same mixed head/tail workload through two identical two-tier
pipelines — one serving requests one at a time (the seed path), one in
batches whose cache misses share a single stacked model decode — and
reports the throughput ratio.  It also hammers a deliberately undersized
cache with write-backs to show the LRU bound holding under load.

The fallback model is an *untrained* hybrid (transformer encoder + RNN
decoder): decode cost per token is identical to a trained one, and
throughput is a property of the serving machinery, not model quality.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import DirectRewriter, RewriteCache, RewriterConfig, ServingConfig, ServingPipeline
from repro.experiments.rendering import ascii_table
from repro.experiments.result import ExperimentResult
from repro.experiments.scale import ExperimentScale, SMALL
from repro.experiments.shared import build_context
from repro.models import HybridNMT, ModelConfig

#: requests per serving batch on the batched path
BATCH_SIZE = 16
#: cache shards for both pipelines
CACHE_SHARDS = 4


def _build_pipeline(context, scale: ExperimentScale, capacity: int) -> ServingPipeline:
    """A fresh two-tier pipeline (own cache + own rewriter RNG)."""
    model = HybridNMT(
        ModelConfig(
            vocab_size=len(context.vocab),
            d_model=scale.d_model,
            num_heads=scale.num_heads,
            d_ff=scale.d_ff,
            encoder_layers=1,
            decoder_layers=1,
            dropout=0.0,
            seed=scale.seed,
        )
    )
    model.eval()
    fallback = DirectRewriter(
        model,
        context.vocab,
        RewriterConfig(k=3, top_n=scale.top_n, max_query_len=10, seed=scale.seed),
    )
    cache = RewriteCache(capacity=capacity, shards=CACHE_SHARDS)
    return ServingPipeline(
        cache, fallback, ServingConfig(max_rewrites=3, cache_model_results=True)
    )


def run(scale: ExperimentScale = SMALL) -> ExperimentResult:
    context = build_context(scale)
    rng = np.random.default_rng(scale.seed)
    records = sorted(
        context.marketplace.click_log.queries.values(),
        key=lambda r: (-r.total_clicks, r.text),
    )
    texts = [r.text for r in records]
    weights = np.array([max(r.total_clicks, 1) for r in records], dtype=float)
    weights /= weights.sum()

    # Mixed head/tail workload over a deliberately undersized cache: only
    # part of the head fits, and write-backs from the tail force LRU
    # evictions well before the replay ends.
    capacity = max(CACHE_SHARDS, len(texts) // 16)
    head = texts[: capacity // 2]
    n_requests = scale.abtest_sessions_per_day * 4
    requests = [
        texts[int(i)] for i in rng.choice(len(texts), size=n_requests, p=weights)
    ]

    # Path A: the per-query loop.
    per_query = _build_pipeline(context, scale, capacity)
    for query in head:
        per_query.cache.put(query, [query + " (precomputed)"])
    started = time.perf_counter()
    for query in requests:
        per_query.serve(query)
    seq_seconds = time.perf_counter() - started

    # Path B: batched serving, same workload, same cache provisioning.
    batched = _build_pipeline(context, scale, capacity)
    for query in head:
        batched.cache.put(query, [query + " (precomputed)"])
    max_occupancy = len(batched.cache)
    started = time.perf_counter()
    for start in range(0, n_requests, BATCH_SIZE):
        batched.serve_batch(requests[start : start + BATCH_SIZE])
        max_occupancy = max(max_occupancy, len(batched.cache))
    batch_seconds = time.perf_counter() - started

    qps_per_query = n_requests / seq_seconds
    qps_batched = n_requests / batch_seconds
    measured = {
        "requests": n_requests,
        "batch_size": BATCH_SIZE,
        "qps_per_query": qps_per_query,
        "qps_batched": qps_batched,
        "speedup": qps_batched / qps_per_query,
        "cache_capacity": capacity,
        "max_cache_occupancy": max_occupancy,
        "cache_evictions": batched.stats.cache_evictions,
        "batched_cache_share": batched.stats.cache_served / max(1, batched.stats.total),
        "batched_model_share": batched.stats.model_served / max(1, batched.stats.total),
    }
    rows = [
        ["per-query loop", f"{qps_per_query:.1f} qps", f"{seq_seconds * 1000:.0f} ms total"],
        ["serve_batch (B=16)", f"{qps_batched:.1f} qps", f"{batch_seconds * 1000:.0f} ms total"],
        ["speedup", f"{measured['speedup']:.2f}x", "target >= 2x"],
        [
            "cache bound under load",
            f"cap {capacity}",
            f"max occupancy {max_occupancy}, {measured['cache_evictions']} evictions",
        ],
    ]
    rendered = ascii_table(["path", "throughput", "detail"], rows, float_format="{:.3f}")
    return ExperimentResult(
        experiment_id="serving_batched",
        title="Batched serving throughput (Section III-G at scale)",
        measured=measured,
        paper={"throughput": "batched model tier", "cache": "bounded top-8M KV store"},
        rendered=rendered,
        notes=(
            "Same workload, same untrained hybrid fallback; the batched path "
            "stacks all cache misses of a batch into one decode.  Write-backs "
            "exercise LRU eviction; occupancy never exceeds capacity."
        ),
    )
