"""Table VIII — 10-day online A/B test improvements.

Paper: the variation (joint model adds ≤3 rewrites, each ≤1,000 extra
candidates, same downstream ranker) improves UCVR +0.5219% and GMV
+1.1054%, with QRR -0.0397% (fewer frustrated reformulations).

Our simulator replays paired traffic through the same causal chain.  The
*signs* (UCVR up, GMV up, QRR down) are the reproduction target; magnitudes
are much larger here because the synthetic query mix is far heavier in hard
colloquial queries than JD production traffic, where >80% of volume is
well-served head queries.
"""

from __future__ import annotations

from repro.evaluation import ABTestConfig, ABTestSimulator
from repro.experiments.rendering import ascii_table
from repro.experiments.result import ExperimentResult
from repro.experiments.scale import ExperimentScale, SMALL
from repro.experiments.shared import build_context

PAPER_TABLE_8 = {"UCVR": 0.005219, "GMV": 0.011054, "QRR": -0.000397}


def run(scale: ExperimentScale = SMALL) -> ExperimentResult:
    context = build_context(scale)
    query_pool = context.evaluation_intents(scale.human_eval_queries)
    simulator = ABTestSimulator(
        context.marketplace.catalog,
        query_pool,
        control_rewriter=context.rule_rewriter,
        variation_rewriter=context.rewriter("joint"),
        config=ABTestConfig(
            days=scale.abtest_days,
            sessions_per_day=scale.abtest_sessions_per_day,
            max_rewrites=3,
            seed=scale.seed,
        ),
    )
    report = simulator.run()
    measured = report.as_row()
    significance = {
        metric: report.significance(metric, resamples=1000, seed=scale.seed)
        for metric in ("UCVR", "GMV", "QRR")
    }
    rows = [
        [
            metric,
            f"{PAPER_TABLE_8[metric]:+.4%}",
            f"{measured[metric]:+.4%}",
            f"{significance[metric]['p_value']:.3f}",
        ]
        for metric in ("UCVR", "GMV", "QRR")
    ]
    rendered = ascii_table(["metric", "paper", "measured", "p (paired bootstrap)"], rows)
    return ExperimentResult(
        experiment_id="table8",
        title="10-days online A/B test improvements",
        measured={
            **measured,
            "control_ucvr": report.control.ucvr,
            "variation_ucvr": report.variation.ucvr,
            "control_qrr": report.control.qrr,
            "variation_qrr": report.variation.qrr,
            "ucvr_p_value": significance["UCVR"]["p_value"],
            "gmv_p_value": significance["GMV"]["p_value"],
        },
        paper=PAPER_TABLE_8,
        rendered=rendered,
        notes="Sign agreement is the target: UCVR/GMV up, QRR down.",
    )
