"""Table VI — human evaluation of query-rewriting relevancy.

Paper protocol: 1,000 queries that also have rule-based synonyms; three
rewrites per method; labelers judge Joint-vs-Separate and Joint-vs-Rule.
Paper result: Joint beats Separate (29% win / 49% tie / 22% lose) and is
close to — though behind — the conservative rule-based method on pure
relevance (11% win / 60% tie / 29% lose), while winning on polysemy cases.
"""

from __future__ import annotations

import numpy as np

from repro.data.synonyms import build_rule_dictionary, sample_queries_with_rules
from repro.evaluation import pairwise_evaluation
from repro.experiments.rendering import ascii_table
from repro.experiments.result import ExperimentResult
from repro.experiments.scale import ExperimentScale, SMALL
from repro.experiments.shared import build_context

PAPER_TABLE_6 = {
    "joint_vs_separate": {"lose": 0.22, "tie": 0.49, "win": 0.29},
    "joint_vs_rule": {"lose": 0.29, "tie": 0.60, "win": 0.11},
}


def run(scale: ExperimentScale = SMALL) -> ExperimentResult:
    context = build_context(scale)
    rng = np.random.default_rng(scale.seed)
    rules = context.rule_rewriter
    click_log = context.marketplace.click_log

    eligible = sample_queries_with_rules(
        click_log, build_rule_dictionary(), scale.human_eval_queries, rng
    )
    evaluation = [(text, click_log.queries[text].intent) for text in eligible]
    joint = context.rewriter("joint")
    separate = context.rewriter("separate")

    measured = {
        "joint_vs_separate": pairwise_evaluation(
            context.labeler, evaluation, joint, separate, k=3
        ),
        "joint_vs_rule": pairwise_evaluation(
            context.labeler, evaluation, joint, rules, k=3
        ),
    }
    rows = []
    for comparison in ("joint_vs_separate", "joint_vs_rule"):
        paper = PAPER_TABLE_6[comparison]
        ours = measured[comparison]
        rows.append(
            [
                comparison,
                f"{paper['lose']:.0%}/{paper['tie']:.0%}/{paper['win']:.0%}",
                f"{ours['lose']:.0%}/{ours['tie']:.0%}/{ours['win']:.0%}",
            ]
        )
    rendered = ascii_table(["comparison", "paper (L/T/W)", "measured (L/T/W)"], rows)
    return ExperimentResult(
        experiment_id="table6",
        title="Human evaluation results for query rewriting relevancy",
        measured=measured,
        paper=PAPER_TABLE_6,
        rendered=rendered,
        notes=(
            "Shape target: joint >= separate on wins; rule-based remains "
            "competitive on relevance because it only swaps one phrase."
        ),
    )
