"""Experiment runners — one per table and figure of the paper.

Every module exposes ``run(scale) -> ExperimentResult``; results carry the
measured rows, the paper's reference values, and an ASCII rendering.  The
``benchmarks/`` tree wraps these runners in pytest-benchmark targets, and
EXPERIMENTS.md records paper-vs-measured for each.

The :class:`~repro.experiments.scale.ExperimentScale` knob shrinks or grows
everything (marketplace size, training steps, evaluation sizes) so the full
suite stays runnable on a laptop CPU.
"""

from repro.experiments.scale import ExperimentScale, SMALL, DEFAULT, TINY
from repro.experiments.shared import ExperimentContext, build_context
from repro.experiments.rendering import ascii_table, render_series, render_heatmap
from repro.experiments.result import ExperimentResult

__all__ = [
    "ExperimentScale",
    "SMALL",
    "DEFAULT",
    "TINY",
    "ExperimentContext",
    "build_context",
    "ascii_table",
    "render_series",
    "render_heatmap",
    "ExperimentResult",
]
