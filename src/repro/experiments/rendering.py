"""ASCII rendering helpers for tables, curves and attention heat maps."""

from __future__ import annotations

import numpy as np


def ascii_table(headers: list[str], rows: list[list], float_format: str = "{:.4f}") -> str:
    """Monospace table with column alignment."""
    def fmt(value) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    text_rows = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in text_rows)) if text_rows else len(headers[c])
        for c in range(len(headers))
    ]
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    rule = "-" * len(line)
    body = [
        "  ".join(cell.ljust(w) for cell, w in zip(row, widths)) for row in text_rows
    ]
    return "\n".join([line, rule, *body])


_SPARK = " .:-=+*#%@"


def render_series(
    name: str, steps: list[int], values: list[float], width: int = 60
) -> str:
    """One training curve as a labelled sparkline plus endpoints."""
    if not values:
        return f"{name}: (no data)"
    arr = np.asarray(values, dtype=float)
    if len(arr) > width:
        # Downsample by mean-pooling into `width` buckets.
        edges = np.linspace(0, len(arr), width + 1).astype(int)
        arr = np.array([arr[a:b].mean() for a, b in zip(edges[:-1], edges[1:]) if b > a])
    lo, hi = float(arr.min()), float(arr.max())
    if hi - lo < 1e-12:
        indices = np.zeros(len(arr), dtype=int)
    else:
        indices = ((arr - lo) / (hi - lo) * (len(_SPARK) - 1)).astype(int)
    spark = "".join(_SPARK[i] for i in indices)
    return f"{name:28s} |{spark}| first={values[0]:.4g} last={values[-1]:.4g}"


def render_heatmap(
    matrix: np.ndarray,
    x_labels: list[str],
    y_labels: list[str],
    cell_width: int = 6,
) -> str:
    """Attention matrix as an ASCII heat map (rows attend over columns)."""
    matrix = np.asarray(matrix, dtype=float)
    if matrix.shape != (len(y_labels), len(x_labels)):
        raise ValueError(
            f"matrix shape {matrix.shape} does not match labels "
            f"({len(y_labels)}, {len(x_labels)})"
        )
    lo, hi = float(matrix.min()), float(matrix.max())
    span = max(hi - lo, 1e-12)
    shades = " .:*#@"

    label_width = max((len(l) for l in y_labels), default=4) + 1
    header = " " * label_width + "".join(
        label[: cell_width - 1].ljust(cell_width) for label in x_labels
    )
    lines = [header]
    for label, row in zip(y_labels, matrix):
        cells = []
        for value in row:
            shade = shades[int((value - lo) / span * (len(shades) - 1))]
            cells.append((shade * 3).ljust(cell_width))
        lines.append(label.ljust(label_width) + "".join(cells))
    return "\n".join(lines)
