"""Hybrid retrieval at catalog scale — semantic recall over the vocabulary gap.

The paper's query rewriting exists because lexical retrieval has a hard
failure mode: when a query's tokens (and all of its rewrites' tokens)
never occur in any title, the inverted index returns *nothing*.  This
experiment measures the semantic tier that closes that gap, on a
≥50k-document catalog:

* **Vocabulary-gap recall** — a query set built entirely from query-side
  vocabulary (vague words, colloquial category names, audience aliases),
  with rewrites that are also query-side-only, so the lexical tier's
  recall is structurally zero.  The hybrid engine answers the same
  requests per retrieval mode (``lexical | semantic | hybrid``), and
  recall@10 is scored against ground-truth relevance (same category and
  audience as the intent).
* **ANN vs brute force** — the IVF index must not pay for its recall with
  latency: the probe search is timed against the exact dense
  matrix–vector baseline at the smallest ``nprobe`` whose top-10 matches
  brute force with recall ≥ 0.95, on the same 50k embeddings.
* **Churn** — products are listed and delisted through
  :meth:`~repro.search.hybrid.HybridSearchEngine.add_product` /
  ``remove_product`` (catalog, inverted index, and vector index in
  lockstep), and the vector tier must never surface a delisted product
  again.

The dual encoder is trained on the synthetic click log (in-batch
softmax over query–title click pairs) — the colloquial queries in the
log are exactly what teaches the query tower to land alias-ridden text
near canonical titles.
"""

from __future__ import annotations

import time

import numpy as np

from repro.data.catalog import (
    AUDIENCE_ALIASES,
    CATEGORY_SPECS,
    Catalog,
    CatalogConfig,
    CatalogGenerator,
    VAGUE_WORDS,
)
from repro.data.clicklog import ClickLogConfig
from repro.data.marketplace import MarketplaceConfig, generate_marketplace
from repro.embedding import DualEncoder, DualEncoderConfig, train_dual_encoder
from repro.experiments.rendering import ascii_table
from repro.experiments.result import ExperimentResult
from repro.experiments.scale import ExperimentScale, SMALL
from repro.search import (
    HybridConfig,
    HybridSearchEngine,
    SearchConfig,
    ShardedVectorIndex,
    VectorIndex,
)

#: corpus floor — the acceptance bar is "a ≥50k-doc synthetic catalog"
#: (scaled down only by a sub-1.0 ``ExperimentScale.workload_factor``)
TARGET_DOCS = 50_000
RECALL_K = 10
NUM_GAP_QUERIES = 40
NUM_ANN_QUERIES = 100
TIMING_ROUNDS = 3
ENCODER_STEPS = 400
NPROBE_SWEEP = (2, 4, 8, 16, 32)
ANN_CLUSTERS = 192
MATCHED_RECALL_FLOOR = 0.95
CHURN_DOCS = 400
NUM_SHARDS = 4


def _train_encoder(scale: ExperimentScale) -> DualEncoder:
    """Fit the dual encoder on a click log over the same category specs."""
    market = generate_marketplace(
        MarketplaceConfig(
            catalog=CatalogConfig(products_per_category=scale.products_per_category),
            clicks=ClickLogConfig(num_sessions=scale.num_sessions),
            seed=scale.seed,
        )
    )
    encoder = DualEncoder(market.vocab, DualEncoderConfig(seed=scale.seed))
    train_dual_encoder(
        encoder,
        market.train_pairs,
        steps=scale.scaled(ENCODER_STEPS, 50),
        rng=np.random.default_rng(scale.seed),
    )
    return encoder


def _build_catalog(scale: ExperimentScale) -> Catalog:
    generator = CatalogGenerator(CatalogConfig(seed=scale.seed))
    rng = np.random.default_rng(scale.seed)
    return Catalog(products=generator.sample_products(scale.scaled(TARGET_DOCS, 2_000), rng))


def _gap_queries(rng: np.random.Generator) -> list[tuple[str, list[str], str, str]]:
    """(query, rewrites, category, audience) with query-side-only tokens.

    Every token is drawn from vocabulary that never appears in titles
    (vague words, colloquial category names, filler, audience aliases),
    and the rewrites swap in *other* query-side surface forms — the
    worst case for lexical retrieval: each rewrite misses the index too.
    """
    names = [
        name
        for name in sorted(CATEGORY_SPECS)
        if CATEGORY_SPECS[name].audiences and len(CATEGORY_SPECS[name].colloquial) >= 1
    ]
    requests = []
    for i in range(NUM_GAP_QUERIES):
        spec = CATEGORY_SPECS[names[i % len(names)]]
        audience = str(rng.choice(spec.audiences))
        aliases = list(AUDIENCE_ALIASES[audience])
        colloquial = [str(c) for c in spec.colloquial]
        vague = [str(v) for v in rng.choice(VAGUE_WORDS, size=3, replace=False)]

        def surface(slot: int) -> str:
            return (
                f"{vague[slot % len(vague)]} "
                f"{colloquial[slot % len(colloquial)]} "
                f"for {aliases[slot % len(aliases)]}"
            )

        requests.append((surface(0), [surface(1), surface(2)], spec.name, audience))
    return requests


def _relevant_ids(catalog: Catalog, category: str, audience: str) -> set[int]:
    return {
        p.product_id
        for p in catalog.by_category.get(category, ())
        if p.audience == audience
    }


def _recall_at_k(doc_ids: list[int], relevant: set[int], k: int) -> float:
    if not relevant:
        return 0.0
    hits = sum(1 for doc_id in doc_ids[:k] if doc_id in relevant)
    return hits / min(k, len(relevant))


def run(scale: ExperimentScale = SMALL) -> ExperimentResult:
    rng = np.random.default_rng(scale.seed + 1)
    timing_rounds = scale.timing_rounds(TIMING_ROUNDS)
    churn_docs = scale.scaled(CHURN_DOCS, 50)
    ann_clusters = scale.scaled(ANN_CLUSTERS, 16)
    encoder = _train_encoder(scale)
    catalog = _build_catalog(scale)

    # Embed the catalog ONCE; the sharded tier inside the engine and the
    # flat ANN-vs-brute index below share the same matrix.
    doc_ids = [p.product_id for p in catalog.products]
    embeddings = encoder.encode_titles([list(p.title_tokens) for p in catalog.products])
    vector = ShardedVectorIndex(
        encoder.config.output_dim,
        num_shards=NUM_SHARDS,
        num_clusters=32,
        parallel=True,
        seed=scale.seed,
    )
    vector.fit(doc_ids, embeddings)
    engine = HybridSearchEngine(
        catalog,
        encoder,
        SearchConfig(max_candidates=100, ranker="bm25"),
        HybridConfig(semantic_k=100, nprobe=8),
        num_shards=NUM_SHARDS,
        parallel=True,
        vector=vector,
        seed=scale.seed,
    )

    # -- vocabulary-gap recall per retrieval mode ----------------------------
    requests = _gap_queries(rng)
    recalls = {mode: [] for mode in ("lexical", "semantic", "hybrid")}
    for query, rewrites, category, audience in requests:
        relevant = _relevant_ids(catalog, category, audience)
        for mode in recalls:
            outcome = engine.search(query, rewrites, mode=mode)
            recalls[mode].append(_recall_at_k(outcome.doc_ids, relevant, RECALL_K))
    recall = {mode: float(np.mean(values)) for mode, values in recalls.items()}

    # -- ANN vs brute force on one flat 50k index ----------------------------
    flat = VectorIndex(
        encoder.config.output_dim, num_clusters=ann_clusters, seed=scale.seed
    )
    flat.fit(doc_ids, embeddings, iterations=8)

    query_texts = [q for q, _, _, _ in requests] + [
        " ".join(p.title_tokens) for p in catalog.products[: NUM_ANN_QUERIES - len(requests)]
    ]
    query_vecs = encoder.encode_queries(query_texts)
    exact = [
        [doc_id for _, doc_id in flat.brute_force(q, RECALL_K)] for q in query_vecs
    ]

    chosen_nprobe = NPROBE_SWEEP[-1]
    matched_recall = 0.0
    for nprobe in NPROBE_SWEEP:
        overlaps = []
        for q, truth in zip(query_vecs, exact):
            got = {doc_id for _, doc_id in flat.search(q, RECALL_K, nprobe=nprobe)}
            overlaps.append(len(got & set(truth)) / len(truth))
        matched_recall = float(np.mean(overlaps))
        if matched_recall >= MATCHED_RECALL_FLOOR:
            chosen_nprobe = nprobe
            break

    started = time.perf_counter()
    for _ in range(timing_rounds):
        for q in query_vecs:
            flat.brute_force(q, RECALL_K)
    brute_seconds = time.perf_counter() - started

    started = time.perf_counter()
    for _ in range(timing_rounds):
        for q in query_vecs:
            flat.search(q, RECALL_K, nprobe=chosen_nprobe)
    ann_seconds = time.perf_counter() - started
    total_queries = timing_rounds * len(query_vecs)

    # -- churn through the hybrid engine (all tiers in lockstep) -------------
    generator = CatalogGenerator(CatalogConfig(seed=scale.seed))
    churn_rng = np.random.default_rng(scale.seed + 2)
    fresh = generator.sample_products(
        churn_docs, churn_rng, start_id=catalog.next_product_id()
    )
    for product in fresh:
        engine.add_product(product)
    removed = fresh[: churn_docs // 2]
    for product in removed:
        engine.remove_product(product.product_id)
    removed_ids = {p.product_id for p in removed}

    # The vector tier must never surface a delisted product, even when
    # probed with the delisted product's own (most favorable) embedding.
    dead_hits = 0
    for product in removed:
        probe = encoder.encode_title(list(product.title_tokens))
        hits = engine.vector.search(probe, 50)
        dead_hits += sum(1 for _, doc_id in hits if doc_id in removed_ids)
    for query, rewrites, _, _ in requests[:10]:
        outcome = engine.search(query, rewrites, mode="semantic")
        dead_hits += sum(1 for doc_id in outcome.doc_ids if doc_id in removed_ids)

    kept = fresh[-1]
    kept_vec = encoder.encode_title(list(kept.title_tokens))
    kept_ids = [doc_id for _, doc_id in engine.vector.search(kept_vec, 20, nprobe=64)]
    probe_found = (
        kept.product_id in kept_ids
        and kept.product_id in engine.search(" ".join(kept.title_tokens), mode="lexical").doc_ids
    )
    docs_after_churn = len(engine.vector)
    engine.close()

    measured = {
        "docs_indexed": len(doc_ids),
        "num_gap_queries": len(requests),
        "recall_k": RECALL_K,
        "lexical_recall": recall["lexical"],
        "semantic_recall": recall["semantic"],
        "hybrid_recall": recall["hybrid"],
        "ann_clusters": ann_clusters,
        "ann_nprobe": chosen_nprobe,
        "ann_matched_recall": matched_recall,
        "brute_ms_per_query": brute_seconds * 1000.0 / total_queries,
        "ann_ms_per_query": ann_seconds * 1000.0 / total_queries,
        "ann_speedup": brute_seconds / ann_seconds,
        "churn_docs_added": churn_docs,
        "churn_docs_removed": churn_docs // 2,
        "docs_after_churn": docs_after_churn,
        "churn_dead_hits": dead_hits,
        "churn_probe_found": bool(probe_found),
    }
    rows = [
        ["lexical (BM25 + rewrites)", f"recall@10 {recall['lexical']:.3f}", "-"],
        ["semantic (IVF ANN)", f"recall@10 {recall['semantic']:.3f}", "-"],
        ["hybrid (RRF fusion)", f"recall@10 {recall['hybrid']:.3f}", "-"],
        [
            "brute-force dot product",
            f"{measured['brute_ms_per_query']:.3f} ms/q",
            "-",
        ],
        [
            f"IVF probe (nprobe={chosen_nprobe}/{ann_clusters})",
            f"{measured['ann_ms_per_query']:.3f} ms/q",
            f"{measured['ann_speedup']:.1f}x at recall {matched_recall:.3f}",
        ],
        [
            "churn (lockstep tiers)",
            f"+{churn_docs}/-{churn_docs // 2} docs",
            f"dead hits {dead_hits}, probe {'hit' if probe_found else 'MISS'}",
        ],
    ]
    rendered = ascii_table(["path", "result", "notes"], rows, float_format="{:.3f}")
    return ExperimentResult(
        experiment_id="hybrid_retrieval",
        title="Hybrid lexical/semantic retrieval over the vocabulary gap",
        measured=measured,
        paper={
            "claim": "semantic matching recovers queries term matching cannot serve",
            "scale": "dense retrieval tier next to the production inverted index",
        },
        rendered=rendered,
        notes=(
            "Gap queries use query-side vocabulary only (aliases, colloquial "
            "category names, vague words), so lexical recall is structurally "
            "zero; the ANN comparison holds top-10 agreement with brute force "
            f"at >= {MATCHED_RECALL_FLOOR:.2f} while timing both on the same "
            "50k embedding matrix."
        ),
    )
