"""Table V — latency of RNN / GRU / Transformer encoders and decoders.

The paper measures, on CPU with beam width 3, one layer, vocab 3000 and 15
decode steps, that the transformer *encoder* is the cheapest encoder while
the transformer *decoder* is by far the most expensive decoder (its
self-attention re-reads the whole prefix every step).  That asymmetry is
what justifies the hybrid serving model.  Absolute milliseconds differ on
our substrate; the ordering is the reproduction target.
"""

from __future__ import annotations

import time

import numpy as np

from repro.experiments.rendering import ascii_table
from repro.experiments.result import ExperimentResult
from repro.experiments.scale import ExperimentScale, SMALL
from repro.models import ModelConfig, RecurrentNMT, TransformerNMT

PAPER_TABLE_5 = {
    "encoder": {"rnn": 6.0, "gru": 9.0, "transformer": 3.5},
    "decoder": {"rnn": 30.0, "gru": 35.0, "transformer": 67.5},
}

#: paper measurement conditions
BEAM_WIDTH = 3
DECODE_STEPS = 15
VOCAB_SIZE = 3000
SRC_LEN = 12


def _model(kind: str, d_model: int, seed: int = 0):
    config = ModelConfig(
        vocab_size=VOCAB_SIZE,
        d_model=d_model,
        num_heads=4,
        d_ff=2 * d_model,
        encoder_layers=1,
        decoder_layers=1,
        dropout=0.0,
        max_len=64,
        cell_type=kind if kind in ("rnn", "gru") else "gru",
        seed=seed,
    )
    if kind == "transformer":
        return TransformerNMT(config)
    return RecurrentNMT(config, use_attention=False)


def _time_encoder(model, src: np.ndarray, repeats: int) -> float:
    timings = []
    for _ in range(repeats):
        started = time.perf_counter()
        model.start(src)
        timings.append(time.perf_counter() - started)
    return float(np.median(timings) * 1000.0)


def _time_decoder(model, src: np.ndarray, repeats: int) -> float:
    """Decoder-only time: 15 steps at beam width 3, encoder excluded.

    Measured on the model's *uncached* decode path (``use_cache=False``):
    Table V characterizes the architectures the paper deployed, where the
    transformer decoder re-attends over its whole prefix each step.  The
    KV-cached path our serving tier uses flattens exactly the growth this
    table exists to show (see the serving_batched experiment for that
    comparison).
    """
    timings = []
    for _ in range(repeats):
        state = model.start(src, use_cache=False)
        state = state.reorder(np.zeros(BEAM_WIDTH, dtype=np.int64), model)
        last = np.full(BEAM_WIDTH, model.sos_id, dtype=np.int64)
        started = time.perf_counter()
        for _step in range(DECODE_STEPS):
            logits, state = model.step(state, last)
            last = logits.argmax(axis=-1).astype(np.int64)
        timings.append(time.perf_counter() - started)
    return float(np.median(timings) * 1000.0)


def run(scale: ExperimentScale = SMALL, repeats: int = 5) -> ExperimentResult:
    rng = np.random.default_rng(scale.seed)
    src = rng.integers(4, VOCAB_SIZE, size=(1, SRC_LEN)).astype(np.int64)
    measured: dict[str, dict[str, float]] = {"encoder": {}, "decoder": {}}
    for kind in ("rnn", "gru", "transformer"):
        model = _model(kind, scale.d_model, seed=scale.seed)
        model.eval()
        measured["encoder"][kind] = _time_encoder(model, src, repeats)
        measured["decoder"][kind] = _time_decoder(model, src, repeats)

    rows = []
    for part in ("encoder", "decoder"):
        for kind in ("rnn", "gru", "transformer"):
            rows.append(
                [part, kind, PAPER_TABLE_5[part][kind], measured[part][kind]]
            )
    rendered = ascii_table(
        ["component", "model", "paper ms", "measured ms"], rows, float_format="{:.2f}"
    )
    return ExperimentResult(
        experiment_id="table5",
        title="Latency of different translation models (ms)",
        measured=measured,
        paper=PAPER_TABLE_5,
        rendered=rendered,
        notes=(
            "Reproduction target is the ordering: transformer decoder slowest "
            "(per-step cost grows with prefix), recurrent decoders constant-cost."
        ),
    )
