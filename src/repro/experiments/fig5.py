"""Figure 5 / Section III-H — merged syntax tree cost.

The paper's system claim: merging the original and rewritten queries into
one AND/OR tree keeps tree size and retrieval cost close to the
single-query case, instead of multiplying by the number of rewrites.  We
measure node counts and postings accesses for merged vs per-query trees
over real rewrites produced by the joint model.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.rendering import ascii_table
from repro.experiments.result import ExperimentResult
from repro.experiments.scale import ExperimentScale, SMALL
from repro.experiments.shared import build_context
from repro.search import SearchEngine


def run(scale: ExperimentScale = SMALL) -> ExperimentResult:
    context = build_context(scale)
    engine = SearchEngine(context.marketplace.catalog)
    rewriter = context.rewriter("joint")
    queries = context.evaluation_queries(scale.eval_queries)

    ratios_postings: list[float] = []
    ratios_nodes: list[float] = []
    merged_costs: list[int] = []
    separate_costs: list[int] = []
    evaluated = 0
    for query in queries:
        rewrites = [r.text for r in rewriter.rewrite(query, k=3)]
        if not rewrites:
            continue
        comparison = engine.compare_costs(query, rewrites)
        ratios_postings.append(comparison["postings_ratio"])
        ratios_nodes.append(comparison["nodes_ratio"])
        merged_costs.append(int(comparison["merged_postings"]))
        separate_costs.append(int(comparison["separate_postings"]))
        evaluated += 1

    if not evaluated:
        raise RuntimeError("no query produced rewrites; cannot measure tree merge")

    measured = {
        "queries_evaluated": evaluated,
        # Aggregate cost ratio (total merged / total separate) — the system
        # quantity the paper optimizes; per-query ratio means are also kept
        # but are dominated by tiny-denominator outliers.
        "total_postings_ratio": float(np.sum(merged_costs) / max(1, np.sum(separate_costs))),
        "mean_postings_ratio": float(np.mean(ratios_postings)),
        "mean_nodes_ratio": float(np.mean(ratios_nodes)),
        "mean_merged_postings": float(np.mean(merged_costs)),
        "mean_separate_postings": float(np.mean(separate_costs)),
    }
    rows = [
        [
            "postings accessed (totals)",
            measured["mean_separate_postings"],
            measured["mean_merged_postings"],
            measured["total_postings_ratio"],
        ],
        ["tree-node ratio (merged/separate)", "-", "-", measured["mean_nodes_ratio"]],
    ]
    rendered = ascii_table(
        ["cost", "separate trees", "merged tree", "merged/separate"], rows,
        float_format="{:.3f}",
    )
    return ExperimentResult(
        experiment_id="fig5",
        title="Merged syntax tree for rewritten queries (Section III-H)",
        measured=measured,
        paper={"claim": "merged tree only slightly larger than the original query's tree"},
        rendered=rendered,
        notes="Target: merged/separate ratios well below 1 (shared tokens read once).",
    )
