"""Table I — dataset statistics."""

from __future__ import annotations

from repro.experiments.rendering import ascii_table
from repro.experiments.result import ExperimentResult
from repro.experiments.scale import ExperimentScale, SMALL
from repro.experiments.shared import build_context

PAPER_TABLE_1 = {
    "num_query_item_pairs": 300_000_000,
    "num_search_sessions": 5_600_000_000,
    "vocab_size": 9744,
    "avg_query_words": 6.12,
    "avg_title_words": 49.96,
}


def run(scale: ExperimentScale = SMALL) -> ExperimentResult:
    context = build_context(scale)
    measured = context.marketplace.click_log.statistics()
    rows = [
        [key, f"{PAPER_TABLE_1[key]:,}" if isinstance(PAPER_TABLE_1[key], int) else PAPER_TABLE_1[key], measured[key]]
        for key in PAPER_TABLE_1
    ]
    rendered = ascii_table(["statistic", "paper", "measured"], rows, float_format="{:.2f}")
    return ExperimentResult(
        experiment_id="table1",
        title="Statistics of data set",
        measured=measured,
        paper=PAPER_TABLE_1,
        rendered=rendered,
        notes=(
            "Synthetic marketplace is ~6 orders of magnitude smaller by design; "
            "the structural facts the models rely on hold: titles are several "
            "times longer than queries, and the vocabulary is shared."
        ),
    )
