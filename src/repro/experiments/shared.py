"""Shared experiment context: one marketplace + trained model pairs.

Training the forward/backward pairs dominates experiment cost, and most
tables/figures need the *same* trained models, so a per-scale context is
built once and cached for the lifetime of the process.  The context holds:

* the synthetic marketplace (catalog, click log, vocab, splits);
* a **separately trained** model pair (Eq. 1-2 only) with its Figure-7
  convergence history;
* a **jointly trained** pair (Algorithm 1, cyclic loss after warmup) with
  its history;
* rewriters over both pairs, the rule-based baseline, SimRank++, the dual
  encoder for cosine scoring, and the simulated labeler.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines import RuleBasedRewriter, SimRankPP
from repro.core import CyclicRewriter, RewriterConfig
from repro.data import (
    MarketplaceConfig,
    Marketplace,
    build_rule_dictionary,
    generate_marketplace,
)
from repro.data.catalog import CatalogConfig
from repro.data.clicklog import ClickLogConfig
from repro.data.dataset import ParallelCorpus
from repro.embedding import DualEncoder, train_dual_encoder
from repro.evaluation import SimulatedLabeler
from repro.experiments.scale import ExperimentScale
from repro.models import ModelConfig, TransformerNMT
from repro.training import ConvergenceTracker, CyclicConfig, CyclicTrainer, History


@dataclass
class TrainedPair:
    """A forward/backward model pair plus its training diagnostics."""

    forward: TransformerNMT
    backward: TransformerNMT
    train_history: History
    convergence: History  # q2t_/t2q_/q2q_ series (Figure 7)


@dataclass
class ExperimentContext:
    scale: ExperimentScale
    marketplace: Marketplace
    separate: TrainedPair
    joint: TrainedPair
    rule_rewriter: RuleBasedRewriter
    encoder: DualEncoder
    labeler: SimulatedLabeler
    _simrank: SimRankPP | None = field(default=None, repr=False)

    @property
    def vocab(self):
        return self.marketplace.vocab

    @property
    def simrank(self) -> SimRankPP:
        if self._simrank is None:
            self._simrank = SimRankPP(self.marketplace.click_log)
        return self._simrank

    def rewriter(self, regime: str) -> CyclicRewriter:
        """A fresh rewriter over the separate or joint model pair."""
        pair = {"separate": self.separate, "joint": self.joint}[regime]
        return CyclicRewriter(
            pair.forward,
            pair.backward,
            self.vocab,
            RewriterConfig(
                k=self.scale.beam_width + 1,
                top_n=self.scale.top_n,
                max_title_len=self.scale.max_title_len,
                max_query_len=10,
                seed=self.scale.seed,
            ),
        )

    def evaluation_queries(self, n: int | None = None) -> list[str]:
        """Held-out query texts (most-clicked first, deterministic)."""
        records = sorted(
            self.marketplace.click_log.queries.values(),
            key=lambda r: (-r.total_clicks, r.text),
        )
        n = n or self.scale.eval_queries
        return [r.text for r in records[:n]]

    def evaluation_intents(self, n: int | None = None):
        """(query text, intent) pairs for judge/A-B experiments."""
        records = sorted(
            self.marketplace.click_log.queries.values(),
            key=lambda r: (-r.total_clicks, r.text),
        )
        n = n or self.scale.human_eval_queries
        return [(r.text, r.intent) for r in records[:n]]


_CONTEXT_CACHE: dict[str, ExperimentContext] = {}


def build_context(scale: ExperimentScale, use_cache: bool = True) -> ExperimentContext:
    """Build (or fetch) the full experiment context for a scale preset."""
    if use_cache and scale.name in _CONTEXT_CACHE:
        return _CONTEXT_CACHE[scale.name]

    marketplace = generate_marketplace(
        MarketplaceConfig(
            catalog=CatalogConfig(products_per_category=scale.products_per_category),
            clicks=ClickLogConfig(
                num_sessions=scale.num_sessions,
                # Query universe grows with traffic so head repetition stays
                # realistic without exhausting the intent space.
                intent_pool_size=max(150, scale.num_sessions // 15),
            ),
            seed=scale.seed,
        )
    )
    vocab_size = len(marketplace.vocab)

    separate = _train_pair(marketplace, scale, cyclic=False)
    joint = _train_pair(marketplace, scale, cyclic=True)

    context = ExperimentContext(
        scale=scale,
        marketplace=marketplace,
        separate=separate,
        joint=joint,
        rule_rewriter=RuleBasedRewriter(build_rule_dictionary()),
        encoder=_train_encoder(marketplace, scale),
        labeler=SimulatedLabeler(marketplace.catalog),
    )
    if use_cache:
        _CONTEXT_CACHE[scale.name] = context
    return context


def make_models(scale: ExperimentScale, vocab_size: int) -> tuple[TransformerNMT, TransformerNMT]:
    """A fresh forward (deeper) / backward (1-layer) transformer pair."""
    forward = TransformerNMT(
        ModelConfig(
            vocab_size=vocab_size,
            d_model=scale.d_model,
            num_heads=scale.num_heads,
            d_ff=scale.d_ff,
            encoder_layers=scale.forward_layers,
            decoder_layers=scale.forward_layers,
            dropout=0.0,
            seed=scale.seed,
        )
    )
    backward = TransformerNMT(
        ModelConfig(
            vocab_size=vocab_size,
            d_model=scale.d_model,
            num_heads=scale.num_heads,
            d_ff=scale.d_ff,
            encoder_layers=scale.backward_layers,
            decoder_layers=scale.backward_layers,
            dropout=0.0,
            seed=scale.seed + 1,
        )
    )
    return forward, backward


def _train_pair(
    marketplace: Marketplace, scale: ExperimentScale, cyclic: bool
) -> TrainedPair:
    total_steps = scale.warmup_steps + scale.joint_steps
    forward, backward = make_models(scale, len(marketplace.vocab))
    trainer = CyclicTrainer(
        forward,
        backward,
        marketplace.train_pairs,
        marketplace.vocab,
        CyclicConfig(
            batch_size=scale.batch_size,
            max_steps=total_steps,
            beam_width=scale.beam_width,
            top_n=scale.top_n,
            # cyclic=False trains to the end in "warmup" mode = Eq. 1-2 only.
            warmup_steps=scale.warmup_steps if cyclic else total_steps + 1,
            max_title_len=scale.max_title_len,
            log_every=max(1, total_steps // 16),
            seed=scale.seed,
        ),
    )
    tracker = _make_tracker(marketplace, forward, backward, scale)
    eval_every = max(1, total_steps // 8)

    def callback(step: int) -> None:
        if step % eval_every == 0 or step == total_steps:
            tracker.evaluate(step)

    trainer.train(total_steps, callback=callback)
    tracker.evaluate(total_steps)
    return TrainedPair(
        forward=forward,
        backward=backward,
        train_history=trainer.history,
        convergence=tracker.history,
    )


def _make_tracker(
    marketplace: Marketplace,
    forward: TransformerNMT,
    backward: TransformerNMT,
    scale: ExperimentScale,
) -> ConvergenceTracker:
    eval_pairs = marketplace.eval_pairs or marketplace.train_pairs[: scale.eval_queries]
    forward_eval = ParallelCorpus.from_pairs(eval_pairs, marketplace.vocab, swap=False)
    backward_eval = ParallelCorpus.from_pairs(eval_pairs, marketplace.vocab, swap=True)
    queries = [
        marketplace.vocab.encode(list(q), add_eos=True)
        for q, _, _ in eval_pairs[: scale.eval_queries]
    ]
    return ConvergenceTracker(
        forward,
        backward,
        forward_eval,
        backward_eval,
        queries,
        marketplace.vocab,
        k=scale.beam_width,
        top_n=scale.top_n,
        seed=scale.seed,
    )


def _train_encoder(marketplace: Marketplace, scale: ExperimentScale) -> DualEncoder:
    encoder = DualEncoder(marketplace.vocab)
    train_dual_encoder(
        encoder,
        marketplace.train_pairs,
        steps=max(100, scale.warmup_steps),
        rng=np.random.default_rng(scale.seed),
    )
    return encoder
