"""Table VII — lexical/semantic similarity of rewrites vs baselines.

Paper numbers:

=============  =====  =============  =================
method         F1 ↑   Edit Dist ↓    Cosine Sim ↑
=============  =====  =============  =================
Rule-based     0.676  1.767          0.711
Separate       0.193  5.340          0.660
Joint          0.254  4.821          0.668
=============  =====  =============  =================

Shape: rule-based rewrites are lexically near-identical to the original
(high F1, tiny edit distance) — safe but unable to bridge vocabulary gaps;
the translation models are far more diverse at a small cosine cost, with
the joint model slightly more conservative (higher F1, higher cosine) than
the separate one.
"""

from __future__ import annotations

import numpy as np

from repro.data.synonyms import build_rule_dictionary, sample_queries_with_rules
from repro.evaluation import method_similarity_metrics
from repro.experiments.rendering import ascii_table
from repro.experiments.result import ExperimentResult
from repro.experiments.scale import ExperimentScale, SMALL
from repro.experiments.shared import build_context

PAPER_TABLE_7 = {
    "rule_based": {"f1": 0.676, "edit_distance": 1.767, "cosine": 0.711},
    "separate": {"f1": 0.193, "edit_distance": 5.340, "cosine": 0.660},
    "joint": {"f1": 0.254, "edit_distance": 4.821, "cosine": 0.668},
}


def run(scale: ExperimentScale = SMALL) -> ExperimentResult:
    context = build_context(scale)
    rng = np.random.default_rng(scale.seed)
    queries = sample_queries_with_rules(
        context.marketplace.click_log,
        build_rule_dictionary(),
        scale.human_eval_queries,
        rng,
    )
    methods = {
        "rule_based": context.rule_rewriter,
        "separate": context.rewriter("separate"),
        "joint": context.rewriter("joint"),
    }
    measured = {
        name: method_similarity_metrics(method, queries, context.encoder, k=3)
        for name, method in methods.items()
    }
    rows = []
    for name in ("rule_based", "separate", "joint"):
        paper = PAPER_TABLE_7[name]
        ours = measured[name]
        rows.append(
            [
                name,
                paper["f1"], ours["f1"],
                paper["edit_distance"], ours["edit_distance"],
                paper["cosine"], ours.get("cosine", float("nan")),
            ]
        )
    rendered = ascii_table(
        [
            "method",
            "F1 paper", "F1 ours",
            "edit paper", "edit ours",
            "cos paper", "cos ours",
        ],
        rows,
        float_format="{:.3f}",
    )
    return ExperimentResult(
        experiment_id="table7",
        title="Comparison between baseline methods and the proposed methods",
        measured=measured,
        paper=PAPER_TABLE_7,
        rendered=rendered,
        notes="Target: rule >> models on F1/cosine and << on edit distance.",
    )
