"""Section V exploration — GPT2-style LM rewriting vs the joint pair.

The paper fine-tunes a pretrained GPT2 on the special language
``query <sep1> title <sep2> query2`` and reports they "have not found it
performs better than our jointly trained machine translation models yet."

We train the same-architecture causal LM from scratch on the marketplace's
special-language corpus (no pretrained weights exist offline) and compare
judged rewrite relevance and coverage against the joint cyclic pair.
"""

from __future__ import annotations

import numpy as np

from repro.core import LMRewriter, LMRewriterConfig, build_lm_sequences
from repro.experiments.rendering import ascii_table
from repro.experiments.result import ExperimentResult
from repro.experiments.scale import ExperimentScale, SMALL
from repro.experiments.shared import build_context
from repro.models.config import ModelConfig


def run(scale: ExperimentScale = SMALL) -> ExperimentResult:
    context = build_context(scale)
    marketplace = context.marketplace
    vocab = marketplace.vocab

    lm = LMRewriter(
        vocab,
        model_config=ModelConfig(
            vocab_size=len(vocab),
            d_model=scale.d_model,
            num_heads=scale.num_heads,
            d_ff=scale.d_ff,
            decoder_layers=scale.forward_layers,
            dropout=0.0,
            seed=scale.seed,
        ),
        config=LMRewriterConfig(
            train_steps=scale.warmup_steps + scale.joint_steps,
            top_n=scale.top_n,
            seed=scale.seed,
        ),
    )
    sequences = build_lm_sequences(
        marketplace.train_pairs, marketplace.synonym_pairs, vocab
    )
    losses = lm.fit(sequences)

    joint = context.rewriter("joint")
    labeler = context.labeler
    evaluation = context.evaluation_intents(scale.human_eval_queries // 2)

    scores = {"lm": [], "joint": []}
    coverage = {"lm": 0, "joint": 0}
    for query, intent in evaluation:
        for name, method in (("lm", lm), ("joint", joint)):
            rewrites = [r.text for r in method.rewrite(query, k=3)]
            if rewrites:
                coverage[name] += 1
            scores[name].append(labeler.best_relevance(intent, rewrites))

    measured = {
        "lm_relevance": float(np.mean(scores["lm"])),
        "joint_relevance": float(np.mean(scores["joint"])),
        "lm_coverage": coverage["lm"] / len(evaluation),
        "joint_coverage": coverage["joint"] / len(evaluation),
        "lm_final_loss": float(np.mean(losses[-10:])),
    }
    rows = [
        ["judged relevance", measured["joint_relevance"], measured["lm_relevance"]],
        ["coverage", measured["joint_coverage"], measured["lm_coverage"]],
    ]
    rendered = ascii_table(["metric", "joint pair", "causal LM"], rows)
    return ExperimentResult(
        experiment_id="lm_exploration",
        title="Section V: causal-LM rewriting vs the jointly trained pair",
        measured=measured,
        paper={"claim": "GPT2 fine-tuning did not beat the joint translation models"},
        rendered=rendered,
        notes=(
            "Our LM is trained from scratch (no offline pretrained GPT2), so the "
            "comparison is architecture-level; the paper's conclusion holds here."
        ),
    )
