"""Figure 6 — attention heat maps of the two translation hops.

The paper visualizes, for "阿迪 舒适 男生 鞋子" (Ah-Di comfortable men's
shoe), how the query-to-title cross attention aligns the brand shorthand
with the real brand token while skipping the vague word, and how the
title-to-query attention then reads the canonical brand back out.

Our marketplace carries the same structure: "ah-di" is the alias of
"adidas", "comfortable" is a vague word absent from titles.  We render the
cross-attention of both hops as ASCII heat maps and report the alignment
mass between alias and brand token.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.rendering import render_heatmap
from repro.experiments.result import ExperimentResult
from repro.experiments.scale import ExperimentScale, SMALL
from repro.experiments.shared import build_context

SHOWCASE_QUERY = "comfortable ah-di men shoe"


def _attention_matrix(model, src_ids: np.ndarray, tgt_ids: np.ndarray) -> np.ndarray:
    """Mean-over-heads cross attention of the final decoder layer,
    shape (tgt_len, src_len)."""
    from repro.autograd import no_grad

    with no_grad():
        model.forward(src_ids, tgt_ids[:, :-1])
    maps = model.cross_attention_maps()
    if not maps:
        raise RuntimeError("model recorded no cross-attention weights")
    return maps[-1][0].mean(axis=0)  # (tgt_len-ish, src_len)


def run(scale: ExperimentScale = SMALL) -> ExperimentResult:
    context = build_context(scale)
    vocab = context.vocab
    joint = context.rewriter("joint")
    forward, backward = context.joint.forward, context.joint.backward

    results = joint.rewrite(SHOWCASE_QUERY, k=1)
    if not results:
        raise RuntimeError(f"joint model produced no rewrite for {SHOWCASE_QUERY!r}")
    title_tokens = list(results[0].via_title)
    rewrite_tokens = list(results[0].tokens)
    query_tokens = SHOWCASE_QUERY.split()

    # Hop 1: query -> title.
    q_src = np.array([vocab.encode(query_tokens, add_eos=True)])
    t_tgt = np.array([vocab.encode(title_tokens, add_sos=True, add_eos=True)])
    hop1 = _attention_matrix(forward, q_src, t_tgt)

    # Hop 2: title -> rewritten query.
    t_src = np.array([vocab.encode(title_tokens, add_eos=True)])
    r_tgt = np.array([vocab.encode(rewrite_tokens, add_sos=True, add_eos=True)])
    hop2 = _attention_matrix(backward, t_src, r_tgt)

    x1 = query_tokens + ["<eos>"]
    y1 = title_tokens + ["<eos>"]
    x2 = title_tokens + ["<eos>"]
    y2 = rewrite_tokens + ["<eos>"]
    heatmap1 = render_heatmap(hop1[: len(y1), : len(x1)], x1, y1)
    heatmap2 = render_heatmap(hop2[: len(y2), : len(x2)], x2, y2)

    # Alignment check: does the generated brand token attend to the alias?
    alias_mass = float("nan")
    if "ah-di" in query_tokens and "adidas" in title_tokens:
        alias_col = query_tokens.index("ah-di")
        brand_row = title_tokens.index("adidas")
        alias_mass = float(hop1[brand_row + 0, alias_col])

    rendered = "\n".join(
        [
            f"query: {SHOWCASE_QUERY!r}",
            f"synthetic title: {' '.join(title_tokens)!r}",
            f"rewritten query: {' '.join(rewrite_tokens)!r}",
            "",
            "hop 1 (query -> title) cross attention:",
            heatmap1,
            "",
            "hop 2 (title -> rewritten query) cross attention:",
            heatmap2,
        ]
    )
    return ExperimentResult(
        experiment_id="fig6",
        title="Attention heat maps between query, synthetic title and rewritten query",
        measured={
            "title": title_tokens,
            "rewrite": rewrite_tokens,
            "alias_to_brand_attention": alias_mass,
        },
        paper={"example": "'Ah Di comfortable men's shoe' -> 'Adidas men's shoe'"},
        rendered=rendered,
        notes="Qualitative: brand alias should attend to the brand token; the vague word should receive little mass.",
    )
