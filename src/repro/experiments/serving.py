"""Section III-G — online-serving tradeoff: cache coverage + model fallback.

The paper's two-tier deployment: precomputed rewrites for head queries
(>80% traffic, <5 ms) and a fast hybrid q2q model for the long tail
(~30 ms).  We populate a *bounded, sharded* cache with the head of the
simulated traffic distribution, replay traffic through the batched
serving path (requests arrive in batches; misses share one stacked
decode), and report tier shares, latency percentiles, and the cache's
occupancy/eviction gauges.  Model-tier results are written back into the
cache, so repeated tail queries promote themselves and the LRU bound
evicts whatever went cold — the "top 8M queries" tier as a finite
resource rather than an ever-growing dict.
"""

from __future__ import annotations

import numpy as np

from repro.core import DirectRewriter, RewriteCache, RewriterConfig, ServingConfig, ServingPipeline
from repro.data.dataset import ParallelCorpus, train_eval_split
from repro.experiments.rendering import ascii_table
from repro.experiments.result import ExperimentResult
from repro.experiments.scale import ExperimentScale, SMALL
from repro.experiments.shared import build_context
from repro.models import HybridNMT, ModelConfig
from repro.training import SeparateTrainer, TrainingConfig

#: requests per serving batch in the traffic replay
BATCH_SIZE = 16
#: cache shards (the partitioned key-value deployment)
CACHE_SHARDS = 4


def _train_q2q_model(context, steps: int) -> HybridNMT:
    marketplace = context.marketplace
    train_pairs, _ = train_eval_split(marketplace.synonym_pairs, 0.1)
    corpus = ParallelCorpus.from_pairs(train_pairs, marketplace.vocab)
    model = HybridNMT(
        ModelConfig(
            vocab_size=len(marketplace.vocab),
            d_model=context.scale.d_model,
            num_heads=context.scale.num_heads,
            d_ff=context.scale.d_ff,
            encoder_layers=1,
            decoder_layers=1,
            dropout=0.0,
            seed=context.scale.seed,
        )
    )
    SeparateTrainer(
        model, corpus, TrainingConfig(batch_size=16, max_steps=steps, seed=context.scale.seed)
    ).train(steps)
    return model


def run(scale: ExperimentScale = SMALL, head_fraction: float = 0.4) -> ExperimentResult:
    context = build_context(scale)
    rng = np.random.default_rng(scale.seed)
    click_log = context.marketplace.click_log

    # Traffic distribution: queries weighted by click volume.
    records = sorted(
        click_log.queries.values(), key=lambda r: (-r.total_clicks, r.text)
    )
    texts = [r.text for r in records]
    weights = np.array([max(r.total_clicks, 1) for r in records], dtype=float)
    weights /= weights.sum()

    # Tier 1: precompute rewrites for the head of the distribution into a
    # capacity-bounded sharded LRU.  Capacity carries 25% headroom over the
    # head set: the bound is split evenly across shards while crc32 key
    # placement is not, so an exact-fit budget would evict head entries
    # from whichever shard runs hot.
    head_count = max(CACHE_SHARDS, int(len(texts) * head_fraction))
    cache = RewriteCache(
        capacity=max(CACHE_SHARDS, int(head_count * 1.25)), shards=CACHE_SHARDS
    )
    offline_rewriter = context.rewriter("joint")
    cache.populate(offline_rewriter, texts[:head_count], k=3)

    # Tier 2: fast q2q hybrid fallback.
    q2q_model = _train_q2q_model(context, steps=scale.warmup_steps)
    fallback = DirectRewriter(
        q2q_model,
        context.vocab,
        RewriterConfig(k=3, top_n=scale.top_n, max_query_len=10, seed=scale.seed),
    )
    pipeline = ServingPipeline(
        cache, fallback, ServingConfig(max_rewrites=3, cache_model_results=True)
    )

    # Replay traffic in serving batches: misses share one stacked decode.
    n_requests = scale.abtest_sessions_per_day * 2
    requests = [
        texts[int(i)] for i in rng.choice(len(texts), size=n_requests, p=weights)
    ]
    for start in range(0, n_requests, BATCH_SIZE):
        pipeline.serve_batch(requests[start : start + BATCH_SIZE])

    stats = pipeline.stats
    measured = {
        "cache_entries": len(cache),
        "cache_capacity": cache.capacity,
        "cache_fill_ratio": stats.cache_fill_ratio,
        "cache_evictions": stats.cache_evictions,
        "cache_share": stats.cache_served / max(1, stats.total),
        "model_share": stats.model_served / max(1, stats.total),
        "unserved_share": stats.unserved / max(1, stats.total),
        "mean_latency_ms": stats.mean_latency_ms(),
        "p50_latency_ms": stats.p50_latency_ms(),
        "p95_latency_ms": stats.p95_latency_ms(),
        "p99_latency_ms": stats.p99_latency_ms(),
    }
    occupancy = ", ".join(str(n) for n in stats.cache_shard_occupancy)
    rows = [
        ["traffic served from cache", "> 80% (top 8M queries)", f"{measured['cache_share']:.1%}"],
        ["traffic served by q2q model", "long tail", f"{measured['model_share']:.1%}"],
        ["cache occupancy / capacity", "top-8M budget", f"{len(cache)}/{cache.capacity} ({measured['cache_fill_ratio']:.0%})"],
        ["cache evictions (LRU)", "finite KV store", f"{measured['cache_evictions']}"],
        ["per-shard occupancy", f"{CACHE_SHARDS} shards", occupancy],
        ["mean latency", "<5ms cache / ~30ms model", f"{measured['mean_latency_ms']:.2f} ms"],
        ["p50 / p95 / p99 latency", "~50ms budget", (
            f"{measured['p50_latency_ms']:.2f} / "
            f"{measured['p95_latency_ms']:.2f} / "
            f"{measured['p99_latency_ms']:.2f} ms"
        )],
    ]
    rendered = ascii_table(["quantity", "paper", "measured"], rows, float_format="{:.3f}")
    return ExperimentResult(
        experiment_id="serving",
        title="Online serving tradeoff (Section III-G)",
        measured=measured,
        paper={"cache_share": ">0.8", "latency": "30ms CPU"},
        rendered=rendered,
        notes=(
            "Bounded sharded-LRU head cache plus batched direct-q2q fallback; "
            "model-tier results are written back so hot tail queries promote "
            "themselves under the LRU capacity."
        ),
    )
