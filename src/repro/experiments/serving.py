"""Section III-G — online-serving tradeoff: cache coverage + model fallback.

The paper's two-tier deployment: precomputed rewrites for head queries
(>80% traffic, <5 ms) and a fast hybrid q2q model for the long tail
(~30 ms).  We populate a cache with the head of the simulated traffic
distribution, serve a traffic replay through the pipeline, and report tier
shares and latencies.
"""

from __future__ import annotations

import numpy as np

from repro.core import DirectRewriter, RewriteCache, RewriterConfig, ServingConfig, ServingPipeline
from repro.data.dataset import ParallelCorpus, train_eval_split
from repro.experiments.rendering import ascii_table
from repro.experiments.result import ExperimentResult
from repro.experiments.scale import ExperimentScale, SMALL
from repro.experiments.shared import build_context
from repro.models import HybridNMT, ModelConfig
from repro.training import SeparateTrainer, TrainingConfig


def _train_q2q_model(context, steps: int) -> HybridNMT:
    marketplace = context.marketplace
    train_pairs, _ = train_eval_split(marketplace.synonym_pairs, 0.1)
    corpus = ParallelCorpus.from_pairs(train_pairs, marketplace.vocab)
    model = HybridNMT(
        ModelConfig(
            vocab_size=len(marketplace.vocab),
            d_model=context.scale.d_model,
            num_heads=context.scale.num_heads,
            d_ff=context.scale.d_ff,
            encoder_layers=1,
            decoder_layers=1,
            dropout=0.0,
            seed=context.scale.seed,
        )
    )
    SeparateTrainer(
        model, corpus, TrainingConfig(batch_size=16, max_steps=steps, seed=context.scale.seed)
    ).train(steps)
    return model


def run(scale: ExperimentScale = SMALL, head_fraction: float = 0.4) -> ExperimentResult:
    context = build_context(scale)
    rng = np.random.default_rng(scale.seed)
    click_log = context.marketplace.click_log

    # Traffic distribution: queries weighted by click volume.
    records = sorted(
        click_log.queries.values(), key=lambda r: (-r.total_clicks, r.text)
    )
    texts = [r.text for r in records]
    weights = np.array([max(r.total_clicks, 1) for r in records], dtype=float)
    weights /= weights.sum()

    # Tier 1: precompute rewrites for the head of the distribution.
    head_count = max(1, int(len(texts) * head_fraction))
    cache = RewriteCache()
    offline_rewriter = context.rewriter("joint")
    cache.populate(offline_rewriter, texts[:head_count], k=3)

    # Tier 2: fast q2q hybrid fallback.
    q2q_model = _train_q2q_model(context, steps=scale.warmup_steps)
    fallback = DirectRewriter(
        q2q_model,
        context.vocab,
        RewriterConfig(k=3, top_n=scale.top_n, max_query_len=10, seed=scale.seed),
    )
    pipeline = ServingPipeline(cache, fallback, ServingConfig(max_rewrites=3))

    # Replay traffic.
    n_requests = scale.abtest_sessions_per_day * 2
    for _ in range(n_requests):
        query = texts[int(rng.choice(len(texts), p=weights))]
        pipeline.serve(query)

    stats = pipeline.stats
    measured = {
        "cache_entries": len(cache),
        "cache_share": stats.cache_served / max(1, stats.total),
        "model_share": stats.model_served / max(1, stats.total),
        "unserved_share": stats.unserved / max(1, stats.total),
        "mean_latency_ms": stats.mean_latency_ms(),
        "p99_latency_ms": stats.p99_latency_ms(),
    }
    rows = [
        ["traffic served from cache", "> 80% (top 8M queries)", f"{measured['cache_share']:.1%}"],
        ["traffic served by q2q model", "long tail", f"{measured['model_share']:.1%}"],
        ["mean latency", "<5ms cache / ~30ms model", f"{measured['mean_latency_ms']:.2f} ms"],
        ["p99 latency", "~50ms budget", f"{measured['p99_latency_ms']:.2f} ms"],
    ]
    rendered = ascii_table(["quantity", "paper", "measured"], rows, float_format="{:.3f}")
    return ExperimentResult(
        experiment_id="serving",
        title="Online serving tradeoff (Section III-G)",
        measured=measured,
        paper={"cache_share": ">0.8", "latency": "30ms CPU"},
        rendered=rendered,
        notes="Head-query caching plus direct-q2q fallback reproduces the two-tier design.",
    )
