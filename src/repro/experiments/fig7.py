"""Figure 7 — training convergence: separately vs jointly trained models.

Three panels (perplexity, log probability, accuracy), each with q2t, t2q
and q2q curves.  The paper's findings, which we test for:

* after the warmup boundary G, the joint model's **q2q** metrics jump —
  translate-back log probability and accuracy rise, q2q perplexity falls —
  while the separate model's stay flat(ter);
* t2q quality is essentially unaffected by joint training;
* q2t quality may degrade slightly (traded for q2q quality).
"""

from __future__ import annotations

from repro.experiments.rendering import render_series
from repro.experiments.result import ExperimentResult
from repro.experiments.scale import ExperimentScale, SMALL
from repro.experiments.shared import build_context

_PANELS = ("perplexity", "log_prob", "accuracy")
_MODELS = ("q2t", "t2q", "q2q")


def run(scale: ExperimentScale = SMALL) -> ExperimentResult:
    context = build_context(scale)
    histories = {"separate": context.separate.convergence, "joint": context.joint.convergence}

    measured: dict[str, float] = {}
    lines: list[str] = [f"(cyclic loss enabled after step {scale.warmup_steps})"]
    for panel in _PANELS:
        lines.append(f"\n-- {panel} --")
        for model in _MODELS:
            for regime, history in histories.items():
                name = f"{model}_{panel}"
                steps, values = history.series(name)
                if values:
                    measured[f"{regime}_{name}_final"] = values[-1]
                    lines.append(render_series(f"{regime} {model}", steps, values))
    rendered = "\n".join(lines)
    return ExperimentResult(
        experiment_id="fig7",
        title="Training convergence: separate vs joint (perplexity / log prob / accuracy)",
        measured=measured,
        paper={
            "claim": "joint training boosts q2q translate-back metrics after warmup; t2q unchanged; q2t slightly traded off"
        },
        rendered=rendered,
    )
