"""Figure 8 — transformer-based vs attention-based (Bahdanau) NMT.

The paper trains both architectures in its rewriting scenario and finds the
transformer clearly better on all three metrics (perplexity, accuracy, log
probability).  We train both as query-to-title models on the same click
pairs and track held-out teacher-forced metrics over steps.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import ParallelCorpus
from repro.experiments.rendering import ascii_table, render_series
from repro.experiments.result import ExperimentResult
from repro.experiments.scale import ExperimentScale, SMALL
from repro.experiments.shared import build_context
from repro.models import AttentionNMT, ModelConfig, TransformerNMT
from repro.training import SeparateTrainer, TrainingConfig, teacher_forced_metrics


def _train_and_track(model, corpus, eval_corpus, steps: int, seed: int):
    trainer = SeparateTrainer(
        model, corpus, TrainingConfig(batch_size=16, max_steps=steps, seed=seed)
    )
    points: dict[str, list] = {"steps": [], "perplexity": [], "accuracy": [], "log_prob": []}
    eval_every = max(1, steps // 8)
    for step in range(1, steps + 1):
        trainer.train_step()
        if step % eval_every == 0 or step == steps:
            metrics = teacher_forced_metrics(model, eval_corpus, max_batches=4)
            model.train()
            points["steps"].append(step)
            for key in ("perplexity", "accuracy", "log_prob"):
                points[key].append(metrics[key])
    return points


def run(scale: ExperimentScale = SMALL) -> ExperimentResult:
    context = build_context(scale)
    marketplace = context.marketplace
    corpus = marketplace.forward_corpus
    eval_corpus = ParallelCorpus.from_pairs(
        marketplace.eval_pairs or marketplace.train_pairs[:32], marketplace.vocab
    )
    steps = scale.warmup_steps
    base = ModelConfig(
        vocab_size=len(marketplace.vocab),
        d_model=scale.d_model,
        num_heads=scale.num_heads,
        d_ff=scale.d_ff,
        encoder_layers=scale.forward_layers,
        decoder_layers=scale.forward_layers,
        dropout=0.0,
        seed=scale.seed,
    )
    transformer_points = _train_and_track(
        TransformerNMT(base), corpus, eval_corpus, steps, scale.seed
    )
    attention_points = _train_and_track(
        AttentionNMT(base), corpus, eval_corpus, steps, scale.seed
    )

    measured = {
        "transformer": {k: v[-1] for k, v in transformer_points.items() if k != "steps"},
        "attention": {k: v[-1] for k, v in attention_points.items() if k != "steps"},
    }
    lines = []
    for metric in ("perplexity", "accuracy", "log_prob"):
        lines.append(
            render_series(
                f"transformer {metric}", transformer_points["steps"], transformer_points[metric]
            )
        )
        lines.append(
            render_series(
                f"attention   {metric}", attention_points["steps"], attention_points[metric]
            )
        )
    rows = [
        [metric, measured["transformer"][metric], measured["attention"][metric]]
        for metric in ("perplexity", "accuracy", "log_prob")
    ]
    rendered = "\n".join(lines + ["", ascii_table(["final metric", "transformer", "attention"], rows)])
    return ExperimentResult(
        experiment_id="fig8",
        title="Transformer-based vs attention-based NMT",
        measured=measured,
        paper={"claim": "transformer significantly better on all three metrics"},
        rendered=rendered,
    )
