"""Load replay through the micro-batch scheduler: the qps/p95 tradeoff.

Every serving benchmark so far hand-formed its batches; this one feeds
the serving tier the way production does — single requests arriving on a
Poisson clock — and lets the
:class:`~repro.online.scheduler.MicroBatchScheduler` form the batches.
One arrival trace (head-skewed traffic + catalog churn, from
:meth:`~repro.online.TrafficReplay.arrival_trace`) is replayed through
identical two-tier stacks (bounded cache + untrained-hybrid
``DirectRewriter`` + sharded retrieval) under a sweep of batch policies:

* **serial** — ``max_batch_size=1``: every request pays its own model
  decode, the no-scheduler baseline;
* **micro-N** — dynamic micro-batches under ``max_batch_size=N`` /
  ``max_wait`` so cache misses share one stacked decode; larger N buys
  throughput with (bounded) queueing delay;
* **overload** — a deliberately slow virtual worker behind a short
  queue, showing admission control shedding load instead of letting the
  queue (and delays) grow without bound.

The claims under test (``benchmarks/test_load_replay.py``): micro-
batching sustains ≥2× the serial throughput on the same trace, p95
*virtual* queueing delay stays under each policy's ``max_wait`` bound
whenever the worker keeps up, only the overload arm sheds, and two
replays of the same seed produce byte-identical deterministic counters
(:meth:`~repro.core.serving.ServingStats.counters` and the scheduler
fingerprint).

The fallback model is untrained — decode cost per token matches a
trained one, and scheduling is a property of the serving machinery, not
model quality.
"""

from __future__ import annotations

from repro.core import DirectRewriter, RewriteCache, RewriterConfig, ServingConfig, ServingPipeline
from repro.data.catalog import CatalogConfig, CatalogGenerator
from repro.data.clicklog import ClickLogConfig
from repro.data.marketplace import MarketplaceConfig, generate_marketplace
from repro.experiments.rendering import ascii_table
from repro.experiments.result import ExperimentResult
from repro.experiments.scale import ExperimentScale, SMALL
from repro.models import HybridNMT, ModelConfig
from repro.online import (
    ReplayConfig,
    ReplayReport,
    SchedulerConfig,
    TrafficReplay,
    VirtualClock,
)
from repro.search import SearchConfig, ShardedSearchEngine

#: catalog/traffic shape — a serving-layer workload, independent of
#: ExperimentScale (only the seed comes from the scale preset)
PRODUCTS_PER_CATEGORY = 30
NUM_SESSIONS = 1_500
NUM_REQUESTS = 2_000
CHURN_EVERY = 500
#: mean inter-arrival gap of the Poisson trace (100 req/s of virtual time)
SECONDS_PER_REQUEST = 0.01
#: deliberately small head + undersized cache: the model tier must absorb
#: a real miss stream, which is where batching pays
HEAD_FRACTION = 0.25
#: cache tier and retrieval fan-out
CACHE_SHARDS = 4
NUM_SHARDS = 4
TOP_K = 20
MAX_REWRITES = 3
#: wall-clock timing rounds for the serial-vs-micro throughput ratio
TIMING_ROUNDS = 2

#: the batch-policy sweep; (key, label, SchedulerConfig)
POLICIES: list[tuple[str, str, SchedulerConfig]] = [
    (
        "serial",
        "B=1 (no batching)",
        SchedulerConfig(max_batch_size=1, max_wait_seconds=0.0),
    ),
    (
        "micro8",
        "B≤8, wait≤0.25s",
        SchedulerConfig(max_batch_size=8, max_wait_seconds=0.25),
    ),
    (
        "micro32",
        "B≤32, wait≤0.5s",
        SchedulerConfig(max_batch_size=32, max_wait_seconds=0.5),
    ),
    (
        "micro64",
        "B≤64, wait≤1.0s",
        SchedulerConfig(max_batch_size=64, max_wait_seconds=1.0),
    ),
    (
        "overload",
        "B≤32, slow worker, queue≤48",
        SchedulerConfig(
            max_batch_size=32,
            max_wait_seconds=0.5,
            max_queue_depth=48,
            batch_cost_seconds=1.5,
            request_cost_seconds=0.01,
        ),
    ),
]


def _build_workload(scale: ExperimentScale):
    """One marketplace (for the vocab + click log) and the shared replay.

    A sub-1.0 ``workload_factor`` (the TINY smoke preset) shrinks the
    stream; at 1.0 this is the acceptance workload of
    ``benchmarks/test_load_replay.py``."""
    market = generate_marketplace(
        MarketplaceConfig(
            catalog=CatalogConfig(products_per_category=PRODUCTS_PER_CATEGORY),
            clicks=ClickLogConfig(
                num_sessions=scale.scaled(NUM_SESSIONS, 400),
                intent_pool_size=250,
            ),
            seed=scale.seed,
        )
    )
    # Same CatalogConfig (and seed) the marketplace catalog was generated
    # from, so every arm's `generator.generate()` catalog copy matches the
    # click log's product universe and the schedule's removal targets.
    generator = CatalogGenerator(market.config.catalog)
    num_requests = scale.scaled(NUM_REQUESTS, 300)
    replay = TrafficReplay(
        market.click_log,
        generator,
        ReplayConfig(
            num_requests=num_requests,
            churn_every=scale.scaled(CHURN_EVERY, 100),
            head_fraction=HEAD_FRACTION,
            seconds_per_request=SECONDS_PER_REQUEST,
            seed=scale.seed,
        ),
    )
    return market, generator, replay


def _run_arm(
    market,
    generator: CatalogGenerator,
    replay: TrafficReplay,
    scale: ExperimentScale,
    policy: SchedulerConfig,
    *,
    arm: str,
) -> ReplayReport:
    """A fresh serving stack replaying the shared trace under one policy."""
    model = HybridNMT(
        ModelConfig(
            vocab_size=len(market.vocab),
            d_model=32,
            num_heads=4,
            d_ff=64,
            encoder_layers=1,
            decoder_layers=1,
            dropout=0.0,
            seed=scale.seed,
        )
    )
    model.eval()
    fallback = DirectRewriter(
        model,
        market.vocab,
        RewriterConfig(k=MAX_REWRITES, top_n=5, max_query_len=10, seed=scale.seed),
    )
    engine = ShardedSearchEngine(
        generator.generate(),
        SearchConfig(max_candidates=TOP_K, ranker="bm25"),
        num_shards=NUM_SHARDS,
        parallel=False,
    )
    clock = VirtualClock()
    head = replay.head_queries()
    # Undersized on purpose: only part of the head fits, so write-backs
    # keep LRU pressure on and the tail faults through the model tier.
    capacity = max(CACHE_SHARDS, len(head) // 2)
    cache = RewriteCache(capacity=capacity, shards=CACHE_SHARDS, clock=clock.now)
    cache.populate(fallback, list(head), k=MAX_REWRITES)
    pipeline = ServingPipeline(
        cache,
        fallback,
        ServingConfig(max_rewrites=MAX_REWRITES, cache_model_results=True),
        search_engine=engine,
    )
    try:
        return replay.run_scheduled(pipeline, clock, policy, arm=arm)
    finally:
        engine.close()


def run(scale: ExperimentScale = SMALL) -> ExperimentResult:
    market, generator, replay = _build_workload(scale)
    num_requests = replay.config.num_requests
    timing_rounds = scale.timing_rounds(TIMING_ROUNDS)

    # The full policy sweep, one arm per policy on fresh stacks.
    reports: dict[str, ReplayReport] = {}
    for key, _, policy in POLICIES:
        reports[key] = _run_arm(
            market, generator, replay, scale, policy, arm=key
        )

    # Extra wall-clock rounds for the serial-vs-micro throughput ratio,
    # interleaved so machine drift charges both arms equally; best-of-N
    # absorbs scheduler noise (all counters are identical across rounds).
    serial_seconds = [reports["serial"].seconds]
    micro_seconds = [reports["micro32"].seconds]
    for round_index in range(1, timing_rounds):
        order = ("micro32", "serial") if round_index % 2 else ("serial", "micro32")
        for key in order:
            policy = next(p for k, _, p in POLICIES if k == key)
            report = _run_arm(market, generator, replay, scale, policy, arm=key)
            (serial_seconds if key == "serial" else micro_seconds).append(
                report.seconds
            )
    serial_qps = num_requests / min(serial_seconds)
    micro_qps = num_requests / min(micro_seconds)

    # Determinism: a second replay of the micro-32 arm on a fresh stack
    # must reproduce every deterministic counter byte for byte.
    rerun = _run_arm(
        market,
        generator,
        replay,
        scale,
        next(p for k, _, p in POLICIES if k == "micro32"),
        arm="micro32-rerun",
    )
    first = reports["micro32"]
    deterministic = (
        rerun.scheduler.fingerprint() == first.scheduler.fingerprint()
        and rerun.cache_served == first.cache_served
        and rerun.model_served == first.model_served
        and rerun.unserved == first.unserved
    )

    measured: dict[str, object] = {
        "requests": num_requests,
        "churn_events": reports["serial"].churn_events,
        "head_queries": len(replay.head_queries()),
        "serial_qps": serial_qps,
        "micro32_qps": micro_qps,
        "speedup": micro_qps / serial_qps if serial_qps else 0.0,
        "deterministic": deterministic,
    }
    for key, _, policy in POLICIES:
        report = reports[key]
        sched = report.scheduler
        if key not in ("serial", "micro32"):
            # serial/micro32 keep their best-of-N qps from above — the
            # values the speedup was computed from; a first-round-only
            # number here would contradict the recorded ratio.
            measured[f"{key}_qps"] = report.qps
        measured[f"{key}_completed"] = sched.completed
        measured[f"{key}_shed"] = sched.shed
        measured[f"{key}_batches"] = sched.batches
        measured[f"{key}_mean_batch"] = sched.mean_batch_size()
        measured[f"{key}_p95_queue_delay_s"] = sched.p95_queue_delay_seconds()
        measured[f"{key}_max_queue_delay_s"] = (
            max(sched.queue_delays_seconds) if sched.queue_delays_seconds else 0.0
        )
        measured[f"{key}_max_wait_s"] = policy.max_wait_seconds
        measured[f"{key}_peak_queue_depth"] = sched.peak_queue_depth
        measured[f"{key}_hit_rate"] = report.stats.lifetime_hit_rate
        measured[f"{key}_dead_doc_hits"] = report.dead_doc_hits

    rows = []
    for key, label, policy in POLICIES:
        report = reports[key]
        sched = report.scheduler
        rows.append(
            [
                label,
                f"{report.qps:.0f} req/s",
                f"{sched.p95_queue_delay_seconds() * 1000:.0f} ms",
                f"{sched.mean_batch_size():.1f}",
                f"{sched.shed}",
            ]
        )
    rows.append(
        [
            "serial -> micro-32 speedup",
            f"{measured['speedup']:.2f}x (target >= 2x)",
            "-",
            "-",
            "-",
        ]
    )
    rendered = ascii_table(
        ["policy", "throughput", "p95 queue delay (virtual)", "mean batch", "shed"],
        rows,
        float_format="{:.3f}",
    )
    return ExperimentResult(
        experiment_id="load_replay",
        title="Micro-batch scheduling under load (qps vs queueing delay)",
        measured=measured,
        paper={
            "claim": "the serving tier absorbs bursty single-request traffic",
            "setting": "Section III-G deployment behind a batching scheduler",
        },
        rendered=rendered,
        notes=(
            "One Poisson arrival trace (head-skewed + churn) replayed under "
            "each batch policy on identical fresh stacks; virtual-clock "
            "scheduling makes every counter reproducible, wall-clock qps "
            "measured per arm.  Larger micro-batches buy throughput at "
            "bounded queueing delay; the overload arm shows backpressure "
            "shedding instead of unbounded queues."
        ),
    )
