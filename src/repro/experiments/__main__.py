"""Command-line runner for the paper's experiments.

Usage::

    python -m repro.experiments list
    python -m repro.experiments table7
    python -m repro.experiments fig7 --scale default
    python -m repro.experiments all --out results/

``--out DIR`` additionally writes each result's ASCII artifact to
``DIR/<experiment_id>.txt`` (the same shape the benchmark suite leaves
under ``benchmarks/results/``).
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from repro.experiments import DEFAULT, SMALL, TINY
from repro.experiments import (
    ablations,
    examples_tables,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    gateway_soak,
    hybrid_retrieval,
    lm_exploration,
    load_replay,
    online_replay,
    persistence,
    retrieval_scale,
    scenarios,
    serving,
    serving_batched,
    table1,
    table2,
    table5,
    table6,
    table7,
    table8,
)

RUNNERS = {
    "table1": table1.run,
    "table2": table2.run,
    "table3_table4": examples_tables.run,
    "table5": table5.run,
    "table6": table6.run,
    "table7": table7.run,
    "table8": table8.run,
    "fig5": fig5.run,
    "fig6": fig6.run,
    "fig7": fig7.run,
    "fig8": fig8.run,
    "fig9": fig9.run,
    "serving": serving.run,
    "serving_batched": serving_batched.run,
    "retrieval_scale": retrieval_scale.run,
    "hybrid_retrieval": hybrid_retrieval.run,
    "online_replay": online_replay.run,
    "load_replay": load_replay.run,
    "persistence": persistence.run,
    "scenarios": scenarios.run,
    "gateway_soak": gateway_soak.run,
    "ablation_lambda": ablations.lambda_sweep,
    "ablation_diversity": ablations.decoder_diversity,
    "ablation_warmup": ablations.warmup_sensitivity,
    "ablation_offline_metric": ablations.offline_metric,
    "lm_exploration": lm_exploration.run,
}

SCALES = {"tiny": TINY, "small": SMALL, "default": DEFAULT}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate tables/figures of the ICDE'21 query-rewriting paper.",
    )
    parser.add_argument("experiment", help="experiment id, 'list', or 'all'")
    parser.add_argument("--scale", choices=sorted(SCALES), default="small")
    parser.add_argument(
        "--out",
        metavar="DIR",
        default=None,
        help="also write each result to DIR/<experiment_id>.txt",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name in RUNNERS:
            print(name)
        return 0

    names = list(RUNNERS) if args.experiment == "all" else [args.experiment]
    unknown = [n for n in names if n not in RUNNERS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(RUNNERS)}", file=sys.stderr)
        return 2

    scale = SCALES[args.scale]
    out_dir = pathlib.Path(args.out) if args.out else None
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
    for name in names:
        started = time.time()
        result = RUNNERS[name](scale)
        print(result.render())
        print(f"[{name} finished in {time.time() - started:.1f}s]\n")
        if out_dir is not None:
            artifact = out_dir / f"{result.experiment_id}.txt"
            artifact.write_text(result.render() + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
