"""Sharded retrieval: N single-writer index shards with fan-out search.

The single :class:`~repro.search.inverted_index.InvertedIndex` serves the
paper's figures; the ROADMAP's "heavy traffic" north star needs the shape
of a production index: documents partitioned across shards that can be
updated independently (one writer per shard, no global write lock) and
searched in parallel, with per-shard top-k results merged into a global
top-k.

Layout and semantics:

* **Partitioning** — ``doc_id % num_shards``, stable and computable by
  any tier without a routing table.
* **Pluggable backends** — shard state lives behind a
  :class:`~repro.cluster.ShardBackend`: threads in this process
  (:class:`~repro.cluster.InprocBackend`, the default — single-writer
  mutex per shard, fan-out through one clamped shared pool), worker
  *processes* serving RPCs over pipes
  (:class:`~repro.cluster.ProcessBackend`, breaking the GIL), or an
  N-way :class:`~repro.cluster.ReplicaRouter` over either.  Both
  backends execute the same :mod:`repro.cluster.ops` handlers, so the
  deployment choice never changes a result.
* **Fan-out / merge** — a query (plus rewrites) compiles to ONE merged
  syntax tree (Section III-H applies unchanged per shard), every shard
  evaluates and ranks its local top-k, and the per-shard ``(score,
  doc_id)`` heaps merge into the global top-k.  Every shard ranks
  against *global* corpus statistics, pinned into the ranker and pruned
  to the query's own tokens (the only frequencies the ranker protocol
  consults) so they ship over a pipe in O(query) bytes — the merged
  result is identical to ranking an unsharded index, bit for bit.
* **Cost accounting** — ``postings_accessed`` sums over shards.  A term's
  postings are split across shards, so the total equals the unsharded
  cost modulo per-shard early exits, and the merged-tree-vs-separate-trees
  comparison (Figure 5) carries over shard by shard.
"""

from __future__ import annotations

import heapq
import threading
from dataclasses import dataclass

from repro.cluster import InprocBackend, ProcessBackend, ShardBackend
from repro.data.catalog import Catalog
from repro.search.engine import SearchConfig, SearchOutcome
from repro.search.inverted_index import IndexStats
from repro.search.ranking import Ranker, make_ranker
from repro.search.syntax_tree import build_tree, merge_queries, tree_size
from repro.text import tokenize


def merge_topk(
    per_shard: list[list[tuple[float, int]]], k: int
) -> list[tuple[float, int]]:
    """K-way merge of per-shard ``(score, doc_id)`` top-k lists.

    Returns the global top-``k``, best score first, ties broken by
    ascending doc id — exactly the order a single index ranking the union
    would produce.  O(total · log k) via a bounded heap.  Pure function;
    shared by the lexical (:class:`ShardedIndex`) and semantic
    (:class:`~repro.search.vector.ShardedVectorIndex`) fan-outs.
    """
    merged = heapq.nsmallest(
        k,
        ((-score, doc_id) for top in per_shard for score, doc_id in top),
    )
    return [(-neg, doc_id) for neg, doc_id in merged]


def resolve_backend(
    tier: str,
    backend,
    root,
    *,
    parallel: bool = True,
    timeout: float | None = None,
):
    """Materialize a load-time ``backend`` choice for a segment store.

    ``backend`` is ``"inproc"`` (decode in this process, thread
    fan-out), ``"process"`` (spawn one worker per shard, each
    cold-starting its own chain via ``SegmentStore.load_shard``), or an
    already-built :class:`~repro.cluster.ShardBackend` /
    :class:`~repro.cluster.ReplicaRouter` instance, returned as-is.
    Shared by the lexical and vector restore paths.
    """
    if not isinstance(backend, str):
        if backend.tier != tier:
            raise ValueError(
                f"backend serves tier {backend.tier!r}, expected {tier!r}"
            )
        return backend
    if backend == "process":
        return ProcessBackend(tier, store_root=root, timeout=timeout)
    if backend != "inproc":
        raise ValueError(
            f"unknown backend {backend!r}; expected 'inproc', 'process', "
            "or a ShardBackend instance"
        )
    import numpy as np

    from repro.store import SegmentCorruptError, SegmentStore

    indexes = SegmentStore(root, tier).load()
    for shard_id, index in enumerate(indexes):
        live_ids = index._docs if tier == "lexical" else index._vectors
        ids = np.fromiter(live_ids, dtype=np.int64, count=len(live_ids))
        if ids.size and np.any(ids % len(indexes) != shard_id):
            raise SegmentCorruptError(
                f"shard {shard_id} holds documents routed to another shard"
            )
    return InprocBackend(tier, indexes=indexes, parallel=parallel)


@dataclass
class ShardedOutcome:
    """Global top-k plus per-shard accounting for one fan-out search."""

    doc_ids: list[int]
    scores: list[float]
    postings_accessed: int
    per_shard_postings: list[int]
    per_shard_candidates: list[int]
    tree_nodes: int

    def __len__(self) -> int:
        return len(self.doc_ids)


class ShardedIndex:
    """Documents partitioned over N single-writer inverted-index shards."""

    def __init__(
        self,
        num_shards: int = 4,
        *,
        parallel: bool = True,
        backend: ShardBackend | None = None,
    ):
        """Fresh thread-backed shards by default; ``backend`` injects any
        pre-built deployment (a loaded :class:`~repro.cluster.
        ProcessBackend`, a :class:`~repro.cluster.ReplicaRouter`, ...) —
        global statistics are then rebuilt from the backend's shards."""
        if backend is None:
            if num_shards < 1:
                raise ValueError("num_shards must be >= 1")
            backend = InprocBackend(
                "lexical", num_shards=num_shards, parallel=parallel
            )
        elif backend.tier != "lexical":
            raise ValueError(
                f"backend serves tier {backend.tier!r}, expected 'lexical'"
            )
        self._backend = backend
        self.num_shards = backend.num_shards
        self.parallel = getattr(backend, "parallel", True)
        # Global corpus statistics are maintained incrementally on every
        # write (O(distinct tokens of the doc)), so interleaved churn and
        # search never pays a full-vocabulary rescan.
        self._stats_lock = threading.Lock()
        self._num_docs = 0
        self._total_length = 0
        self._dfs: dict[str, int] = {}
        self._seed_stats()

    def _seed_stats(self) -> None:
        """Rebuild global statistics as exact integer sums over shards.

        One fan-out at construction; zero-cost for fresh empty shards,
        and after a cold start it reproduces the same integers the live
        index held, keeping BM25 bit-identical across restore/replica
        boundaries.
        """
        for num_docs, total_length, dfs in self._backend.fanout("stats_raw"):
            self._num_docs += num_docs
            self._total_length += total_length
            for token, count in dfs.items():
                self._dfs[token] = self._dfs.get(token, 0) + count

    @property
    def backend(self) -> ShardBackend:
        """The shard backend this index routes through."""
        return self._backend

    # -- partitioning ---------------------------------------------------------
    def shard_of(self, doc_id: int) -> int:
        """The owning shard: ``doc_id % num_shards``."""
        return doc_id % self.num_shards

    def shard_sizes(self) -> list[int]:
        """Live document count per shard."""
        return self._backend.fanout("shard_size")

    def __len__(self) -> int:
        return sum(self.shard_sizes())

    def __contains__(self, doc_id: int) -> bool:
        return self._backend.call(self.shard_of(doc_id), "contains", doc_id)

    # -- incremental maintenance ----------------------------------------------
    def add_document(self, doc_id: int, tokens: list[str] | tuple[str, ...]) -> None:
        """Index one document in its owning shard (that shard only).

        Global corpus statistics update under their own lock — O(distinct
        tokens), never a full-vocabulary rescan.
        """
        tokens = tuple(tokens)
        self._backend.call(self.shard_of(doc_id), "add", doc_id, tokens)
        with self._stats_lock:
            self._num_docs += 1
            self._total_length += len(tokens)
            for token in set(tokens):
                self._dfs[token] = self._dfs.get(token, 0) + 1

    def remove_document(self, doc_id: int) -> None:
        """Unindex one document from its owning shard, inverse of add."""
        tokens = self._backend.call(self.shard_of(doc_id), "remove", doc_id)
        with self._stats_lock:
            self._num_docs -= 1
            self._total_length -= len(tokens)
            for token in set(tokens):
                remaining = self._dfs[token] - 1
                if remaining:
                    self._dfs[token] = remaining
                else:
                    del self._dfs[token]

    def document(self, doc_id: int) -> tuple[str, ...]:
        """The indexed token tuple of ``doc_id`` (KeyError if absent)."""
        return self._backend.call(self.shard_of(doc_id), "doc", doc_id)

    def document_ids(self) -> list[int]:
        """Sorted ids of every live document across all shards.

        The audit surface for tenant isolation: a per-tenant index must
        only ever hold ids from its tenant's id space, churn included.
        """
        ids: list[int] = []
        for shard_ids in self._backend.fanout("doc_ids"):
            ids.extend(shard_ids)
        return sorted(ids)

    def stats(self) -> IndexStats:
        """Global corpus statistics, maintained incrementally.

        The integer total length keeps ``avg_doc_length`` bit-identical to
        what an unsharded index over the same corpus would compute, which
        in turn keeps sharded BM25 scores equal to unsharded ones.  The
        document-frequency table is the live counter dict (rankers only
        ``.get`` from it), so building the view is O(1), not O(vocabulary).
        """
        with self._stats_lock:
            return IndexStats(
                num_docs=self._num_docs,
                avg_doc_length=(
                    self._total_length / self._num_docs if self._num_docs else 0.0
                ),
                document_frequencies=self._dfs,
            )

    def _query_stats(self, queries: list[list[str]]) -> IndexStats:
        """Global statistics pruned to the query's own tokens.

        The ranker protocol only consults ``document_frequency`` for the
        tokens it ranks, so this view scores identically to the full
        table while costing O(query tokens) to build and to pickle —
        what makes shipping the pinned ranker to a worker process cheap
        AND bit-identical.
        """
        tokens: set[str] = set()
        for query in queries:
            tokens.update(query)
        with self._stats_lock:
            return IndexStats(
                num_docs=self._num_docs,
                avg_doc_length=(
                    self._total_length / self._num_docs if self._num_docs else 0.0
                ),
                document_frequencies={
                    token: self._dfs[token] for token in tokens if token in self._dfs
                },
            )

    # -- persistence -----------------------------------------------------------
    def save(self, root):
        """Persist every shard into a ``"lexical"`` segment store at ``root``.

        Quiesces the backend for the snapshot (in-process: all shard
        mutexes held; worker processes: consistent pickled copies).
        Incremental after the first save: unchanged shards write
        nothing, churned shards append a delta segment, heavily churned
        shards rewrite their base.  Returns the new
        :class:`~repro.store.Manifest`.
        """
        from repro.store import SegmentStore

        store = SegmentStore(root, "lexical")
        with self._backend.quiesce() as indexes:
            return store.save(indexes)

    @classmethod
    def load(
        cls,
        root,
        *,
        parallel: bool = True,
        backend: str | ShardBackend = "inproc",
        timeout: float | None = None,
    ) -> "ShardedIndex":
        """Restore a sharded index saved by :meth:`save`.

        The shard count comes from the store.  ``backend`` picks the
        deployment: ``"inproc"`` decodes every shard in this process
        (thread fan-out, the default), ``"process"`` spawns one worker
        per shard that cold-starts its own chain (``timeout`` bounds
        each RPC).  Global corpus statistics are rebuilt as exact
        integer sums over the decoded shards, so BM25 scores after a
        reload are bit-identical to the live index the store was saved
        from.  Routing is re-validated; every checksum failure raises a
        typed :class:`~repro.store.StoreError`.
        """
        return cls(
            backend=resolve_backend(
                "lexical", backend, root, parallel=parallel, timeout=timeout
            )
        )

    # -- fan-out search --------------------------------------------------------
    def search(
        self,
        queries: list[list[str]],
        k: int,
        ranker: Ranker | None = None,
        merge_trees: bool = True,
    ) -> ShardedOutcome:
        """Evaluate ``queries`` (original + rewrites, tokenized) on every
        shard and merge the per-shard top-k heaps into the global top-k."""
        queries = [q for q in queries if q]
        if not queries:
            raise ValueError("sharded search received no non-empty query")
        ranker = (ranker or make_ranker("bm25")).with_stats(
            self._query_stats(queries)
        )

        if merge_trees:
            trees = [merge_queries(queries)]
        else:
            trees = [build_tree(q) for q in queries]
        nodes = sum(tree_size(t) for t in trees)
        query_tokens = list(queries[0])

        shard_results = self._backend.fanout(
            "search", trees, query_tokens, ranker, k
        )

        # Global top-k: k-way merge of the per-shard bounded heaps.
        merged = merge_topk([top for top, _, _ in shard_results], k)
        return ShardedOutcome(
            doc_ids=[doc_id for _, doc_id in merged],
            scores=[score for score, _ in merged],
            postings_accessed=sum(cost for _, cost, _ in shard_results),
            per_shard_postings=[cost for _, cost, _ in shard_results],
            per_shard_candidates=[n for _, _, n in shard_results],
            tree_nodes=nodes,
        )

    # -- deployment reporting --------------------------------------------------
    def cluster_stats(self) -> dict:
        """Backend choice + failover counters (see ``ServingStats``)."""
        return dict(self._backend.describe())

    def close(self) -> None:
        """Release the backend (threads or worker processes; idempotent)."""
        self._backend.close()

    def __enter__(self) -> "ShardedIndex":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ShardedSearchEngine:
    """Drop-in, catalog-facing facade over :class:`ShardedIndex`.

    Mirrors :class:`~repro.search.engine.SearchEngine`'s ``search(query,
    rewrites)`` surface so the serving pipeline's ``search_batch`` can use
    either engine, while exposing the sharded index for incremental
    catalog updates.
    """

    def __init__(
        self,
        catalog: Catalog,
        config: SearchConfig | None = None,
        *,
        num_shards: int = 4,
        parallel: bool = True,
        ranker: Ranker | None = None,
        index: ShardedIndex | None = None,
    ):
        """``index`` injects a pre-built sharded index (the restore path:
        :meth:`load` skips the per-product catalog build entirely); when
        given, ``num_shards``/``parallel`` are taken from it."""
        self.catalog = catalog
        self.config = config or SearchConfig(ranker="bm25")
        self.ranker = ranker or make_ranker(self.config.ranker)
        if index is not None:
            self.index = index
        else:
            self.index = ShardedIndex(num_shards, parallel=parallel)
            for product in catalog.products:
                self.index.add_document(product.product_id, product.title_tokens)

    # -- persistence -----------------------------------------------------------
    def save(self, root):
        """Persist the engine's index (see :meth:`ShardedIndex.save`)."""
        return self.index.save(root)

    @classmethod
    def load(
        cls,
        catalog: Catalog,
        root,
        config: SearchConfig | None = None,
        *,
        parallel: bool = True,
        ranker: Ranker | None = None,
        backend: str | ShardBackend = "inproc",
        timeout: float | None = None,
    ) -> "ShardedSearchEngine":
        """Cold-start an engine from a segment store instead of the catalog.

        Restores the sharded index from ``root`` (checksums verified,
        global statistics rebuilt exactly) and wraps it with the given
        catalog and config — O(store size), without re-tokenizing or
        re-adding a single product.  ``backend`` picks the deployment
        (see :meth:`ShardedIndex.load`).  The catalog is only consulted
        for future churn, so it may legitimately differ from the
        persisted document set until the caller reconciles them.
        """
        return cls(
            catalog,
            config,
            ranker=ranker,
            index=ShardedIndex.load(
                root, parallel=parallel, backend=backend, timeout=timeout
            ),
        )

    def add_document(self, doc_id: int, tokens) -> None:
        """Index a raw document (index only; see :meth:`add_product`)."""
        self.index.add_document(doc_id, tokens)

    def remove_document(self, doc_id: int) -> None:
        """Unindex a raw document (index only; see :meth:`remove_product`)."""
        self.index.remove_document(doc_id)

    def document_ids(self) -> list[int]:
        """Sorted live document ids (see :meth:`ShardedIndex.document_ids`)."""
        return self.index.document_ids()

    # -- catalog-level churn ---------------------------------------------------
    def add_product(self, product) -> None:
        """Add a product to the catalog AND the live index, in lockstep.

        The one-call form keeps the two structures from drifting under
        churn: a product is either in both (searchable, resolvable) or in
        neither.  ``Catalog.add_product`` validates id uniqueness first,
        so a rejected add never half-lands in the index.
        """
        self.catalog.add_product(product)
        self.index.add_document(product.product_id, product.title_tokens)

    def remove_product(self, product_id: int) -> None:
        """Remove a product from the catalog AND the live index."""
        self.catalog.remove_product(product_id)
        self.index.remove_document(product_id)

    def search(self, query: str, rewrites: list[str] | None = None) -> SearchOutcome:
        """Fan-out retrieval of ``query`` + rewrites over every shard.

        One merged syntax tree (Section III-H), per-shard evaluation and
        ranking against global statistics, exact global top-k merge.
        """
        rewrites = rewrites or []
        queries = [tokenize(query)] + [tokenize(r) for r in rewrites]
        queries = [q for q in queries if q]
        if not queries:
            raise ValueError("search received an empty query")
        outcome = self.index.search(
            queries,
            k=self.config.max_candidates,
            ranker=self.ranker,
            merge_trees=self.config.merge_trees,
        )
        return SearchOutcome(
            query=query,
            rewrites=list(rewrites),
            doc_ids=outcome.doc_ids,
            postings_accessed=outcome.postings_accessed,
            tree_nodes=outcome.tree_nodes,
            num_trees=1 if self.config.merge_trees else len(queries),
            scores=outcome.scores,
        )

    def cluster_stats(self) -> dict:
        """Backend choice + failover counters of the underlying index."""
        return self.index.cluster_stats()

    def close(self) -> None:
        """Release the underlying index's backend."""
        self.index.close()
