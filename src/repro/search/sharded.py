"""Sharded retrieval: N single-writer index shards with fan-out search.

The single :class:`~repro.search.inverted_index.InvertedIndex` serves the
paper's figures; the ROADMAP's "heavy traffic" north star needs the shape
of a production index: documents partitioned across shards that can be
updated independently (one writer per shard, no global write lock) and
searched in parallel, with per-shard top-k results merged into a global
top-k.

Layout and semantics:

* **Partitioning** — ``doc_id % num_shards``, stable and computable by
  any tier without a routing table.
* **Single-writer shards** — each shard pairs an ``InvertedIndex`` with
  its own mutex; ``add_document``/``remove_document`` lock only the owning
  shard, so writers to different shards never contend.  A search takes
  each shard's mutex for the duration of that shard's local evaluation,
  so it never observes a half-applied write; searches across shards still
  run in parallel, and a write stalls only searches of its own shard.
* **Fan-out / merge** — a query (plus rewrites) compiles to ONE merged
  syntax tree (Section III-H applies unchanged per shard), every shard
  evaluates and ranks its local top-k, and the per-shard ``(score,
  doc_id)`` heaps merge into the global top-k.  Because every shard ranks
  against *global* corpus statistics (:meth:`ShardedIndex.stats`), the
  merged result is identical to ranking an unsharded index.
* **Cost accounting** — ``postings_accessed`` sums over shards.  A term's
  postings are split across shards, so the total equals the unsharded
  cost modulo per-shard early exits, and the merged-tree-vs-separate-trees
  comparison (Figure 5) carries over shard by shard.
"""

from __future__ import annotations

import heapq
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.data.catalog import Catalog
from repro.search.engine import SearchConfig, SearchOutcome
from repro.search.inverted_index import IndexStats, InvertedIndex
from repro.search.postings import union_sorted
from repro.search.ranking import Ranker, make_ranker
from repro.search.syntax_tree import build_tree, merge_queries, tree_size
from repro.text import tokenize


def merge_topk(
    per_shard: list[list[tuple[float, int]]], k: int
) -> list[tuple[float, int]]:
    """K-way merge of per-shard ``(score, doc_id)`` top-k lists.

    Returns the global top-``k``, best score first, ties broken by
    ascending doc id — exactly the order a single index ranking the union
    would produce.  O(total · log k) via a bounded heap.  Pure function;
    shared by the lexical (:class:`ShardedIndex`) and semantic
    (:class:`~repro.search.vector.ShardedVectorIndex`) fan-outs.
    """
    merged = heapq.nsmallest(
        k,
        ((-score, doc_id) for top in per_shard for score, doc_id in top),
    )
    return [(-neg, doc_id) for neg, doc_id in merged]


@dataclass
class ShardedOutcome:
    """Global top-k plus per-shard accounting for one fan-out search."""

    doc_ids: list[int]
    scores: list[float]
    postings_accessed: int
    per_shard_postings: list[int]
    per_shard_candidates: list[int]
    tree_nodes: int

    def __len__(self) -> int:
        return len(self.doc_ids)


class _Shard:
    """One single-writer partition: an index plus its mutex."""

    __slots__ = ("index", "lock")

    def __init__(self):
        self.index = InvertedIndex()
        self.lock = threading.Lock()


class ShardedIndex:
    """Documents partitioned over N single-writer inverted-index shards."""

    def __init__(self, num_shards: int = 4, *, parallel: bool = True):
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.num_shards = num_shards
        self.parallel = parallel and num_shards > 1
        self._shards = [_Shard() for _ in range(num_shards)]
        self._executor: ThreadPoolExecutor | None = None
        # Global corpus statistics are maintained incrementally on every
        # write (O(distinct tokens of the doc)), so interleaved churn and
        # search never pays a full-vocabulary rescan.
        self._stats_lock = threading.Lock()
        self._num_docs = 0
        self._total_length = 0
        self._dfs: dict[str, int] = {}

    # -- partitioning ---------------------------------------------------------
    def shard_of(self, doc_id: int) -> int:
        """The owning shard: ``doc_id % num_shards``."""
        return doc_id % self.num_shards

    def shard_sizes(self) -> list[int]:
        """Live document count per shard."""
        return [len(shard.index) for shard in self._shards]

    def __len__(self) -> int:
        return sum(self.shard_sizes())

    def __contains__(self, doc_id: int) -> bool:
        return doc_id in self._shards[self.shard_of(doc_id)].index

    # -- incremental maintenance ----------------------------------------------
    def add_document(self, doc_id: int, tokens: list[str] | tuple[str, ...]) -> None:
        """Index one document in its owning shard (shard mutex only).

        Global corpus statistics update under their own lock — O(distinct
        tokens), never a full-vocabulary rescan.
        """
        tokens = tuple(tokens)
        shard = self._shards[self.shard_of(doc_id)]
        with shard.lock:
            shard.index.add_document(doc_id, tokens)
        with self._stats_lock:
            self._num_docs += 1
            self._total_length += len(tokens)
            for token in set(tokens):
                self._dfs[token] = self._dfs.get(token, 0) + 1

    def remove_document(self, doc_id: int) -> None:
        """Unindex one document from its owning shard, inverse of add."""
        shard = self._shards[self.shard_of(doc_id)]
        with shard.lock:
            tokens = shard.index.document(doc_id)
            shard.index.remove_document(doc_id)
        with self._stats_lock:
            self._num_docs -= 1
            self._total_length -= len(tokens)
            for token in set(tokens):
                remaining = self._dfs[token] - 1
                if remaining:
                    self._dfs[token] = remaining
                else:
                    del self._dfs[token]

    def document(self, doc_id: int) -> tuple[str, ...]:
        """The indexed token tuple of ``doc_id`` (KeyError if absent)."""
        return self._shards[self.shard_of(doc_id)].index.document(doc_id)

    def document_ids(self) -> list[int]:
        """Sorted ids of every live document across all shards.

        The audit surface for tenant isolation: a per-tenant index must
        only ever hold ids from its tenant's id space, churn included.
        """
        ids: list[int] = []
        for shard in self._shards:
            with shard.lock:
                ids.extend(shard.index.document_ids())
        return sorted(ids)

    def stats(self) -> IndexStats:
        """Global corpus statistics, maintained incrementally.

        The integer total length keeps ``avg_doc_length`` bit-identical to
        what an unsharded index over the same corpus would compute, which
        in turn keeps sharded BM25 scores equal to unsharded ones.  The
        document-frequency table is the live counter dict (rankers only
        ``.get`` from it), so building the view is O(1), not O(vocabulary).
        """
        with self._stats_lock:
            return IndexStats(
                num_docs=self._num_docs,
                avg_doc_length=(
                    self._total_length / self._num_docs if self._num_docs else 0.0
                ),
                document_frequencies=self._dfs,
            )

    # -- persistence -----------------------------------------------------------
    def save(self, root):
        """Persist every shard into a ``"lexical"`` segment store at ``root``.

        Holds all shard mutexes for the snapshot (single-writer
        discipline: quiesce churn for the duration).  Incremental after
        the first save: unchanged shards write nothing, churned shards
        append a delta segment, heavily churned shards rewrite their
        base.  Returns the new :class:`~repro.store.Manifest`.
        """
        import contextlib

        from repro.store import SegmentStore

        store = SegmentStore(root, "lexical")
        with contextlib.ExitStack() as stack:
            for shard in self._shards:
                stack.enter_context(shard.lock)
            return store.save([shard.index for shard in self._shards])

    @classmethod
    def load(cls, root, *, parallel: bool = True) -> "ShardedIndex":
        """Restore a sharded index saved by :meth:`save`.

        The shard count comes from the store.  Global corpus statistics
        are rebuilt as exact integer sums over the decoded shards, so
        BM25 scores after a reload are bit-identical to the live index
        the store was saved from.  Routing is re-validated; every
        checksum failure raises a typed :class:`~repro.store.StoreError`.
        """
        import numpy as np

        from repro.store import SegmentCorruptError, SegmentStore

        indexes = SegmentStore(root, "lexical").load()
        sharded = cls(len(indexes), parallel=parallel)
        for shard_id, (shard, index) in enumerate(zip(sharded._shards, indexes)):
            ids = np.fromiter(index._docs, dtype=np.int64, count=len(index._docs))
            if ids.size and np.any(ids % len(indexes) != shard_id):
                raise SegmentCorruptError(
                    f"shard {shard_id} holds documents routed to another shard"
                )
            shard.index = index
            sharded._num_docs += len(index)
            sharded._total_length += index.total_doc_length
            for token, postings in index._postings.items():
                sharded._dfs[token] = sharded._dfs.get(token, 0) + len(postings)
        return sharded

    # -- fan-out search --------------------------------------------------------
    def search(
        self,
        queries: list[list[str]],
        k: int,
        ranker: Ranker | None = None,
        merge_trees: bool = True,
    ) -> ShardedOutcome:
        """Evaluate ``queries`` (original + rewrites, tokenized) on every
        shard and merge the per-shard top-k heaps into the global top-k."""
        queries = [q for q in queries if q]
        if not queries:
            raise ValueError("sharded search received no non-empty query")
        ranker = (ranker or make_ranker("bm25")).with_stats(self.stats())

        if merge_trees:
            trees = [merge_queries(queries)]
        else:
            trees = [build_tree(q) for q in queries]
        nodes = sum(tree_size(t) for t in trees)
        query_tokens = list(queries[0])

        def search_shard(shard: _Shard) -> tuple[list[tuple[float, int]], int, int]:
            # Hold the shard mutex for the local evaluation so a concurrent
            # writer to this shard can never expose a half-applied update.
            with shard.lock:
                index = shard.index
                branches = []
                cost = 0
                for tree in trees:
                    docs, tree_cost = tree.evaluate_postings(index)
                    branches.append(docs)
                    cost += tree_cost
                candidates = union_sorted(branches)
                top = ranker.rank_scored(index, query_tokens, candidates, k)
            return top, cost, int(candidates.size)

        if self.parallel:
            executor = self._ensure_executor()
            shard_results = list(executor.map(search_shard, self._shards))
        else:
            shard_results = [search_shard(shard) for shard in self._shards]

        # Global top-k: k-way merge of the per-shard bounded heaps.
        merged = merge_topk([top for top, _, _ in shard_results], k)
        return ShardedOutcome(
            doc_ids=[doc_id for _, doc_id in merged],
            scores=[score for score, _ in merged],
            postings_accessed=sum(cost for _, cost, _ in shard_results),
            per_shard_postings=[cost for _, cost, _ in shard_results],
            per_shard_candidates=[n for _, _, n in shard_results],
            tree_nodes=nodes,
        )

    def _ensure_executor(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.num_shards, thread_name_prefix="shard-search"
            )
        return self._executor

    def close(self) -> None:
        """Shut down the fan-out thread pool (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "ShardedIndex":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ShardedSearchEngine:
    """Drop-in, catalog-facing facade over :class:`ShardedIndex`.

    Mirrors :class:`~repro.search.engine.SearchEngine`'s ``search(query,
    rewrites)`` surface so the serving pipeline's ``search_batch`` can use
    either engine, while exposing the sharded index for incremental
    catalog updates.
    """

    def __init__(
        self,
        catalog: Catalog,
        config: SearchConfig | None = None,
        *,
        num_shards: int = 4,
        parallel: bool = True,
        ranker: Ranker | None = None,
        index: ShardedIndex | None = None,
    ):
        """``index`` injects a pre-built sharded index (the restore path:
        :meth:`load` skips the per-product catalog build entirely); when
        given, ``num_shards``/``parallel`` are taken from it."""
        self.catalog = catalog
        self.config = config or SearchConfig(ranker="bm25")
        self.ranker = ranker or make_ranker(self.config.ranker)
        if index is not None:
            self.index = index
        else:
            self.index = ShardedIndex(num_shards, parallel=parallel)
            for product in catalog.products:
                self.index.add_document(product.product_id, product.title_tokens)

    # -- persistence -----------------------------------------------------------
    def save(self, root):
        """Persist the engine's index (see :meth:`ShardedIndex.save`)."""
        return self.index.save(root)

    @classmethod
    def load(
        cls,
        catalog: Catalog,
        root,
        config: SearchConfig | None = None,
        *,
        parallel: bool = True,
        ranker: Ranker | None = None,
    ) -> "ShardedSearchEngine":
        """Cold-start an engine from a segment store instead of the catalog.

        Restores the sharded index from ``root`` (checksums verified,
        global statistics rebuilt exactly) and wraps it with the given
        catalog and config — O(store size), without re-tokenizing or
        re-adding a single product.  The catalog is only consulted for
        future churn, so it may legitimately differ from the persisted
        document set until the caller reconciles them.
        """
        return cls(
            catalog,
            config,
            ranker=ranker,
            index=ShardedIndex.load(root, parallel=parallel),
        )

    def add_document(self, doc_id: int, tokens) -> None:
        """Index a raw document (index only; see :meth:`add_product`)."""
        self.index.add_document(doc_id, tokens)

    def remove_document(self, doc_id: int) -> None:
        """Unindex a raw document (index only; see :meth:`remove_product`)."""
        self.index.remove_document(doc_id)

    def document_ids(self) -> list[int]:
        """Sorted live document ids (see :meth:`ShardedIndex.document_ids`)."""
        return self.index.document_ids()

    # -- catalog-level churn ---------------------------------------------------
    def add_product(self, product) -> None:
        """Add a product to the catalog AND the live index, in lockstep.

        The one-call form keeps the two structures from drifting under
        churn: a product is either in both (searchable, resolvable) or in
        neither.  ``Catalog.add_product`` validates id uniqueness first,
        so a rejected add never half-lands in the index.
        """
        self.catalog.add_product(product)
        self.index.add_document(product.product_id, product.title_tokens)

    def remove_product(self, product_id: int) -> None:
        """Remove a product from the catalog AND the live index."""
        self.catalog.remove_product(product_id)
        self.index.remove_document(product_id)

    def search(self, query: str, rewrites: list[str] | None = None) -> SearchOutcome:
        """Fan-out retrieval of ``query`` + rewrites over every shard.

        One merged syntax tree (Section III-H), per-shard evaluation and
        ranking against global statistics, exact global top-k merge.
        """
        rewrites = rewrites or []
        queries = [tokenize(query)] + [tokenize(r) for r in rewrites]
        queries = [q for q in queries if q]
        if not queries:
            raise ValueError("search received an empty query")
        outcome = self.index.search(
            queries,
            k=self.config.max_candidates,
            ranker=self.ranker,
            merge_trees=self.config.merge_trees,
        )
        return SearchOutcome(
            query=query,
            rewrites=list(rewrites),
            doc_ids=outcome.doc_ids,
            postings_accessed=outcome.postings_accessed,
            tree_nodes=outcome.tree_nodes,
            num_trees=1 if self.config.merge_trees else len(queries),
            scores=outcome.scores,
        )

    def close(self) -> None:
        """Shut down the underlying sharded index's thread pool."""
        self.index.close()
