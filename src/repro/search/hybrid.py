"""Hybrid lexical/semantic retrieval: BM25 ∪ ANN with rank fusion.

The classic dense-retrieval recipe (DPR-style dual encoders fused with a
BM25 baseline): run the lexical tier and the semantic tier side by side
and fuse their top-k lists, so exact term matches keep their precision
while embedding recall covers the vocabulary gap — the queries whose
tokens (and whose rewrites' tokens) never occur in any title.

Three per-request retrieval modes (:data:`RETRIEVAL_MODES`):

* ``"lexical"`` — the sharded BM25 engine alone (rewrites expand the
  merged syntax tree as before);
* ``"semantic"`` — the ANN tier alone: the *original* query is embedded
  with the dual encoder's query tower and probed against the IVF index
  (rewrites are a lexical device; the embedding already generalizes);
* ``"hybrid"`` — both, fused.

Two fusion strategies:

* **Reciprocal-rank fusion** (:func:`reciprocal_rank_fusion`) —
  ``score(d) = Σ_lists 1 / (rrf_k + rank_d)``; scale-free, so BM25 and
  dot-product scores need no calibration.  The default.
* **Weighted-score fusion** (:func:`weighted_score_fusion`) —
  ``α · norm(lexical) + (1-α) · norm(semantic)`` with per-list min-max
  normalization.  The lexical scores come from whatever
  :class:`~repro.search.ranking.Ranker` the engine is configured with,
  so the strategy composes with any ranker behind the protocol.

Complexity: a hybrid search costs one lexical fan-out plus one ANN probe
plus O(k) fusion.  Thread safety: search is safe under the two tiers'
own shard locking; ``add_product``/``remove_product`` are single-writer
(one churn applier at a time), same as the engines they compose.

``docs/SEMANTIC.md`` documents the tier end to end.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.catalog import Catalog
from repro.search.engine import SearchConfig, SearchOutcome
from repro.search.sharded import ShardedSearchEngine
from repro.search.vector import ShardedVectorIndex
from repro.text import tokenize

#: retrieval modes a hybrid engine accepts per request
RETRIEVAL_MODES = ("lexical", "semantic", "hybrid")


def reciprocal_rank_fusion(
    rankings: list[list[int]], k: int, *, rrf_k: int = 60
) -> list[tuple[float, int]]:
    """Fuse ranked doc-id lists: ``score(d) = Σ 1 / (rrf_k + rank(d))``.

    Ranks are 1-based within each list; documents absent from a list
    simply contribute nothing.  Scale-free — only positions matter — so
    heterogeneous scores (BM25 vs dot product) fuse without calibration.
    Returns the top-``k`` as ``(fused_score, doc_id)``, best first, ties
    broken by ascending doc id.  O(total entries + m log m) for m fused
    candidates.
    """
    if rrf_k < 1:
        raise ValueError("rrf_k must be >= 1")
    fused: dict[int, float] = {}
    for ranking in rankings:
        for rank, doc_id in enumerate(ranking, start=1):
            fused[doc_id] = fused.get(doc_id, 0.0) + 1.0 / (rrf_k + rank)
    ordered = sorted(fused.items(), key=lambda item: (-item[1], item[0]))
    return [(score, doc_id) for doc_id, score in ordered[:k]]


def weighted_score_fusion(
    lexical: list[tuple[float, int]],
    semantic: list[tuple[float, int]],
    k: int,
    *,
    alpha: float = 0.5,
) -> list[tuple[float, int]]:
    """Fuse scored lists: ``α · norm(lexical) + (1-α) · norm(semantic)``.

    Each list is min-max normalized onto [0, 1] independently (a constant
    list normalizes to all-ones), so the mixing weight ``α`` is
    meaningful across score families.  A document missing from one list
    contributes 0 from that list.  Returns the top-``k`` as
    ``(fused_score, doc_id)``, ties broken by ascending doc id.
    """
    if not 0.0 <= alpha <= 1.0:
        raise ValueError("alpha must be in [0, 1]")
    fused: dict[int, float] = {}
    for weight, scored in ((alpha, lexical), (1.0 - alpha, semantic)):
        if not scored or weight == 0.0:
            continue
        values = np.array([score for score, _ in scored], dtype=np.float64)
        span = float(values.max() - values.min())
        normalized = (values - values.min()) / span if span > 0.0 else np.ones_like(values)
        for (_, doc_id), value in zip(scored, normalized):
            fused[doc_id] = fused.get(doc_id, 0.0) + weight * float(value)
    ordered = sorted(fused.items(), key=lambda item: (-item[1], item[0]))
    return [(score, doc_id) for doc_id, score in ordered[:k]]


@dataclass(frozen=True)
class HybridConfig:
    """Knobs of the hybrid tier (the lexical tier keeps its own
    :class:`~repro.search.engine.SearchConfig`)."""

    #: semantic candidates fetched per request
    semantic_k: int = 100
    #: fusion strategy: "rrf" (scale-free, default) or "weighted"
    fusion: str = "rrf"
    #: RRF smoothing constant (the literature's default is 60)
    rrf_k: int = 60
    #: lexical weight for weighted-score fusion
    alpha: float = 0.5
    #: IVF cells probed per semantic search (None = each index's default)
    nprobe: int | None = None
    #: mode used when a request does not specify one
    default_mode: str = "hybrid"

    def __post_init__(self):
        if self.fusion not in ("rrf", "weighted"):
            raise ValueError(f"unknown fusion {self.fusion!r}")
        if self.default_mode not in RETRIEVAL_MODES:
            raise ValueError(f"unknown mode {self.default_mode!r}")
        if self.semantic_k < 1:
            raise ValueError("semantic_k must be >= 1")
        if self.rrf_k < 1:
            raise ValueError("rrf_k must be >= 1")
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")
        if self.nprobe is not None and self.nprobe < 1:
            raise ValueError("nprobe must be >= 1 (or None for index defaults)")


class HybridSearchEngine:
    """Lexical + semantic retrieval behind one ``search(query, rewrites)``.

    Owns the two tiers as peers over one catalog: a
    :class:`~repro.search.sharded.ShardedSearchEngine` (BM25 over the
    inverted index) and a :class:`~repro.search.vector.ShardedVectorIndex`
    over dual-encoder title embeddings, built here by batch-encoding the
    catalog and fitting per-shard IVF cells.

    Catalog churn goes through :meth:`add_product` / :meth:`remove_product`,
    which update the catalog, the inverted index, and the vector index in
    lockstep — a product is searchable in every mode or in none, which is
    what keeps :class:`~repro.online.TrafficReplay`'s churn accounting and
    the freshness controller's invalidation meaningful over this engine.
    """

    retrieval_modes = RETRIEVAL_MODES

    @property
    def default_mode(self) -> str:
        """Mode used when a request does not specify one (config knob)."""
        return self.config.default_mode

    def __init__(
        self,
        catalog: Catalog,
        encoder,
        search_config: SearchConfig | None = None,
        hybrid_config: HybridConfig | None = None,
        *,
        num_shards: int = 4,
        num_clusters: int = 16,
        parallel: bool = True,
        lexical: ShardedSearchEngine | None = None,
        vector: ShardedVectorIndex | None = None,
        seed: int = 0,
    ):
        """``encoder`` is any object with ``encode_query(text) -> vector``
        and ``encode_titles(texts) -> matrix`` (a trained
        :class:`~repro.embedding.DualEncoder`).  ``lexical``/``vector``
        inject pre-built tiers (tests, shared indexes); by default both
        are built here from the catalog."""
        self.catalog = catalog
        self.encoder = encoder
        self.config = hybrid_config or HybridConfig()
        self.lexical = lexical or ShardedSearchEngine(
            catalog,
            search_config or SearchConfig(ranker="bm25"),
            num_shards=num_shards,
            parallel=parallel,
        )
        if vector is not None:
            self.vector = vector
        else:
            self.vector = ShardedVectorIndex(
                encoder.config.output_dim,
                num_shards=num_shards,
                num_clusters=num_clusters,
                parallel=parallel,
                seed=seed,
            )
            if catalog.products:
                self.vector.fit(
                    [p.product_id for p in catalog.products],
                    encoder.encode_titles([list(p.title_tokens) for p in catalog.products]),
                )

    # -- persistence -----------------------------------------------------------
    def save(self, root) -> None:
        """Persist both tiers under ``root`` (``lexical/`` + ``vector/``).

        Two sibling segment stores, one per tier, each with its own
        versioned manifest — so the tiers can be loaded, diffed and
        compacted independently.  Incremental like the tier saves:
        unchanged shards write nothing.
        """
        from pathlib import Path

        root = Path(root)
        root.mkdir(parents=True, exist_ok=True)
        self.lexical.save(root / "lexical")
        self.vector.save(root / "vector")

    @classmethod
    def load(
        cls,
        root,
        catalog: Catalog,
        encoder,
        search_config: SearchConfig | None = None,
        hybrid_config: HybridConfig | None = None,
        *,
        parallel: bool = True,
        backend: str = "inproc",
        timeout: float | None = None,
    ) -> "HybridSearchEngine":
        """Cold-start a hybrid engine from a :meth:`save` directory.

        Restores the lexical and vector tiers from their segment stores
        (checksum-verified; no catalog scan, no re-encoding, no IVF
        re-fit) and assembles them through the constructor's injection
        parameters.  ``backend`` picks both tiers' deployment —
        ``"inproc"`` threads or ``"process"`` shard workers (see
        :meth:`~repro.search.sharded.ShardedIndex.load`) — with
        identical results either way.  Configs are the caller's, exactly
        as in ``__init__`` — the store persists index *state*, not
        policy.
        """
        from pathlib import Path

        root = Path(root)
        return cls(
            catalog,
            encoder,
            search_config,
            hybrid_config,
            lexical=ShardedSearchEngine.load(
                catalog,
                root / "lexical",
                search_config,
                parallel=parallel,
                backend=backend,
                timeout=timeout,
            ),
            vector=ShardedVectorIndex.load(
                root / "vector", parallel=parallel, backend=backend, timeout=timeout
            ),
        )

    # -- catalog-level churn ---------------------------------------------------
    def add_product(self, product) -> None:
        """List a product in the catalog and BOTH retrieval tiers.

        Failure-ordering keeps the lockstep invariant under the
        single-writer contract: the title is embedded *before* anything
        mutates (an encoder error touches nothing), the lexical engine
        then validates id uniqueness against the catalog, and a
        vector-tier rejection (e.g. an injected index that already holds
        the id) rolls the lexical add back — so a rejected add never
        leaves the product searchable in one mode but not another.
        """
        vector = self.encoder.encode_title(list(product.title_tokens))
        self.lexical.add_product(product)
        try:
            self.vector.add_document(product.product_id, vector)
        except BaseException:
            self.lexical.remove_product(product.product_id)
            raise

    def remove_product(self, product_id: int) -> None:
        """Delist a product from the catalog and BOTH retrieval tiers.

        Both tiers are validated before either mutates (single-writer
        contract), so an unknown id raises with nothing half-removed.
        """
        if product_id not in self.vector:
            raise KeyError(f"product {product_id} not in the vector tier")
        self.lexical.remove_product(product_id)
        self.vector.remove_document(product_id)

    # -- retrieval -------------------------------------------------------------
    def search(
        self, query: str, rewrites: list[str] | None = None, *, mode: str | None = None
    ) -> SearchOutcome:
        """Retrieve top-k for ``query`` (+ rewrites) in the given mode.

        Returns a :class:`~repro.search.engine.SearchOutcome` whose
        ``mode`` records the tier used; ``postings_accessed`` counts only
        lexical work (the semantic tier touches no postings), so the
        paper's Section III-H cost accounting stays comparable across
        modes.
        """
        mode = mode or self.config.default_mode
        if mode not in RETRIEVAL_MODES:
            raise ValueError(
                f"unknown retrieval mode {mode!r}; available: {', '.join(RETRIEVAL_MODES)}"
            )
        if mode == "lexical":
            outcome = self.lexical.search(query, rewrites)
            outcome.mode = mode
            return outcome

        k = self.lexical.config.max_candidates
        semantic = self._semantic_topk(query)
        if mode == "semantic":
            # semantic_k sizes the candidate pool fed into fusion; the
            # returned list honors the engine-wide top-k cap like every
            # other mode.
            top = semantic[:k]
            return SearchOutcome(
                query=query,
                rewrites=list(rewrites or []),
                doc_ids=[doc_id for _, doc_id in top],
                postings_accessed=0,
                tree_nodes=0,
                num_trees=0,
                scores=[score for score, _ in top],
                mode=mode,
            )

        lexical = self.lexical.search(query, rewrites)
        if self.config.fusion == "rrf":
            fused = reciprocal_rank_fusion(
                [lexical.doc_ids, [doc_id for _, doc_id in semantic]],
                k,
                rrf_k=self.config.rrf_k,
            )
        else:
            fused = weighted_score_fusion(
                list(zip(lexical.scores, lexical.doc_ids)),
                semantic,
                k,
                alpha=self.config.alpha,
            )
        return SearchOutcome(
            query=query,
            rewrites=list(rewrites or []),
            doc_ids=[doc_id for _, doc_id in fused],
            postings_accessed=lexical.postings_accessed,
            tree_nodes=lexical.tree_nodes,
            num_trees=lexical.num_trees,
            scores=[score for score, _ in fused],
            mode=mode,
        )

    def _semantic_topk(self, query: str) -> list[tuple[float, int]]:
        """ANN top-k for the original query; empty for untokenizable text."""
        if not tokenize(query):
            return []
        return self.vector.search(
            self.encoder.encode_query(query),
            self.config.semantic_k,
            nprobe=self.config.nprobe,
        )

    def cluster_stats(self) -> dict:
        """Combined backend/failover counters across both tiers.

        The backend label is the lexical tier's when the tiers agree,
        or ``"lexical+vector"`` joined otherwise; numeric counters
        (failovers, rerouted requests, respawns) are summed so the
        serving layer can export one gauge per pipeline.
        """
        lex = self.lexical.cluster_stats()
        vec = self.vector.cluster_stats()
        labels = {lex["backend"], vec["backend"]}
        return {
            "backend": lex["backend"] if len(labels) == 1 else "+".join(sorted(labels)),
            "num_shards": lex["num_shards"],
            "replicas": lex["replicas"],
            "healthy_replicas": min(lex["healthy_replicas"], vec["healthy_replicas"]),
            "failovers": lex["failovers"] + vec["failovers"],
            "rerouted_requests": lex["rerouted_requests"] + vec["rerouted_requests"],
            "respawns": lex["respawns"] + vec["respawns"],
        }

    def close(self) -> None:
        """Shut down both tiers' fan-out pools and workers."""
        self.lexical.close()
        self.vector.close()

    def __enter__(self) -> "HybridSearchEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
