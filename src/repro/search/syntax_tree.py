"""Query syntax trees and the merged-tree optimization (Section III-H).

A single query compiles to an AND over its terms.  Serving N rewritten
queries naively means N separate trees — and N retrievals.  The paper
instead merges all queries into ONE tree:

* tokens common to every query stay as shared AND children;
* each query's residual tokens form an AND group;
* the residual groups are joined under one OR node.

Figure 5's example::

    origin  = red & men & sock
    query 1 = red & men & breathable & low-cut-sock
    query 2 = red & men & anklet

    merged  = red & men & (sock | (breathable & low-cut-sock) | anklet)

The merged tree is only slightly larger than the original query's tree
because rewritten queries share most tokens with the original.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.search.inverted_index import InvertedIndex, RetrievalResult
from repro.search.postings import EMPTY_POSTINGS, intersect_sorted, union_sorted


class SyntaxNode:
    """Base class: a boolean retrieval expression.

    Evaluation runs over **sorted postings vectors** — AND nodes gallop-
    intersect, OR nodes merge-union — so no intermediate hash set is ever
    materialized.  :meth:`evaluate` wraps the final vector in the
    set-based :class:`RetrievalResult` for callers that want membership
    semantics; the engine's ranking path consumes
    :meth:`evaluate_postings` directly.
    """

    def evaluate(self, index: InvertedIndex) -> RetrievalResult:
        """Set-semantics wrapper over :meth:`evaluate_postings`."""
        doc_ids, cost = self.evaluate_postings(index)
        return RetrievalResult(doc_ids=set(doc_ids.tolist()), postings_accessed=cost)

    def evaluate_postings(
        self, index: InvertedIndex
    ) -> tuple[np.ndarray, int]:  # pragma: no cover
        """Sorted doc-id vector plus the postings-access cost to get it."""
        raise NotImplementedError

    def size(self) -> int:  # pragma: no cover
        """Node count of this subtree (the tree-construction cost proxy)."""
        raise NotImplementedError

    def terms(self) -> set[str]:  # pragma: no cover
        """Distinct tokens mentioned anywhere in this subtree."""
        raise NotImplementedError

    def cost_estimate(self, index: InvertedIndex) -> int:  # pragma: no cover
        """Optimistic postings-access estimate, used to order AND children
        so cheap/selective children run first and empty intersections break
        early."""
        raise NotImplementedError


@dataclass(frozen=True)
class TermNode(SyntaxNode):
    """Leaf: one term's postings."""

    token: str

    def evaluate_postings(self, index: InvertedIndex) -> tuple[np.ndarray, int]:
        """Read the term's postings vector; charges its full length."""
        postings = index.postings_array(self.token)
        return postings, postings.size

    def size(self) -> int:
        """A leaf counts as one node."""
        return 1

    def terms(self) -> set[str]:
        """Just this leaf's token."""
        return {self.token}

    def cost_estimate(self, index: InvertedIndex) -> int:
        """Exactly the postings length — a leaf's cost is not an estimate."""
        return index.postings_length(self.token)

    def __repr__(self) -> str:
        return self.token


@dataclass(frozen=True)
class AndNode(SyntaxNode):
    """Conjunction: galloping intersection of its children, cheapest first."""

    children: tuple[SyntaxNode, ...]

    def evaluate_postings(self, index: InvertedIndex) -> tuple[np.ndarray, int]:
        """Intersect children cheapest-first; stops charging when empty."""
        if not self.children:
            return EMPTY_POSTINGS, 0
        docs: np.ndarray | None = None
        cost = 0
        # Evaluate cheap/selective children first, so an empty intersection
        # breaks before touching expensive postings.
        ordered = sorted(self.children, key=lambda c: c.cost_estimate(index))
        for child in ordered:
            child_docs, child_cost = child.evaluate_postings(index)
            cost += child_cost
            docs = child_docs if docs is None else intersect_sorted(docs, child_docs)
            if docs.size == 0:
                break
        return (docs if docs is not None else EMPTY_POSTINGS), cost

    def size(self) -> int:
        """One plus the sizes of all children."""
        return 1 + sum(c.size() for c in self.children)

    def terms(self) -> set[str]:
        """Union of the children's token sets."""
        return set().union(*(c.terms() for c in self.children)) if self.children else set()

    def cost_estimate(self, index: InvertedIndex) -> int:
        """Optimistic: an AND may break after its cheapest child."""
        return min((c.cost_estimate(index) for c in self.children), default=0)

    def __repr__(self) -> str:
        return "(" + " & ".join(repr(c) for c in self.children) + ")"


@dataclass(frozen=True)
class OrNode(SyntaxNode):
    """Disjunction: sorted k-way union of its children."""

    children: tuple[SyntaxNode, ...]

    def evaluate_postings(self, index: InvertedIndex) -> tuple[np.ndarray, int]:
        """Evaluate every branch (an OR cannot early-exit) and union."""
        branches: list[np.ndarray] = []
        cost = 0
        for child in self.children:
            child_docs, child_cost = child.evaluate_postings(index)
            cost += child_cost
            branches.append(child_docs)
        return union_sorted(branches), cost

    def size(self) -> int:
        """One plus the sizes of all children."""
        return 1 + sum(c.size() for c in self.children)

    def terms(self) -> set[str]:
        """Union of the children's token sets."""
        return set().union(*(c.terms() for c in self.children)) if self.children else set()

    def cost_estimate(self, index: InvertedIndex) -> int:
        """Sum over branches: an OR must evaluate every one."""
        return sum(c.cost_estimate(index) for c in self.children)

    def __repr__(self) -> str:
        return "(" + " | ".join(repr(c) for c in self.children) + ")"


def build_tree(tokens: list[str] | tuple[str, ...]) -> SyntaxNode:
    """Compile one query into an AND over its distinct terms."""
    distinct = sorted(set(tokens))
    if not distinct:
        raise ValueError("cannot build a syntax tree for an empty query")
    if len(distinct) == 1:
        return TermNode(distinct[0])
    return AndNode(children=tuple(TermNode(t) for t in distinct))


def merge_queries(queries: list[list[str] | tuple[str, ...]]) -> SyntaxNode:
    """Merge several queries into one tree (Section III-H, Figure 5).

    The first query is conventionally the original; order does not affect
    the result.  Merging greedily factors out the token shared by the most
    queries, recursively::

        origin  = red & men & sock
        query 1 = red & men & breathable & low-cut-sock
        query 2 = red & men & anklet

        merged  = red & men & (sock | (breathable & low-cut-sock) | anklet)

    The merged tree retrieves exactly the union of the per-query
    retrievals while reading each shared token's postings once.  Two
    special cases fall out of the factorization: duplicate queries
    collapse, and a query subsumed by a shared prefix (its tokens are a
    subset of another's) absorbs the more specific one.
    """
    token_sets: list[frozenset[str]] = []
    seen: set[frozenset[str]] = set()
    for query in queries:
        if not query:
            continue
        tokens = frozenset(query)
        if tokens not in seen:
            seen.add(tokens)
            token_sets.append(tokens)
    if not token_sets:
        raise ValueError("merge_queries needs at least one non-empty query")
    return _factor(token_sets)


def _factor(token_sets: list[frozenset[str]]) -> SyntaxNode:
    """Recursive greedy factorization of a union of AND-queries."""
    if len(token_sets) == 1:
        return _and_of(sorted(token_sets[0]))

    counts: dict[str, int] = {}
    for tokens in token_sets:
        for token in tokens:
            counts[token] = counts.get(token, 0) + 1
    best_token = min(counts, key=lambda t: (-counts[t], t))
    if counts[best_token] == 1:
        # No sharing left: plain OR of the individual query trees.
        return _or_of([_and_of(sorted(s)) for s in token_sets])

    with_token = [s - {best_token} for s in token_sets if best_token in s]
    without = [s for s in token_sets if best_token not in s]

    if any(not residual for residual in with_token):
        # One query is exactly {best_token} (plus already-factored tokens):
        # it subsumes every other query sharing that token.
        shared: SyntaxNode = TermNode(best_token)
    else:
        inner = _factor([frozenset(s) for s in with_token])
        shared = _and_flat(TermNode(best_token), inner)
    if not without:
        return shared
    return _or_of([shared, _factor(without)])


def _and_of(tokens: list[str]) -> SyntaxNode:
    if len(tokens) == 1:
        return TermNode(tokens[0])
    return AndNode(children=tuple(TermNode(t) for t in tokens))


def _and_flat(term: TermNode, inner: SyntaxNode) -> SyntaxNode:
    """AND(term, inner), flattening nested ANDs to keep the tree small."""
    if isinstance(inner, AndNode):
        return AndNode(children=(term, *inner.children))
    return AndNode(children=(term, inner))


def _or_of(nodes: list[SyntaxNode]) -> SyntaxNode:
    flattened: list[SyntaxNode] = []
    for node in nodes:
        if isinstance(node, OrNode):
            flattened.extend(node.children)
        else:
            flattened.append(node)
    if len(flattened) == 1:
        return flattened[0]
    return OrNode(children=tuple(flattened))


def tree_size(node: SyntaxNode) -> int:
    """Node count — the paper's system-cost proxy for tree construction."""
    return node.size()
