"""Top-k ranking over retrieved candidates.

The seed engine sorted *every* candidate (O(n log n) per query) with a
hard-wired term-overlap key.  Ranking is now a pluggable :class:`Ranker`
protocol, and selection is a **bounded heap** (``heapq.nsmallest``,
O(n log k)) so a query touching tens of thousands of candidates pays for
its top-k, not for a total order of the candidate set.

Two rankers ship:

* :class:`TermOverlapRanker` — the seed's tf-style overlap baseline,
  bit-for-bit the same ordering as before (scores are integers; ties break
  by doc id).
* :class:`BM25Ranker` — Okapi BM25 with idf and document-length
  normalization.  Scoring is vectorized over the candidate vector (one
  :func:`numpy.searchsorted` gather per query term); ``score_doc`` is the
  scalar reference implementation, kept operation-for-operation identical
  to the vectorized path so both produce the same IEEE doubles.

Both rankers take the corpus statistics from the index by default; a
:class:`~repro.search.inverted_index.IndexStats` override lets a sharded
index rank every shard against *global* statistics, which keeps per-shard
scores comparable during the fan-out merge.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, replace
from typing import Protocol, runtime_checkable

import numpy as np

from repro.search.inverted_index import IndexStats, InvertedIndex


@runtime_checkable
class Ranker(Protocol):
    """Orders candidate doc ids for a query; higher score = better."""

    def rank(
        self,
        index: InvertedIndex,
        query_tokens: list[str],
        candidates: np.ndarray,
        k: int,
    ) -> list[int]:
        """Top-``k`` doc ids, best first; ties break by ascending doc id."""
        ...

    def rank_scored(
        self,
        index: InvertedIndex,
        query_tokens: list[str],
        candidates: np.ndarray,
        k: int,
    ) -> list[tuple[float, int]]:
        """Top-``k`` as ``(score, doc_id)`` pairs — what a shard fan-out
        merges, without re-scoring the ranked docs."""
        ...

    def score_doc(
        self, index: InvertedIndex, query_tokens: list[str], doc_id: int
    ) -> float:
        """Scalar reference score for one document."""
        ...

    def with_stats(self, stats: IndexStats) -> "Ranker":
        """A copy of this ranker pinned to explicit corpus statistics."""
        ...


def top_k_by_score(
    doc_ids: np.ndarray, scores: np.ndarray, k: int
) -> list[tuple[float, int]]:
    """Bounded-heap top-k of ``(score, doc_id)``, best score first.

    ``heapq.nsmallest`` over ``(-score, doc_id)`` keeps a k-sized heap —
    O(n log k) — and reproduces exactly what a full descending sort with
    doc-id tie-break would select.
    """
    pairs = zip((-scores).tolist(), doc_ids.tolist())
    return [(-neg, doc_id) for neg, doc_id in heapq.nsmallest(k, pairs)]


@dataclass(frozen=True)
class TermOverlapRanker:
    """The seed baseline: sum of query-term frequencies in the title.

    ``score = Σ_{t ∈ distinct(query)} tf(doc, t)`` — identical to counting
    title tokens that appear in the query set, the seed's ordering.
    """

    def rank(self, index, query_tokens, candidates, k) -> list[int]:
        return [doc_id for _, doc_id in self.rank_scored(index, query_tokens, candidates, k)]

    def rank_scored(self, index, query_tokens, candidates, k) -> list[tuple[float, int]]:
        if candidates.size == 0 or k <= 0:
            return []
        scores = np.zeros(candidates.size, dtype=np.int64)
        for token in sorted(set(query_tokens)):
            postings = index.postings_array(token)
            if postings.size == 0:
                continue
            positions = np.minimum(
                np.searchsorted(postings, candidates), postings.size - 1
            )
            hit = postings[positions] == candidates
            scores[hit] += index.tf_array(token)[positions[hit]]
        return top_k_by_score(candidates, scores, k)

    def score_doc(self, index, query_tokens, doc_id) -> float:
        return float(
            sum(index.term_frequency(doc_id, t) for t in sorted(set(query_tokens)))
        )

    def with_stats(self, stats: IndexStats) -> "TermOverlapRanker":
        return self  # overlap is corpus-statistics-free


@dataclass(frozen=True)
class BM25Ranker:
    """Okapi BM25 with a bounded-heap top-k selection."""

    k1: float = 1.5
    b: float = 0.75
    stats: IndexStats | None = None

    def with_stats(self, stats: IndexStats) -> "BM25Ranker":
        return replace(self, stats=stats)

    def _corpus(self, index) -> tuple[int, float]:
        if self.stats is not None:
            return self.stats.num_docs, self.stats.avg_doc_length
        return len(index), index.avg_doc_length

    def _idf(self, index, token: str) -> float:
        num_docs, _ = self._corpus(index)
        if self.stats is not None:
            df = self.stats.document_frequency(token)
        else:
            df = index.document_frequency(token)
        return math.log(1.0 + (num_docs - df + 0.5) / (df + 0.5))

    def rank(self, index, query_tokens, candidates, k) -> list[int]:
        return [doc_id for _, doc_id in self.rank_scored(index, query_tokens, candidates, k)]

    def rank_scored(self, index, query_tokens, candidates, k) -> list[tuple[float, int]]:
        if candidates.size == 0 or k <= 0:
            return []
        num_docs, avgdl = self._corpus(index)
        if num_docs == 0 or avgdl == 0.0:
            return []
        lengths = index.doc_length_array(candidates)
        scores = np.zeros(candidates.size, dtype=np.float64)
        for token in sorted(set(query_tokens)):
            postings = index.postings_array(token)
            if postings.size == 0:
                continue
            positions = np.minimum(
                np.searchsorted(postings, candidates), postings.size - 1
            )
            hit = postings[positions] == candidates
            if not hit.any():
                continue
            tf = index.tf_array(token)[positions[hit]].astype(np.float64)
            idf = self._idf(index, token)
            denom = tf + self.k1 * (1.0 - self.b + self.b * lengths[hit] / avgdl)
            scores[hit] += idf * (tf * (self.k1 + 1.0)) / denom
        return top_k_by_score(candidates, scores, k)

    def score_doc(self, index, query_tokens, doc_id) -> float:
        """Scalar mirror of :meth:`rank`'s vectorized scoring.

        Same term order, same operation order, same float64 arithmetic —
        so the score of a doc here equals its vectorized score bit for bit.
        """
        num_docs, avgdl = self._corpus(index)
        if num_docs == 0 or avgdl == 0.0:
            return 0.0
        length = float(index.doc_length(doc_id))
        score = 0.0
        for token in sorted(set(query_tokens)):
            tf = float(index.term_frequency(doc_id, token))
            if tf == 0.0:
                continue
            idf = self._idf(index, token)
            denom = tf + self.k1 * (1.0 - self.b + self.b * length / avgdl)
            score += idf * (tf * (self.k1 + 1.0)) / denom
        return score


#: registry used by ``SearchConfig.ranker`` string knob
RANKERS = {
    "overlap": TermOverlapRanker,
    "bm25": BM25Ranker,
}


def make_ranker(name: str) -> Ranker:
    try:
        return RANKERS[name]()
    except KeyError:
        raise ValueError(
            f"unknown ranker {name!r}; available: {', '.join(sorted(RANKERS))}"
        ) from None
