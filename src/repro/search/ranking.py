"""Top-k ranking over retrieved candidates.

The seed engine sorted *every* candidate (O(n log n) per query) with a
hard-wired term-overlap key.  Ranking is now a pluggable :class:`Ranker`
protocol, and selection is a **vectorized bounded top-k**
(:func:`top_k_by_score`: ``numpy.partition`` threshold + a lexsort of
the survivors, O(n + k log k)) so a query touching tens of thousands of
candidates pays for its top-k, not for a total order of the candidate
set.

Two rankers ship:

* :class:`TermOverlapRanker` — the seed's tf-style overlap baseline,
  bit-for-bit the same ordering as before (scores are integers; ties break
  by doc id).
* :class:`BM25Ranker` — Okapi BM25 with idf and document-length
  normalization.  Scoring is vectorized over the candidate vector (one
  :func:`numpy.searchsorted` gather per query term); ``score_doc`` is the
  scalar reference implementation, kept operation-for-operation identical
  to the vectorized path so both produce the same IEEE doubles.

Both rankers take the corpus statistics from the index by default; a
:class:`~repro.search.inverted_index.IndexStats` override lets a sharded
index rank every shard against *global* statistics, which keeps per-shard
scores comparable during the fan-out merge.

Thread safety: rankers are frozen dataclasses with no mutable state —
one instance can rank on any number of threads concurrently, and
``with_stats`` returns a new pinned copy rather than mutating.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Protocol, runtime_checkable

import numpy as np

from repro.search.inverted_index import IndexStats, InvertedIndex


@runtime_checkable
class Ranker(Protocol):
    """Orders candidate doc ids for a query; higher score = better.

    Invariants every implementation must hold (the engines, the shard
    fan-out merge, and the hybrid fusion all lean on them):

    1. **Determinism** — ``rank`` equals a full sort of the candidates by
       ``(-score, doc_id)`` truncated to ``k``; ties always break by
       ascending doc id (use :func:`top_k_by_score` to get this for
       free).
    2. **Agreement** — ``rank(...) == [d for _, d in rank_scored(...)]``,
       and ``score_doc`` reproduces the vectorized score of the same
       document bit for bit (IEEE-identical operation order).
    3. **Candidate-bounded** — only doc ids from ``candidates`` may
       appear in the result; the ranker retrieves nothing on its own.
    4. **Statistics pinning** — ``with_stats`` returns a copy scoring
       against the given corpus statistics and leaves ``self``
       untouched; a statistics-free ranker may return itself.
    5. **No mutation** — ranking reads the index but never writes it, so
       rankers are safe to share across threads and engines.
    """

    def rank(
        self,
        index: InvertedIndex,
        query_tokens: list[str],
        candidates: np.ndarray,
        k: int,
    ) -> list[int]:
        """Top-``k`` doc ids, best first; ties break by ascending doc id."""
        ...

    def rank_scored(
        self,
        index: InvertedIndex,
        query_tokens: list[str],
        candidates: np.ndarray,
        k: int,
    ) -> list[tuple[float, int]]:
        """Top-``k`` as ``(score, doc_id)`` pairs — what a shard fan-out
        merges, without re-scoring the ranked docs."""
        ...

    def score_doc(
        self, index: InvertedIndex, query_tokens: list[str], doc_id: int
    ) -> float:
        """Scalar reference score for one document."""
        ...

    def with_stats(self, stats: IndexStats) -> "Ranker":
        """A copy of this ranker pinned to explicit corpus statistics."""
        ...


def top_k_by_score(
    doc_ids: np.ndarray, scores: np.ndarray, k: int
) -> list[tuple[float, int]]:
    """Bounded top-k of ``(score, doc_id)``, best score first.

    Selection semantics are exactly a full descending sort with doc-id
    tie-break, truncated to ``k`` — but computed without ordering all n
    candidates: ``numpy.partition`` finds the k-th score threshold in
    O(n), only the ≥-threshold survivors (k plus score ties) are
    lexsorted by ``(-score, doc_id)``.  O(n + m log m) for m survivors,
    fully vectorized; every ranker and the vector tier select through
    this one function, so ordering is deterministic everywhere.
    """
    n = int(doc_ids.size)
    if n == 0 or k <= 0:
        return []
    if k < n:
        # k-th largest score; ties at the threshold survive to the sort
        # below, where doc-id order decides which of them make the cut.
        threshold = np.partition(scores, n - k)[n - k]
        keep = scores >= threshold
        doc_ids = doc_ids[keep]
        scores = scores[keep]
    order = np.lexsort((doc_ids, -scores))[:k]
    return list(zip(scores[order].tolist(), doc_ids[order].tolist()))


@dataclass(frozen=True)
class TermOverlapRanker:
    """The seed baseline: sum of query-term frequencies in the title.

    ``score = Σ_{t ∈ distinct(query)} tf(doc, t)`` — identical to counting
    title tokens that appear in the query set, the seed's ordering.
    """

    def rank(self, index, query_tokens, candidates, k) -> list[int]:
        """Top-``k`` doc ids by overlap score (see :class:`Ranker` #1/#2)."""
        return [doc_id for _, doc_id in self.rank_scored(index, query_tokens, candidates, k)]

    def rank_scored(self, index, query_tokens, candidates, k) -> list[tuple[float, int]]:
        """Vectorized overlap scoring: one searchsorted gather per term."""
        if candidates.size == 0 or k <= 0:
            return []
        scores = np.zeros(candidates.size, dtype=np.int64)
        for token in sorted(set(query_tokens)):
            postings = index.postings_array(token)
            if postings.size == 0:
                continue
            positions = np.minimum(
                np.searchsorted(postings, candidates), postings.size - 1
            )
            hit = postings[positions] == candidates
            scores[hit] += index.tf_array(token)[positions[hit]]
        return top_k_by_score(candidates, scores, k)

    def score_doc(self, index, query_tokens, doc_id) -> float:
        """Scalar mirror of :meth:`rank_scored` for one document."""
        return float(
            sum(index.term_frequency(doc_id, t) for t in sorted(set(query_tokens)))
        )

    def with_stats(self, stats: IndexStats) -> "TermOverlapRanker":
        """Overlap is corpus-statistics-free, so the same instance works."""
        return self


@dataclass(frozen=True)
class BM25Ranker:
    """Okapi BM25 (idf + length normalization) with bounded top-k selection."""

    k1: float = 1.5
    b: float = 0.75
    stats: IndexStats | None = None

    def with_stats(self, stats: IndexStats) -> "BM25Ranker":
        """A copy pinned to explicit (e.g. global sharded) statistics."""
        return replace(self, stats=stats)

    def _corpus(self, index) -> tuple[int, float]:
        if self.stats is not None:
            return self.stats.num_docs, self.stats.avg_doc_length
        return len(index), index.avg_doc_length

    def _idf(self, index, token: str) -> float:
        num_docs, _ = self._corpus(index)
        if self.stats is not None:
            df = self.stats.document_frequency(token)
        else:
            df = index.document_frequency(token)
        return math.log(1.0 + (num_docs - df + 0.5) / (df + 0.5))

    def rank(self, index, query_tokens, candidates, k) -> list[int]:
        """Top-``k`` doc ids by BM25 score (see :class:`Ranker` #1/#2)."""
        return [doc_id for _, doc_id in self.rank_scored(index, query_tokens, candidates, k)]

    def rank_scored(self, index, query_tokens, candidates, k) -> list[tuple[float, int]]:
        """Vectorized BM25 over the candidate vector.

        One searchsorted gather per distinct query term, O(candidates)
        arithmetic per term, then the shared bounded top-k selection.
        """
        if candidates.size == 0 or k <= 0:
            return []
        num_docs, avgdl = self._corpus(index)
        if num_docs == 0 or avgdl == 0.0:
            return []
        lengths = index.doc_length_array(candidates)
        scores = np.zeros(candidates.size, dtype=np.float64)
        for token in sorted(set(query_tokens)):
            postings = index.postings_array(token)
            if postings.size == 0:
                continue
            positions = np.minimum(
                np.searchsorted(postings, candidates), postings.size - 1
            )
            hit = postings[positions] == candidates
            if not hit.any():
                continue
            tf = index.tf_array(token)[positions[hit]].astype(np.float64)
            idf = self._idf(index, token)
            denom = tf + self.k1 * (1.0 - self.b + self.b * lengths[hit] / avgdl)
            scores[hit] += idf * (tf * (self.k1 + 1.0)) / denom
        return top_k_by_score(candidates, scores, k)

    def score_doc(self, index, query_tokens, doc_id) -> float:
        """Scalar mirror of :meth:`rank`'s vectorized scoring.

        Same term order, same operation order, same float64 arithmetic —
        so the score of a doc here equals its vectorized score bit for bit.
        """
        num_docs, avgdl = self._corpus(index)
        if num_docs == 0 or avgdl == 0.0:
            return 0.0
        length = float(index.doc_length(doc_id))
        score = 0.0
        for token in sorted(set(query_tokens)):
            tf = float(index.term_frequency(doc_id, token))
            if tf == 0.0:
                continue
            idf = self._idf(index, token)
            denom = tf + self.k1 * (1.0 - self.b + self.b * length / avgdl)
            score += idf * (tf * (self.k1 + 1.0)) / denom
        return score


#: registry used by ``SearchConfig.ranker`` string knob
RANKERS = {
    "overlap": TermOverlapRanker,
    "bm25": BM25Ranker,
}


def make_ranker(name: str) -> Ranker:
    """Instantiate a registered ranker by its config-string name."""
    try:
        return RANKERS[name]()
    except KeyError:
        raise ValueError(
            f"unknown ranker {name!r}; available: {', '.join(sorted(RANKERS))}"
        ) from None
