"""Sorted-postings primitives: galloping intersection and k-way union.

Postings lists are kept sorted by doc id, so boolean retrieval reduces to
ordered-sequence algebra.  Intersection drives from the *smallest* list
and skip-searches each candidate into the larger list — the galloping
strategy of production inverted indexes — instead of materializing a hash
set per term the way the seed implementation did.  Here the skip search
is batched through :func:`numpy.searchsorted`, which binary-searches the
whole candidate vector at C speed: the classical gallop's
``O(|small| · log |large|)`` bound with vectorized constants.

Cost accounting stays a separate concern: these helpers touch only the
doc ids they are given; callers (``InvertedIndex``, the syntax-tree
evaluator) charge ``postings_accessed`` per postings list *read*, the
paper's Section III-H cost model, so the Figure 5 merged-vs-separate
claims are unaffected by how fast the intersection itself runs.
"""

from __future__ import annotations

import numpy as np

#: canonical empty postings vector (doc ids are int64 everywhere)
EMPTY_POSTINGS: np.ndarray = np.empty(0, dtype=np.int64)


def as_postings_array(doc_ids) -> np.ndarray:
    """An int64 doc-id vector from an already-sorted iterable of doc ids."""
    array = np.asarray(doc_ids, dtype=np.int64)
    if array.size == 0:
        return EMPTY_POSTINGS
    return array


def intersect_sorted(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Galloping AND of two sorted doc-id vectors.

    Drives from the smaller vector and skip-searches it into the larger
    one; never builds an intermediate set.  Returns a sorted vector.
    """
    if a.size == 0 or b.size == 0:
        return EMPTY_POSTINGS
    small, large = (a, b) if a.size <= b.size else (b, a)
    positions = np.searchsorted(large, small)
    in_range = positions < large.size
    candidates = small[in_range]
    return candidates[large[positions[in_range]] == candidates]


def union_sorted(lists: list[np.ndarray]) -> np.ndarray:
    """Deduplicated OR of sorted doc-id vectors, returned sorted."""
    non_empty = [arr for arr in lists if arr.size]
    if not non_empty:
        return EMPTY_POSTINGS
    if len(non_empty) == 1:
        return non_empty[0]
    return np.unique(np.concatenate(non_empty))
