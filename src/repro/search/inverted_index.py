"""In-memory inverted index with access-cost accounting.

The cost model counts postings touched per retrieval, which is the quantity
the paper's Section III-H optimization reduces: evaluating N separate
syntax trees re-reads shared terms' postings N times, while the merged tree
reads each term's postings once.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class RetrievalResult:
    """Doc ids plus the postings-access cost incurred to produce them."""

    doc_ids: set[int]
    postings_accessed: int


class InvertedIndex:
    """token -> sorted doc-id postings."""

    def __init__(self):
        self._postings: dict[str, list[int]] = {}
        self._docs: dict[int, tuple[str, ...]] = {}

    def __len__(self) -> int:
        return len(self._docs)

    @property
    def num_terms(self) -> int:
        return len(self._postings)

    def add_document(self, doc_id: int, tokens: list[str] | tuple[str, ...]) -> None:
        if doc_id in self._docs:
            raise ValueError(f"document {doc_id} already indexed")
        self._docs[doc_id] = tuple(tokens)
        for token in sorted(set(tokens)):
            self._postings.setdefault(token, []).append(doc_id)

    def document(self, doc_id: int) -> tuple[str, ...]:
        return self._docs[doc_id]

    def postings(self, token: str) -> list[int]:
        """The postings list for ``token`` (empty if unseen)."""
        return self._postings.get(token, [])

    def postings_length(self, token: str) -> int:
        return len(self._postings.get(token, ()))

    # -- primitive retrievals (each reports its own cost) ----------------------
    def lookup(self, token: str) -> RetrievalResult:
        postings = self.postings(token)
        return RetrievalResult(doc_ids=set(postings), postings_accessed=len(postings))

    def intersect(self, tokens: list[str]) -> RetrievalResult:
        """AND of term postings, cheapest-first to keep cost low."""
        if not tokens:
            return RetrievalResult(doc_ids=set(self._docs), postings_accessed=0)
        ordered = sorted(set(tokens), key=self.postings_length)
        cost = 0
        result: set[int] | None = None
        for token in ordered:
            postings = self.postings(token)
            cost += len(postings)
            if result is None:
                result = set(postings)
            else:
                result &= set(postings)
            if not result:
                break
        return RetrievalResult(doc_ids=result or set(), postings_accessed=cost)
