"""In-memory inverted index with access-cost accounting.

The cost model counts postings touched per retrieval, which is the quantity
the paper's Section III-H optimization reduces: evaluating N separate
syntax trees re-reads shared terms' postings N times, while the merged tree
reads each term's postings once.

Beyond the seed's build-once dict-of-lists, the index is now a mutable
retrieval structure sized for the serving tier:

* postings are **sorted doc-id vectors** (with parallel term-frequency
  vectors), so AND queries run as galloping intersections
  (:mod:`repro.search.postings`) that never materialize intermediate sets;
* documents can be **added and removed incrementally** — postings stay
  sorted under out-of-order doc ids via bisection — which is what the
  sharded index builds on;
* corpus statistics (document frequency, document length, average length)
  are maintained online for BM25-style ranking
  (:mod:`repro.search.ranking`).
"""

from __future__ import annotations

import bisect
from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.search.postings import (
    EMPTY_POSTINGS,
    as_postings_array,
    intersect_sorted,
)


@dataclass
class RetrievalResult:
    """Doc ids plus the postings-access cost incurred to produce them."""

    doc_ids: set[int]
    postings_accessed: int


@dataclass(frozen=True)
class IndexStats:
    """Corpus-level statistics a ranker needs (BM25's idf and length norm).

    For a :class:`~repro.search.sharded.ShardedIndex` these are the
    *global* statistics, aggregated over all shards, so per-shard scores
    stay comparable when shard top-k results are merged.
    """

    num_docs: int
    avg_doc_length: float
    document_frequencies: dict[str, int]

    def document_frequency(self, token: str) -> int:
        """Documents containing ``token`` under these statistics (0 if unseen)."""
        return self.document_frequencies.get(token, 0)


class InvertedIndex:
    """token -> sorted doc-id postings (plus parallel term frequencies)."""

    def __init__(self):
        self._postings: dict[str, list[int]] = {}
        self._tfs: dict[str, list[int]] = {}
        self._docs: dict[int, tuple[str, ...]] = {}
        self._doc_lengths: dict[int, int] = {}
        self._total_length = 0
        # searchsorted wants ndarrays; converting a postings list per query
        # would dominate, so arrays are cached per token and invalidated on
        # writes that touch the token.
        self._array_cache: dict[str, tuple[np.ndarray, np.ndarray]] = {}

    def __len__(self) -> int:
        return len(self._docs)

    def __contains__(self, doc_id: int) -> bool:
        return doc_id in self._docs

    @property
    def num_terms(self) -> int:
        """Distinct tokens with at least one live posting."""
        return len(self._postings)

    @property
    def total_doc_length(self) -> int:
        """Sum of all live document lengths (kept as an exact integer)."""
        return self._total_length

    @property
    def avg_doc_length(self) -> float:
        """Mean document length — BM25's length-normalization pivot."""
        return self._total_length / len(self._docs) if self._docs else 0.0

    # -- incremental maintenance ----------------------------------------------
    def add_document(self, doc_id: int, tokens: list[str] | tuple[str, ...]) -> None:
        """Index one document: O(distinct tokens · log postings) bisection.

        Postings stay sorted under out-of-order doc ids; corpus
        statistics update online; cached numpy views of touched tokens
        are invalidated.  Raises on duplicate ids.
        """
        if doc_id in self._docs:
            raise ValueError(f"document {doc_id} already indexed")
        tokens = tuple(tokens)
        self._docs[doc_id] = tokens
        self._doc_lengths[doc_id] = len(tokens)
        self._total_length += len(tokens)
        for token, tf in sorted(Counter(tokens).items()):
            postings = self._postings.setdefault(token, [])
            tfs = self._tfs.setdefault(token, [])
            if not postings or doc_id > postings[-1]:
                postings.append(doc_id)
                tfs.append(tf)
            else:
                at = bisect.bisect_left(postings, doc_id)
                postings.insert(at, doc_id)
                tfs.insert(at, tf)
            self._array_cache.pop(token, None)

    def remove_document(self, doc_id: int) -> None:
        """Unindex one document, the exact inverse of :meth:`add_document`."""
        if doc_id not in self._docs:
            raise KeyError(f"document {doc_id} not indexed")
        tokens = self._docs.pop(doc_id)
        self._total_length -= self._doc_lengths.pop(doc_id)
        for token in set(tokens):
            postings = self._postings[token]
            at = bisect.bisect_left(postings, doc_id)
            del postings[at]
            del self._tfs[token][at]
            if not postings:
                del self._postings[token]
                del self._tfs[token]
            self._array_cache.pop(token, None)

    # -- lookups ---------------------------------------------------------------
    def document_ids(self) -> list[int]:
        """Sorted ids of every indexed document (isolation audits walk
        this to prove an index holds only its own tenant's documents)."""
        return sorted(self._docs)

    def document(self, doc_id: int) -> tuple[str, ...]:
        """The indexed token tuple of ``doc_id`` (KeyError if absent)."""
        return self._docs[doc_id]

    def doc_length(self, doc_id: int) -> int:
        """Token count of ``doc_id`` (KeyError if absent)."""
        return self._doc_lengths[doc_id]

    def doc_length_array(self, doc_ids: np.ndarray) -> np.ndarray:
        """Float64 length vector parallel to ``doc_ids`` (ranker gather)."""
        lengths = self._doc_lengths
        return np.fromiter(
            (lengths[d] for d in doc_ids.tolist()), dtype=np.float64, count=doc_ids.size
        )

    def postings(self, token: str) -> list[int]:
        """The postings list for ``token`` (empty if unseen)."""
        return self._postings.get(token, [])

    def postings_length(self, token: str) -> int:
        """Length of ``token``'s postings list — its retrieval cost."""
        return len(self._postings.get(token, ()))

    def document_frequency(self, token: str) -> int:
        """Documents containing ``token`` (= postings length, by construction)."""
        return self.postings_length(token)

    def term_frequency(self, doc_id: int, token: str) -> int:
        """Occurrences of ``token`` in ``doc_id`` (0 if absent): one bisection."""
        postings = self._postings.get(token)
        if not postings:
            return 0
        at = bisect.bisect_left(postings, doc_id)
        if at < len(postings) and postings[at] == doc_id:
            return self._tfs[token][at]
        return 0

    def postings_array(self, token: str) -> np.ndarray:
        """Sorted doc-id vector for ``token`` (cached, read-only)."""
        return self._arrays(token)[0]

    def tf_array(self, token: str) -> np.ndarray:
        """Term-frequency vector parallel to :meth:`postings_array`."""
        return self._arrays(token)[1]

    def _arrays(self, token: str) -> tuple[np.ndarray, np.ndarray]:
        cached = self._array_cache.get(token)
        if cached is None:
            postings = self._postings.get(token)
            if not postings:
                return EMPTY_POSTINGS, EMPTY_POSTINGS
            cached = (
                as_postings_array(postings),
                np.asarray(self._tfs[token], dtype=np.int64),
            )
            self._array_cache[token] = cached
        return cached

    def all_doc_ids(self) -> np.ndarray:
        """Every live doc id, ascending (the empty-query candidate set)."""
        return as_postings_array(sorted(self._docs))

    # -- persistence -----------------------------------------------------------
    def save(self, path) -> None:
        """Write this index as one full postings segment file.

        The single-file form of :mod:`repro.store` (no manifest): a
        checksummed, zlib-compressed segment that :meth:`load` restores
        byte-identically — postings, term frequencies, the ordered token
        tuples behind :meth:`document`, and the corpus statistics.
        Sharded stores go through :meth:`ShardedIndex.save` instead.
        """
        from pathlib import Path

        from repro.store import segments as _segments

        Path(path).write_bytes(_segments.encode_postings_segment(self))

    @classmethod
    def load(cls, path) -> "InvertedIndex":
        """Restore an index saved by :meth:`save`, fully verified.

        Raises a typed :class:`~repro.store.StoreError` subclass on any
        corruption (bad magic, checksum mismatch, truncation, internal
        inconsistency) — never returns a half-built index.
        """
        from repro.store import read_segment_file
        from repro.store import segments as _segments

        return _segments.decode_postings_segment(read_segment_file(path))

    def stats(self) -> IndexStats:
        """Point-in-time corpus statistics snapshot (copies the df table)."""
        return IndexStats(
            num_docs=len(self._docs),
            avg_doc_length=self.avg_doc_length,
            document_frequencies={t: len(p) for t, p in self._postings.items()},
        )

    # -- primitive retrievals (each reports its own cost) ----------------------
    def lookup(self, token: str) -> RetrievalResult:
        """Single-term retrieval; charges the postings list it reads."""
        postings = self.postings(token)
        return RetrievalResult(doc_ids=set(postings), postings_accessed=len(postings))

    def intersect(self, tokens: list[str]) -> RetrievalResult:
        """AND of term postings, cheapest-first to keep cost low."""
        doc_ids, cost = self.intersect_postings(tokens)
        return RetrievalResult(doc_ids=set(doc_ids.tolist()), postings_accessed=cost)

    def intersect_postings(self, tokens: list[str]) -> tuple[np.ndarray, int]:
        """Galloping AND over sorted postings; never builds a per-term set.

        Terms run cheapest-first, and the loop exits as soon as the running
        candidate vector is empty — before touching the remaining (larger)
        postings lists.  The cost charged is the length of every postings
        list actually read, the same accounting as the seed's set-based
        intersection.
        """
        if not tokens:
            return self.all_doc_ids(), 0
        ordered = sorted(set(tokens), key=lambda t: (self.postings_length(t), t))
        cost = 0
        result: np.ndarray | None = None
        for token in ordered:
            postings = self.postings_array(token)
            cost += postings.size
            result = postings if result is None else intersect_sorted(result, postings)
            if result.size == 0:
                break
        return (result if result is not None else EMPTY_POSTINGS), cost
