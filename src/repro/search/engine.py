"""Rewrite-aware search engine over the synthetic catalog.

Wires together tokenization, syntax-tree construction (optionally merged
per Section III-H), galloping inverted-index retrieval, and pluggable
top-k ranking (term-overlap baseline or BM25, both heap-bounded) — enough
substrate to measure both the retrieval-cost claims (Figure 5 /
Table-level CPU cost) and the recall gains that drive the paper's online
metrics (Table VIII).

See ``docs/RETRIEVAL.md`` for the full retrieval-layer story (index
layout, cost model, sharding).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.data.catalog import Catalog
from repro.search.inverted_index import InvertedIndex
from repro.search.postings import union_sorted
from repro.search.ranking import Ranker, make_ranker
from repro.search.syntax_tree import build_tree, merge_queries, tree_size
from repro.text import tokenize


@dataclass(frozen=True)
class SearchConfig:
    #: candidate cap per retrieval (paper: each rewrite adds at most 1,000)
    max_candidates: int = 1000
    #: merge rewrites into one syntax tree (Section III-H) or run one tree
    #: per query (the naive approach the paper rejects)
    merge_trees: bool = True
    #: ranking strategy: "overlap" (seed baseline) or "bm25"
    ranker: str = "overlap"


@dataclass
class SearchOutcome:
    """Everything one retrieval produced, including system-cost accounting.

    ``scores`` is parallel to ``doc_ids`` (ranker scores for lexical and
    hybrid-fused retrievals, exact dot products for semantic ones);
    ``mode`` records which retrieval tier produced the result —
    ``"lexical"`` unless a :class:`~repro.search.hybrid.HybridSearchEngine`
    served the request in another mode.
    """

    query: str
    rewrites: list[str]
    doc_ids: list[int]
    postings_accessed: int
    tree_nodes: int
    num_trees: int
    scores: list[float] = field(default_factory=list)
    mode: str = "lexical"

    def __len__(self) -> int:
        return len(self.doc_ids)


class SearchEngine:
    """Inverted-index retrieval over a product catalog.

    ``index`` lets several engines share one built index (used by
    :meth:`compare_costs` to spin up throwaway per-config engines without
    re-indexing the catalog); ``ranker`` overrides the config's ranker
    string with a concrete :class:`~repro.search.ranking.Ranker` instance.
    """

    def __init__(
        self,
        catalog: Catalog,
        config: SearchConfig | None = None,
        *,
        index: InvertedIndex | None = None,
        ranker: Ranker | None = None,
    ):
        self.catalog = catalog
        self.config = config or SearchConfig()
        self.ranker = ranker or make_ranker(self.config.ranker)
        if index is not None:
            self.index = index
        else:
            self.index = InvertedIndex()
            for product in catalog.products:
                self.index.add_document(product.product_id, product.title_tokens)

    # -- retrieval -------------------------------------------------------------
    def search(self, query: str, rewrites: list[str] | None = None) -> SearchOutcome:
        """Retrieve candidates for ``query`` plus optional rewrites."""
        rewrites = rewrites or []
        queries = [tokenize(query)] + [tokenize(r) for r in rewrites]
        queries = [q for q in queries if q]
        if not queries:
            raise ValueError("search received an empty query")

        if self.config.merge_trees:
            tree = merge_queries(queries)
            docs, cost = tree.evaluate_postings(self.index)
            nodes = tree_size(tree)
            num_trees = 1
        else:
            branches = []
            cost = 0
            nodes = 0
            for q in queries:
                tree = build_tree(q)
                branch, branch_cost = tree.evaluate_postings(self.index)
                branches.append(branch)
                cost += branch_cost
                nodes += tree_size(tree)
            docs = union_sorted(branches)
            num_trees = len(queries)

        ranked = self.ranker.rank_scored(
            self.index, queries[0], docs, self.config.max_candidates
        )
        return SearchOutcome(
            query=query,
            rewrites=list(rewrites),
            doc_ids=[doc_id for _, doc_id in ranked],
            postings_accessed=cost,
            tree_nodes=nodes,
            num_trees=num_trees,
            scores=[score for score, _ in ranked],
        )

    # -- cost comparison (Section III-H experiment) ---------------------------------
    def compare_costs(self, query: str, rewrites: list[str]) -> dict[str, float]:
        """Merged-tree vs per-query-trees costs for the same request.

        Two throwaway engines share this engine's index and ranker but
        carry their own configs, so a concurrent :meth:`search` on *this*
        engine can never observe a temporarily swapped config (the seed
        mutated ``self.config`` in place here).
        """
        merged_engine = SearchEngine(
            self.catalog,
            replace(self.config, merge_trees=True),
            index=self.index,
            ranker=self.ranker,
        )
        separate_engine = SearchEngine(
            self.catalog,
            replace(self.config, merge_trees=False),
            index=self.index,
            ranker=self.ranker,
        )
        merged = merged_engine.search(query, rewrites)
        separate = separate_engine.search(query, rewrites)
        if set(merged.doc_ids) != set(separate.doc_ids):
            raise AssertionError(
                "merged and separate retrieval disagree — tree merge is unsound"
            )
        return {
            "merged_postings": merged.postings_accessed,
            "separate_postings": separate.postings_accessed,
            "merged_nodes": merged.tree_nodes,
            "separate_nodes": separate.tree_nodes,
            "postings_ratio": merged.postings_accessed / max(1, separate.postings_accessed),
            "nodes_ratio": merged.tree_nodes / max(1, separate.tree_nodes),
        }
