"""Rewrite-aware search engine over the synthetic catalog.

Wires together tokenization, syntax-tree construction (optionally merged
per Section III-H), inverted-index retrieval, and a simple term-overlap
ranker — enough substrate to measure both the retrieval-cost claims
(Figure 5 / Table-level CPU cost) and the recall gains that drive the
paper's online metrics (Table VIII).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.catalog import Catalog
from repro.search.inverted_index import InvertedIndex
from repro.search.syntax_tree import build_tree, merge_queries, tree_size
from repro.text import tokenize


@dataclass
class SearchConfig:
    #: candidate cap per retrieval (paper: each rewrite adds at most 1,000)
    max_candidates: int = 1000
    #: merge rewrites into one syntax tree (Section III-H) or run one tree
    #: per query (the naive approach the paper rejects)
    merge_trees: bool = True


@dataclass
class SearchOutcome:
    """Everything one retrieval produced, including system-cost accounting."""

    query: str
    rewrites: list[str]
    doc_ids: list[int]
    postings_accessed: int
    tree_nodes: int
    num_trees: int

    def __len__(self) -> int:
        return len(self.doc_ids)


class SearchEngine:
    """Inverted-index retrieval over a product catalog."""

    def __init__(self, catalog: Catalog, config: SearchConfig | None = None):
        self.catalog = catalog
        self.config = config or SearchConfig()
        self.index = InvertedIndex()
        for product in catalog.products:
            self.index.add_document(product.product_id, product.title_tokens)

    # -- retrieval -------------------------------------------------------------
    def search(self, query: str, rewrites: list[str] | None = None) -> SearchOutcome:
        """Retrieve candidates for ``query`` plus optional rewrites."""
        rewrites = rewrites or []
        queries = [tokenize(query)] + [tokenize(r) for r in rewrites]
        queries = [q for q in queries if q]
        if not queries:
            raise ValueError("search received an empty query")

        if self.config.merge_trees:
            tree = merge_queries(queries)
            result = tree.evaluate(self.index)
            nodes = tree_size(tree)
            num_trees = 1
            docs = result.doc_ids
            cost = result.postings_accessed
        else:
            docs = set()
            cost = 0
            nodes = 0
            for q in queries:
                tree = build_tree(q)
                result = tree.evaluate(self.index)
                docs |= result.doc_ids
                cost += result.postings_accessed
                nodes += tree_size(tree)
            num_trees = len(queries)

        ranked = self._rank(queries[0], docs)[: self.config.max_candidates]
        return SearchOutcome(
            query=query,
            rewrites=list(rewrites),
            doc_ids=ranked,
            postings_accessed=cost,
            tree_nodes=nodes,
            num_trees=num_trees,
        )

    # -- ranking -----------------------------------------------------------------
    def _rank(self, query_tokens: list[str], doc_ids: set[int]) -> list[int]:
        """Order candidates by query-term overlap with the title (tf-style),
        breaking ties by doc id for determinism."""
        query_set = set(query_tokens)

        def score(doc_id: int) -> tuple[int, int]:
            title = self.index.document(doc_id)
            overlap = sum(1 for t in title if t in query_set)
            return (-overlap, doc_id)

        return sorted(doc_ids, key=score)

    # -- cost comparison (Section III-H experiment) ---------------------------------
    def compare_costs(self, query: str, rewrites: list[str]) -> dict[str, float]:
        """Merged-tree vs per-query-trees costs for the same request."""
        merged_engine_cfg = SearchConfig(
            max_candidates=self.config.max_candidates, merge_trees=True
        )
        separate_engine_cfg = SearchConfig(
            max_candidates=self.config.max_candidates, merge_trees=False
        )
        saved_config = self.config
        try:
            self.config = merged_engine_cfg
            merged = self.search(query, rewrites)
            self.config = separate_engine_cfg
            separate = self.search(query, rewrites)
        finally:
            self.config = saved_config
        if set(merged.doc_ids) != set(separate.doc_ids):
            raise AssertionError(
                "merged and separate retrieval disagree — tree merge is unsound"
            )
        return {
            "merged_postings": merged.postings_accessed,
            "separate_postings": separate.postings_accessed,
            "merged_nodes": merged.tree_nodes,
            "separate_nodes": separate.tree_nodes,
            "postings_ratio": merged.postings_accessed / max(1, separate.postings_accessed),
            "nodes_ratio": merged.tree_nodes / max(1, separate.tree_nodes),
        }
