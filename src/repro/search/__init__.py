"""Sharded top-k retrieval substrate.

Reproduces the paper's candidate-retrieval stage — documents (item titles)
indexed by term, queries compiled into AND/OR syntax trees, and the
Section III-H optimization that merges the original query and all rewritten
queries into a *single* tree (Figure 5) — and scales it into a
production-shaped engine:

* sorted postings with **galloping intersection**
  (:mod:`repro.search.postings`), no intermediate set materialization;
* pluggable **top-k ranking** behind the :class:`Ranker` protocol —
  term-overlap baseline and BM25, both heap-bounded
  (:mod:`repro.search.ranking`);
* a **ShardedIndex** of single-writer shards with parallel fan-out search,
  global-statistics ranking, and incremental ``add_document`` /
  ``remove_document`` (:mod:`repro.search.sharded`);
* a **semantic tier**: an IVF-clustered ANN index over dual-encoder
  embeddings (:mod:`repro.search.vector`) and a
  :class:`HybridSearchEngine` fusing lexical and semantic top-k lists
  per request — ``lexical | semantic | hybrid`` retrieval modes
  (:mod:`repro.search.hybrid`).

``docs/RETRIEVAL.md`` documents the lexical layout, the postings cost
model, and how Section III-H maps onto all of this;
``docs/SEMANTIC.md`` documents the vector tier and the fusion math.
"""

from repro.search.inverted_index import IndexStats, InvertedIndex, RetrievalResult
from repro.search.postings import intersect_sorted, union_sorted
from repro.search.ranking import (
    BM25Ranker,
    Ranker,
    TermOverlapRanker,
    make_ranker,
)
from repro.search.syntax_tree import (
    SyntaxNode,
    TermNode,
    AndNode,
    OrNode,
    build_tree,
    merge_queries,
    tree_size,
)
from repro.search.engine import SearchEngine, SearchConfig, SearchOutcome
from repro.search.sharded import (
    ShardedIndex,
    ShardedOutcome,
    ShardedSearchEngine,
    merge_topk,
)
from repro.search.vector import (
    ShardedVectorIndex,
    VectorIndex,
    spherical_kmeans,
)
from repro.search.hybrid import (
    RETRIEVAL_MODES,
    HybridConfig,
    HybridSearchEngine,
    reciprocal_rank_fusion,
    weighted_score_fusion,
)

__all__ = [
    "InvertedIndex",
    "IndexStats",
    "RetrievalResult",
    "intersect_sorted",
    "union_sorted",
    "Ranker",
    "TermOverlapRanker",
    "BM25Ranker",
    "make_ranker",
    "SyntaxNode",
    "TermNode",
    "AndNode",
    "OrNode",
    "build_tree",
    "merge_queries",
    "tree_size",
    "SearchEngine",
    "SearchConfig",
    "SearchOutcome",
    "ShardedIndex",
    "ShardedOutcome",
    "ShardedSearchEngine",
    "merge_topk",
    "VectorIndex",
    "ShardedVectorIndex",
    "spherical_kmeans",
    "RETRIEVAL_MODES",
    "HybridConfig",
    "HybridSearchEngine",
    "reciprocal_rank_fusion",
    "weighted_score_fusion",
]
