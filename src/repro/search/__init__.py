"""Inverted-index retrieval substrate.

Reproduces the paper's candidate-retrieval stage: documents (item titles)
indexed by term, queries compiled into AND/OR syntax trees, and the
Section III-H optimization that merges the original query and all rewritten
queries into a *single* tree so multi-query retrieval costs barely more
than one-query retrieval (Figure 5).
"""

from repro.search.inverted_index import InvertedIndex, RetrievalResult
from repro.search.syntax_tree import (
    SyntaxNode,
    TermNode,
    AndNode,
    OrNode,
    build_tree,
    merge_queries,
    tree_size,
)
from repro.search.engine import SearchEngine, SearchConfig, SearchOutcome

__all__ = [
    "InvertedIndex",
    "RetrievalResult",
    "SyntaxNode",
    "TermNode",
    "AndNode",
    "OrNode",
    "build_tree",
    "merge_queries",
    "tree_size",
    "SearchEngine",
    "SearchConfig",
    "SearchOutcome",
]
