"""Clustered ANN vector index: IVF over dual-encoder embeddings.

The lexical tier (:mod:`repro.search.inverted_index`) retrieves by exact
term match; when a query's vocabulary misses the catalog's (the gap the
paper's rewriting exists to close), lexical recall is zero no matter how
many rewrites are tried.  This module is the semantic tier underneath
:class:`~repro.search.hybrid.HybridSearchEngine`: documents live as
unit-norm embedding vectors, and retrieval is maximum-inner-product
(= cosine) search accelerated with an inverted-file (IVF) layout —
k-means centroids partition the vectors, a query probes only the
``nprobe`` nearest cells, and candidates in probed cells are re-ranked
with exact dot products.

Layout and semantics:

* **Training** — :meth:`VectorIndex.fit` runs spherical k-means
  (:func:`spherical_kmeans`) over the current vectors and rebuilds the
  per-cluster storage.  Centroids are frozen between fits, the standard
  IVF discipline: incremental adds assign to the nearest existing
  centroid, and a periodic re-fit re-balances the cells.
* **Per-cluster contiguous matrices** — each cell keeps its member
  vectors in one ``(capacity, dim)`` matrix (amortized doubling), so
  probing a cell is a single C-speed matrix–vector product, not a
  Python loop over documents.
* **Incremental maintenance** — ``add_document`` / ``remove_document``
  mirror :class:`~repro.search.inverted_index.InvertedIndex`; removal is
  an O(1) swap-with-last inside the owning cell, so churn never rebuilds
  anything.
* **Exact re-rank** — scores returned are exact dot products; the only
  approximation is which cells get probed.  With ``nprobe`` = number of
  cells the ranking equals :meth:`VectorIndex.brute_force` (scores can
  differ from the one-dense-matrix baseline in the last ulp, since BLAS
  sums per-cell products in a different order).

Complexity: ``fit`` is O(iters · n · clusters · dim); a probe search is
O(clusters · dim) to pick cells plus O(probed_vectors · dim) to score,
against O(n · dim) for brute force.  Ties break by ascending doc id
(:func:`~repro.search.ranking.top_k_by_score`), so results are
deterministic.

Thread safety: a :class:`VectorIndex` is single-writer — interleave
writes and searches only under external locking.
:class:`ShardedVectorIndex` provides exactly that through a pluggable
:class:`~repro.cluster.ShardBackend` (the same discipline as
:class:`~repro.search.sharded.ShardedIndex`): single-writer shards
behind per-shard mutexes in-process, or one worker process per shard
over pipes, with identical probe results either way.
"""

from __future__ import annotations

import numpy as np

from repro.cluster import InprocBackend, ShardBackend
from repro.search.ranking import top_k_by_score
from repro.search.sharded import merge_topk, resolve_backend


def spherical_kmeans(
    vectors: np.ndarray,
    num_clusters: int,
    rng: np.random.Generator,
    iterations: int = 10,
) -> np.ndarray:
    """Spherical k-means: unit-norm centroids maximizing cosine to members.

    Assignment is by maximum dot product (= cosine for unit inputs); the
    update renormalizes each cluster mean back onto the sphere, and an
    emptied cluster is reseeded to a random vector.  Deterministic for a
    given ``rng`` state.  O(iterations · n · num_clusters · dim), fully
    vectorized.  Returns a ``(num_clusters, dim)`` centroid matrix (fewer
    rows when there are fewer vectors than requested clusters).
    """
    if num_clusters < 1:
        raise ValueError("num_clusters must be >= 1")
    n = vectors.shape[0]
    if n == 0:
        raise ValueError("cannot cluster zero vectors")
    num_clusters = min(num_clusters, n)
    seeds = rng.choice(n, size=num_clusters, replace=False)
    centroids = vectors[seeds].copy()
    for _ in range(iterations):
        assignment = np.argmax(vectors @ centroids.T, axis=1)
        for c in range(num_clusters):
            members = vectors[assignment == c]
            if members.shape[0] == 0:
                centroids[c] = vectors[int(rng.integers(n))]
                continue
            mean = members.mean(axis=0)
            norm = float(np.linalg.norm(mean))
            centroids[c] = mean / norm if norm > 0.0 else mean
    return centroids


class _Cell:
    """One IVF cell: member ids + a contiguous, growable vector matrix.

    The id vector consumed by searches is cached as an ndarray and
    invalidated by writes, the same discipline as
    :meth:`InvertedIndex.postings_array` — converting a Python id list
    per probe would dominate small-probe searches.
    """

    __slots__ = ("ids", "pos", "matrix", "size", "_ids_cache")

    def __init__(self, dim: int, capacity: int = 8):
        self.ids: list[int] = []
        self.pos: dict[int, int] = {}
        self.matrix = np.zeros((capacity, dim), dtype=np.float64)
        self.size = 0
        self._ids_cache: np.ndarray | None = None

    def add(self, doc_id: int, vector: np.ndarray) -> None:
        if self.size == self.matrix.shape[0]:
            grown = np.zeros(
                (self.matrix.shape[0] * 2, self.matrix.shape[1]), dtype=np.float64
            )
            grown[: self.size] = self.matrix[: self.size]
            self.matrix = grown
        self.pos[doc_id] = self.size
        self.ids.append(doc_id)
        self.matrix[self.size] = vector
        self.size += 1
        self._ids_cache = None

    def remove(self, doc_id: int) -> None:
        at = self.pos.pop(doc_id)
        last = self.size - 1
        if at != last:
            moved = self.ids[last]
            self.ids[at] = moved
            self.matrix[at] = self.matrix[last]
            self.pos[moved] = at
        self.ids.pop()
        self.size = last
        self._ids_cache = None

    def view(self) -> tuple[np.ndarray, np.ndarray]:
        """(ids, vectors) snapshot views over the live prefix."""
        if self._ids_cache is None:
            self._ids_cache = np.asarray(self.ids, dtype=np.int64)
        return self._ids_cache, self.matrix[: self.size]


class VectorIndex:
    """IVF index over unit-norm document vectors, incrementally mutable.

    Mirrors :class:`~repro.search.inverted_index.InvertedIndex`'s
    maintenance surface (``add_document`` / ``remove_document`` /
    ``document`` / ``__len__`` / ``__contains__``) so the sharded and
    hybrid layers can drive both tiers through one idiom.

    Before the first :meth:`fit` the index has a single cell and every
    search degenerates to exact brute force; after ``fit``, adds assign
    to the nearest frozen centroid.  Single-writer (see module docstring).
    """

    def __init__(self, dim: int, *, num_clusters: int = 64, nprobe: int = 8, seed: int = 0):
        if dim < 1:
            raise ValueError("dim must be >= 1")
        if num_clusters < 1 or nprobe < 1:
            raise ValueError("num_clusters and nprobe must be >= 1")
        self.dim = dim
        self.num_clusters = num_clusters
        self.nprobe = nprobe
        self.seed = seed
        self.centroids: np.ndarray | None = None
        self._cells: list[_Cell] = [_Cell(dim)]
        self._cell_of: dict[int, int] = {}
        self._vectors: dict[int, np.ndarray] = {}
        self._dense_cache: tuple[np.ndarray, np.ndarray] | None = None

    # -- introspection ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self._cell_of)

    def __contains__(self, doc_id: int) -> bool:
        return doc_id in self._cell_of

    @property
    def trained(self) -> bool:
        """Whether k-means centroids exist (i.e. probing is meaningful)."""
        return self.centroids is not None

    def document(self, doc_id: int) -> np.ndarray:
        """The stored vector for ``doc_id`` (read-only copy)."""
        return self._vectors[doc_id].copy()

    def cell_sizes(self) -> list[int]:
        """Live member count per IVF cell (diagnostics / balance checks)."""
        return [cell.size for cell in self._cells]

    # -- incremental maintenance ----------------------------------------------
    def add_document(self, doc_id: int, vector: np.ndarray) -> None:
        """Insert one vector; assigns to the nearest frozen centroid.

        O(num_clusters · dim) for the assignment, amortized O(dim) for
        the append.  Raises on duplicate ids and on dimension mismatch,
        mirroring :class:`InvertedIndex.add_document`'s duplicate check.
        """
        if doc_id in self._cell_of:
            raise ValueError(f"document {doc_id} already indexed")
        # Own copy: the index must not alias a caller buffer that may be
        # reused — document() and re-fit() read these vectors later.
        vector = np.array(vector, dtype=np.float64).reshape(-1)
        if vector.shape[0] != self.dim:
            raise ValueError(f"expected dim {self.dim}, got {vector.shape[0]}")
        cell_id = 0
        if self.centroids is not None:
            cell_id = int(np.argmax(self.centroids @ vector))
        self._cells[cell_id].add(doc_id, vector)
        self._cell_of[doc_id] = cell_id
        self._vectors[doc_id] = vector
        self._dense_cache = None

    def remove_document(self, doc_id: int) -> None:
        """Delete one vector: O(1) swap-with-last in its owning cell."""
        cell_id = self._cell_of.pop(doc_id, None)
        if cell_id is None:
            raise KeyError(f"document {doc_id} not indexed")
        self._cells[cell_id].remove(doc_id)
        del self._vectors[doc_id]
        self._dense_cache = None

    def fit(
        self,
        doc_ids=None,
        vectors: np.ndarray | None = None,
        *,
        iterations: int = 10,
    ) -> None:
        """(Re)train centroids and re-bucket every vector.

        ``doc_ids``/``vectors`` bulk-load additional documents first (the
        catalog-build path: one call embeds-and-fits instead of n adds
        into an untrained single cell).  Existing documents are kept and
        re-assigned under the new centroids.
        """
        if (doc_ids is None) != (vectors is None):
            raise ValueError("pass doc_ids and vectors together")
        if doc_ids is not None:
            # np.array (not asarray): the bulk-load rows are stored and
            # must not alias the caller's matrix.
            vectors = np.array(vectors, dtype=np.float64)
            doc_ids = [int(d) for d in doc_ids]
            if vectors.ndim != 2 or vectors.shape != (len(doc_ids), self.dim):
                raise ValueError(
                    f"vectors must be (len(doc_ids), {self.dim}), got {vectors.shape}"
                )
            counts: dict[int, int] = {}
            for d in doc_ids:
                counts[d] = counts.get(d, 0) + 1
            offenders = sorted(
                {d for d in doc_ids if d in self._cell_of}
                | {d for d, c in counts.items() if c > 1}
            )
            if offenders:
                raise ValueError(f"documents already indexed or repeated: {offenders}")
            for doc_id, vector in zip(doc_ids, vectors):
                self._cell_of[doc_id] = 0  # placeholder; re-bucketed below
                self._vectors[doc_id] = vector
        if not self._vectors:
            raise ValueError("fit needs at least one vector")

        all_ids = sorted(self._vectors)
        matrix = np.stack([self._vectors[d] for d in all_ids])
        rng = np.random.default_rng(self.seed)
        self.centroids = spherical_kmeans(
            matrix, self.num_clusters, rng, iterations=iterations
        )
        assignment = np.argmax(matrix @ self.centroids.T, axis=1)
        self._cells = [_Cell(self.dim) for _ in range(self.centroids.shape[0])]
        for doc_id, cell_id, vector in zip(all_ids, assignment, matrix):
            self._cells[int(cell_id)].add(doc_id, vector)
            self._cell_of[doc_id] = int(cell_id)
        self._dense_cache = None

    # -- persistence -----------------------------------------------------------
    def save(self, path) -> None:
        """Write this index as one full IVF-cell segment file.

        The single-file form of :mod:`repro.store`: centroids, per-cell
        member ids and vectors in live cell order, and the geometry
        (dim, clusters, nprobe, seed) — so :meth:`load` reproduces the
        exact cell layout and therefore the exact probe results.
        """
        from pathlib import Path

        from repro.store import segments as _segments

        Path(path).write_bytes(_segments.encode_vectors_segment(self))

    @classmethod
    def load(cls, path) -> "VectorIndex":
        """Restore an index saved by :meth:`save`, fully verified.

        Raises a typed :class:`~repro.store.StoreError` subclass on any
        corruption; never returns a half-built index.
        """
        from repro.store import read_segment_file
        from repro.store import segments as _segments

        return _segments.decode_vectors_segment(read_segment_file(path))

    # -- search ----------------------------------------------------------------
    def search(
        self, query: np.ndarray, k: int, *, nprobe: int | None = None
    ) -> list[tuple[float, int]]:
        """ANN top-``k`` as ``(score, doc_id)``, best dot product first.

        Probes the ``nprobe`` cells whose centroids score highest against
        the query, concatenates their member matrices, and re-ranks the
        candidates with exact dot products; ties break by ascending doc
        id.  ``nprobe`` ≥ the cell count makes the search exact.
        """
        nprobe = self.nprobe if nprobe is None else nprobe
        if nprobe < 1:
            raise ValueError("nprobe must be >= 1")
        if k <= 0 or not self._cell_of:
            return []
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        if self.centroids is None or nprobe >= len(self._cells):
            cells = [c for c in self._cells if c.size]
        else:
            sims = self.centroids @ query
            order = np.argpartition(-sims, nprobe - 1)[:nprobe]
            cells = [self._cells[int(c)] for c in order if self._cells[int(c)].size]
        if not cells:
            return []
        views = [cell.view() for cell in cells]
        if len(views) == 1:
            ids, vectors = views[0]
            return top_k_by_score(ids, vectors @ query, k)
        # Score per cell and concatenate only the score vectors: each
        # cell matrix is already contiguous, so stacking them first would
        # copy dim× more bytes than this does.
        ids = np.concatenate([v[0] for v in views])
        scores = np.concatenate([v[1] @ query for v in views])
        return top_k_by_score(ids, scores, k)

    def brute_force(self, query: np.ndarray, k: int) -> list[tuple[float, int]]:
        """Exact top-``k`` by one dense matrix–vector product.

        The ground truth the ANN search is measured against, and the
        honest baseline for the ≥5× speed claim: the document matrix is
        kept as one contiguous snapshot (cached, invalidated by writes),
        so this costs exactly one O(n · dim) scoring pass — no IVF
        overheads to flatter the comparison.
        """
        if k <= 0 or not self._cell_of:
            return []
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        if self._dense_cache is None:
            # concatenate always allocates, so the cache never aliases a
            # live cell matrix even with a single non-empty cell.
            views = [cell.view() for cell in self._cells if cell.size]
            self._dense_cache = (
                np.concatenate([v[0] for v in views]),
                np.concatenate([v[1] for v in views]),
            )
        ids, matrix = self._dense_cache
        return top_k_by_score(ids, matrix @ query, k)


class ShardedVectorIndex:
    """Vectors partitioned over N single-writer :class:`VectorIndex` shards.

    The same fan-out/merge discipline as the lexical
    :class:`~repro.search.sharded.ShardedIndex`: routing is
    ``doc_id % num_shards`` (stable, no routing table), shard state
    lives behind a pluggable :class:`~repro.cluster.ShardBackend`
    (threads in-process by default, worker processes or a replica
    router by injection), and the per-shard ``(score, doc_id)`` lists
    merge through the shared :func:`~repro.search.sharded.merge_topk`.
    Because scores are exact dot products — no per-shard statistics —
    the merged top-k at full probe width equals an unsharded exact
    search, on every backend.
    """

    def __init__(
        self,
        dim: int,
        *,
        num_shards: int = 4,
        num_clusters: int = 16,
        nprobe: int = 4,
        parallel: bool = True,
        seed: int = 0,
        backend: ShardBackend | None = None,
    ):
        """Fresh thread-backed shards by default (shard ``i`` seeds its
        k-means at ``seed + i``); ``backend`` injects any pre-built
        deployment and must match ``dim``."""
        if backend is None:
            if num_shards < 1:
                raise ValueError("num_shards must be >= 1")
            indexes = [
                VectorIndex(
                    dim, num_clusters=num_clusters, nprobe=nprobe, seed=seed + i
                )
                for i in range(num_shards)
            ]
            backend = InprocBackend("vector", indexes=indexes, parallel=parallel)
        elif backend.tier != "vector":
            raise ValueError(
                f"backend serves tier {backend.tier!r}, expected 'vector'"
            )
        self.dim = dim
        self._backend = backend
        self.num_shards = backend.num_shards
        self.parallel = getattr(backend, "parallel", True)

    @property
    def backend(self) -> ShardBackend:
        """The shard backend this index routes through."""
        return self._backend

    # -- partitioning ---------------------------------------------------------
    def shard_of(self, doc_id: int) -> int:
        """The owning shard: ``doc_id % num_shards``."""
        return doc_id % self.num_shards

    def shard_sizes(self) -> list[int]:
        """Live document count per shard."""
        return self._backend.fanout("shard_size")

    def __len__(self) -> int:
        return sum(self.shard_sizes())

    def __contains__(self, doc_id: int) -> bool:
        return self._backend.call(self.shard_of(doc_id), "contains", doc_id)

    # -- incremental maintenance ----------------------------------------------
    def fit(self, doc_ids, vectors: np.ndarray) -> None:
        """Bulk-load and train every shard on its own partition."""
        vectors = np.asarray(vectors, dtype=np.float64)
        doc_ids = [int(d) for d in doc_ids]
        if vectors.ndim != 2 or vectors.shape[0] != len(doc_ids):
            raise ValueError("vectors must be (len(doc_ids), dim)")
        by_shard: dict[int, list[int]] = {}
        for at, doc_id in enumerate(doc_ids):
            by_shard.setdefault(self.shard_of(doc_id), []).append(at)
        for shard_id, rows in by_shard.items():
            self._backend.call(
                shard_id,
                "fit",
                [doc_ids[r] for r in rows],
                vectors[np.asarray(rows)],
            )

    def add_document(self, doc_id: int, vector: np.ndarray) -> None:
        """Insert into the owning shard (single-writer discipline)."""
        self._backend.call(self.shard_of(doc_id), "add", doc_id, vector)

    def remove_document(self, doc_id: int) -> None:
        """Delete from the owning shard (single-writer discipline)."""
        self._backend.call(self.shard_of(doc_id), "remove", doc_id)

    # -- persistence -----------------------------------------------------------
    def save(self, root):
        """Persist every shard into a ``"vector"`` segment store at ``root``.

        Quiesces the backend for the snapshot (single-writer
        discipline: churn excluded for the duration).  Incremental:
        after the first save, only changed shards get a delta segment —
        unless a shard was re-fit, which forces a full rewrite of that
        shard.  Returns the new :class:`~repro.store.Manifest`.
        """
        from repro.store import SegmentStore

        store = SegmentStore(root, "vector")
        with self._backend.quiesce() as indexes:
            return store.save(indexes, meta={"dim": self.dim})

    @classmethod
    def load(
        cls,
        root,
        *,
        parallel: bool = True,
        backend: str | ShardBackend = "inproc",
        timeout: float | None = None,
    ) -> "ShardedVectorIndex":
        """Restore a sharded vector index saved by :meth:`save`.

        Shard count and per-shard geometry come from the store;
        ``backend`` picks the deployment (``"inproc"`` decodes here,
        ``"process"`` cold-starts one worker per shard — see
        :meth:`~repro.search.sharded.ShardedIndex.load`).  Every segment
        is checksum-verified; routing (``doc_id % num_shards``) is
        re-validated against the decoded shards.
        """
        from repro.store import SegmentCorruptError

        resolved = resolve_backend(
            "vector", backend, root, parallel=parallel, timeout=timeout
        )
        metas = resolved.fanout("meta")
        dims = {meta["dim"] for meta in metas}
        if len(dims) != 1:
            resolved.close()
            raise SegmentCorruptError(
                f"shards disagree on vector dim: {sorted(dims)}"
            )
        return cls(metas[0]["dim"], backend=resolved)

    # -- fan-out search --------------------------------------------------------
    def search(
        self, query: np.ndarray, k: int, *, nprobe: int | None = None
    ) -> list[tuple[float, int]]:
        """Probe every shard (in parallel) and merge the per-shard top-k."""
        query = np.asarray(query, dtype=np.float64)
        per_shard = self._backend.fanout("search", query, k, nprobe)
        return merge_topk(per_shard, k)

    # -- deployment reporting --------------------------------------------------
    def cluster_stats(self) -> dict:
        """Backend choice + failover counters (see ``ServingStats``)."""
        return dict(self._backend.describe())

    def close(self) -> None:
        """Release the backend (threads or worker processes; idempotent)."""
        self._backend.close()

    def __enter__(self) -> "ShardedVectorIndex":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
