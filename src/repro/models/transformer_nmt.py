"""Transformer encoder-decoder translation model (the paper's main model)."""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor, no_grad
from repro.models.base import DecodeState, Seq2SeqModel
from repro.models.config import ModelConfig
from repro.nn import (
    Embedding,
    Linear,
    PositionalEncoding,
    TransformerDecoder,
    TransformerEncoder,
)
from repro.nn.attention import causal_mask, padding_mask


class TransformerNMT(Seq2SeqModel):
    """Standard transformer NMT (Vaswani et al. 2017) on our substrate.

    The paper instantiates this twice: a 4-layer model for query-to-title
    (which must "memorize" the much larger title space) and a 1-layer model
    for title-to-query (closer to summarization).  Layer counts come from
    the :class:`~repro.models.config.ModelConfig`.
    """

    def __init__(self, config: ModelConfig, pad_id: int = 0, sos_id: int = 1, eos_id: int = 2):
        super().__init__(config.vocab_size, pad_id, sos_id, eos_id)
        self.config = config
        rng = np.random.default_rng(config.seed)
        self.embedding = Embedding(
            config.vocab_size, config.d_model, padding_idx=pad_id, rng=rng
        )
        self.positional = PositionalEncoding(config.d_model, max_len=config.max_len)
        self.encoder = TransformerEncoder(
            config.encoder_layers,
            config.d_model,
            config.num_heads,
            config.d_ff,
            dropout=config.dropout,
            rng=rng,
        )
        self.decoder = TransformerDecoder(
            config.decoder_layers,
            config.d_model,
            config.num_heads,
            config.d_ff,
            dropout=config.dropout,
            rng=rng,
        )
        self.output_proj = Linear(config.d_model, config.vocab_size, rng=rng)
        self._embed_scale = config.d_model**0.5

    # -- shared pieces ---------------------------------------------------------
    def _embed(self, token_ids: np.ndarray, offset: int = 0) -> Tensor:
        return self.positional(self.embedding(token_ids) * self._embed_scale, offset=offset)

    def encode(self, src: np.ndarray) -> tuple[Tensor, np.ndarray]:
        """Returns (memory, src_key_mask)."""
        src = np.asarray(src)
        src_mask = padding_mask(src, self.pad_id)
        memory = self.encoder(self._embed(src), mask=src_mask)
        return memory, src_mask

    # -- training view --------------------------------------------------------
    def forward(self, src: np.ndarray, tgt_in: np.ndarray) -> Tensor:
        src = np.asarray(src)
        tgt_in = np.asarray(tgt_in)
        memory, src_mask = self.encode(src)
        tgt_len = tgt_in.shape[1]
        self_mask = causal_mask(tgt_len) | padding_mask(tgt_in, self.pad_id)
        decoded = self.decoder(
            self._embed(tgt_in), memory, self_mask=self_mask, memory_mask=src_mask
        )
        return self.output_proj(decoded)

    # -- decoding view ------------------------------------------------------------
    def start(self, src: np.ndarray, use_cache: bool = True) -> DecodeState:
        """Encode ``src`` and build the initial decode state.

        With ``use_cache=True`` (the default) the state carries per-layer
        K/V caches: the cross-attention projections of the encoder memory
        are computed here, once, and each :meth:`step` appends one
        position to the self-attention caches — O(prefix) per step.
        ``use_cache=False`` keeps the original full-prefix re-decode
        (O(prefix²) per step); it exists as the measured baseline and as
        the equivalence oracle for the cached path.
        """
        src = np.asarray(src)
        batch = src.shape[0]
        with no_grad():
            memory, src_mask = self.encode(src)
            if not use_cache:
                return DecodeState(
                    batch_size=batch,
                    payload={
                        "memory": memory.data,
                        "src_mask": src_mask,
                        "prefix": np.zeros((batch, 0), dtype=np.int64),
                    },
                )
            cross_kv = self.decoder.project_memory(memory)
        heads = self.config.num_heads
        empty = np.zeros((batch, heads, 0, self.config.d_model // heads))
        return DecodeState(
            batch_size=batch,
            payload={
                "src_mask": src_mask,
                "cross_kv": cross_kv,
                "self_kv": [(empty, empty) for _ in self.decoder.layers],
                "prefix": np.zeros((batch, 0), dtype=np.int64),
            },
        )

    def step(self, state: DecodeState, last_tokens: np.ndarray) -> tuple[np.ndarray, DecodeState]:
        """Advance one position; cached states pay O(prefix), not O(prefix²).

        The cached path embeds and attends over only the newest token,
        reusing per-layer self-attention K/V and the precomputed
        cross-attention projections; its logits match the full-prefix
        re-decode to float-reassociation tolerance (gated at 1e-6 by
        ``tests/test_decode_equivalence.py``).  States built with
        ``start(..., use_cache=False)`` take the original full re-decode
        branch — the paper's Section III-G cost profile.
        """
        if "self_kv" not in state.payload:
            return self._step_full_prefix(state, last_tokens)
        payload = state.payload
        self._count_step(state.batch_size)
        last = np.asarray(last_tokens).reshape(-1, 1)
        prefix = np.concatenate([payload["prefix"], last], axis=1)
        # Keys are maskable prefix positions: the causal structure is
        # implicit (the newest query sees exactly the cached past plus
        # itself), so only pad columns need blocking — same semantics as
        # the full path's causal_mask | padding_mask at its last row.
        self_key_mask = (prefix == self.pad_id)[:, None, None, :]
        with no_grad():
            x = self._embed(last, offset=payload["prefix"].shape[1])
            decoded, self_kv = self.decoder.step(
                x,
                payload["cross_kv"],
                payload["self_kv"],
                self_key_mask=self_key_mask,
                memory_mask=payload["src_mask"],
            )
            logits = self.output_proj(decoded[:, 0, :])
        new_state = DecodeState(
            batch_size=state.batch_size,
            payload={
                "src_mask": payload["src_mask"],
                "cross_kv": payload["cross_kv"],
                "self_kv": self_kv,
                "prefix": prefix,
            },
        )
        return logits.data, new_state

    def _step_full_prefix(
        self, state: DecodeState, last_tokens: np.ndarray
    ) -> tuple[np.ndarray, DecodeState]:
        """The seed decode path: re-decode the entire prefix every step.

        Per-step cost grows with the prefix length — the latency
        bottleneck the paper's Section III-G attributes to transformer
        decoders, kept as the benchmark baseline and equivalence oracle.
        """
        self._count_step(state.batch_size)
        prefix = np.concatenate(
            [state.payload["prefix"], np.asarray(last_tokens).reshape(-1, 1)], axis=1
        )
        memory = Tensor(state.payload["memory"])
        src_mask = state.payload["src_mask"]
        tgt_len = prefix.shape[1]
        self_mask = causal_mask(tgt_len) | padding_mask(prefix, self.pad_id)
        with no_grad():
            decoded = self.decoder(
                self._embed(prefix), memory, self_mask=self_mask, memory_mask=src_mask
            )
            logits = self.output_proj(decoded[:, -1, :])
        new_state = DecodeState(
            batch_size=state.batch_size,
            payload={"memory": memory.data, "src_mask": src_mask, "prefix": prefix},
        )
        return logits.data, new_state

    def reorder_state(self, state: DecodeState, index: np.ndarray) -> DecodeState:
        """Select/duplicate batch rows, K/V caches included.

        Every per-row array — encoder masks, the prefix, and each layer's
        cached self/cross K/V — is permuted by ``index``, so beam
        shuffles and active-row compaction keep cached decoding exact
        (pinned by the cache-permutation invariants in
        ``tests/test_decode_equivalence.py``).
        """
        payload = state.payload
        reordered = {
            key: payload[key][index]
            for key in ("memory", "src_mask", "prefix")
            if key in payload
        }
        for cache_key in ("cross_kv", "self_kv"):
            if cache_key in payload:
                reordered[cache_key] = [
                    (k[index], v[index]) for k, v in payload[cache_key]
                ]
        return DecodeState(batch_size=len(index), payload=reordered)

    # -- introspection -----------------------------------------------------------
    def cross_attention_maps(self) -> list[np.ndarray]:
        """Per-layer cross-attention weights from the most recent forward
        pass, each of shape (batch, heads, tgt_len, src_len) — the raw
        material of the paper's Figure 6 heat maps."""
        return self.decoder.cross_attention_weights
