"""Transformer encoder-decoder translation model (the paper's main model)."""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor, no_grad
from repro.models.base import DecodeState, Seq2SeqModel
from repro.models.config import ModelConfig
from repro.nn import (
    Embedding,
    Linear,
    PositionalEncoding,
    TransformerDecoder,
    TransformerEncoder,
)
from repro.nn.attention import causal_mask, padding_mask


class TransformerNMT(Seq2SeqModel):
    """Standard transformer NMT (Vaswani et al. 2017) on our substrate.

    The paper instantiates this twice: a 4-layer model for query-to-title
    (which must "memorize" the much larger title space) and a 1-layer model
    for title-to-query (closer to summarization).  Layer counts come from
    the :class:`~repro.models.config.ModelConfig`.
    """

    def __init__(self, config: ModelConfig, pad_id: int = 0, sos_id: int = 1, eos_id: int = 2):
        super().__init__(config.vocab_size, pad_id, sos_id, eos_id)
        self.config = config
        rng = np.random.default_rng(config.seed)
        self.embedding = Embedding(
            config.vocab_size, config.d_model, padding_idx=pad_id, rng=rng
        )
        self.positional = PositionalEncoding(config.d_model, max_len=config.max_len)
        self.encoder = TransformerEncoder(
            config.encoder_layers,
            config.d_model,
            config.num_heads,
            config.d_ff,
            dropout=config.dropout,
            rng=rng,
        )
        self.decoder = TransformerDecoder(
            config.decoder_layers,
            config.d_model,
            config.num_heads,
            config.d_ff,
            dropout=config.dropout,
            rng=rng,
        )
        self.output_proj = Linear(config.d_model, config.vocab_size, rng=rng)
        self._embed_scale = config.d_model**0.5

    # -- shared pieces ---------------------------------------------------------
    def _embed(self, token_ids: np.ndarray, offset: int = 0) -> Tensor:
        return self.positional(self.embedding(token_ids) * self._embed_scale, offset=offset)

    def encode(self, src: np.ndarray) -> tuple[Tensor, np.ndarray]:
        """Returns (memory, src_key_mask)."""
        src = np.asarray(src)
        src_mask = padding_mask(src, self.pad_id)
        memory = self.encoder(self._embed(src), mask=src_mask)
        return memory, src_mask

    # -- training view --------------------------------------------------------
    def forward(self, src: np.ndarray, tgt_in: np.ndarray) -> Tensor:
        src = np.asarray(src)
        tgt_in = np.asarray(tgt_in)
        memory, src_mask = self.encode(src)
        tgt_len = tgt_in.shape[1]
        self_mask = causal_mask(tgt_len) | padding_mask(tgt_in, self.pad_id)
        decoded = self.decoder(
            self._embed(tgt_in), memory, self_mask=self_mask, memory_mask=src_mask
        )
        return self.output_proj(decoded)

    # -- decoding view ------------------------------------------------------------
    def start(self, src: np.ndarray) -> DecodeState:
        src = np.asarray(src)
        with no_grad():
            memory, src_mask = self.encode(src)
        return DecodeState(
            batch_size=src.shape[0],
            payload={
                "memory": memory.data,
                "src_mask": src_mask,
                "prefix": np.zeros((src.shape[0], 0), dtype=np.int64),
            },
        )

    def step(self, state: DecodeState, last_tokens: np.ndarray) -> tuple[np.ndarray, DecodeState]:
        prefix = np.concatenate(
            [state.payload["prefix"], np.asarray(last_tokens).reshape(-1, 1)], axis=1
        )
        memory = Tensor(state.payload["memory"])
        src_mask = state.payload["src_mask"]
        tgt_len = prefix.shape[1]
        # The full prefix is re-decoded each step: per-step cost grows with
        # the prefix length, which is precisely the latency bottleneck the
        # paper's Section III-G attributes to transformer decoders.
        self_mask = causal_mask(tgt_len) | padding_mask(prefix, self.pad_id)
        with no_grad():
            decoded = self.decoder(
                self._embed(prefix), memory, self_mask=self_mask, memory_mask=src_mask
            )
            logits = self.output_proj(decoded[:, -1, :])
        new_state = DecodeState(
            batch_size=state.batch_size,
            payload={"memory": memory.data, "src_mask": src_mask, "prefix": prefix},
        )
        return logits.data, new_state

    def reorder_state(self, state: DecodeState, index: np.ndarray) -> DecodeState:
        payload = state.payload
        return DecodeState(
            batch_size=len(index),
            payload={
                "memory": payload["memory"][index],
                "src_mask": payload["src_mask"][index],
                "prefix": payload["prefix"][index],
            },
        )

    # -- introspection -----------------------------------------------------------
    def cross_attention_maps(self) -> list[np.ndarray]:
        """Per-layer cross-attention weights from the most recent forward
        pass, each of shape (batch, heads, tgt_len, src_len) — the raw
        material of the paper's Figure 6 heat maps."""
        return self.decoder.cross_attention_weights
