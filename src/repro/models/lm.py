"""Decoder-only language model for the paper's Section V exploration.

The paper also explored fine-tuning a GPT2-style language model on the
"special language" ``query <sep1> title <sep2> query2``: given a query, the
LM generates a synthetic title and then a rewritten query in one pass.
They report it did *not* beat the jointly trained translation pair — a
finding our ablation bench reproduces at simulator scale.

Since no pretrained GPT2 is available offline, the LM here is the same
causal-transformer architecture trained from scratch on the marketplace's
"special language" corpus; the comparison is therefore architecture-level
(single causal LM vs cyclic encoder-decoder pair) rather than
pretraining-level, which we note in EXPERIMENTS.md.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor, no_grad
from repro.models.config import ModelConfig
from repro.nn import Embedding, Linear, PositionalEncoding, TransformerEncoder
from repro.nn.attention import causal_mask, padding_mask
from repro.nn.loss import sequence_cross_entropy
from repro.nn.module import Module

SEP1 = "<sep1>"
SEP2 = "<sep2>"


class DecoderOnlyLM(Module):
    """Causal transformer language model (GPT-style).

    A stack of self-attention blocks under a causal mask — implemented by
    running the :class:`TransformerEncoder` with a causal+padding mask,
    which is exactly a GPT block stack.
    """

    def __init__(self, config: ModelConfig, pad_id: int = 0):
        super().__init__()
        self.config = config
        self.pad_id = pad_id
        rng = np.random.default_rng(config.seed)
        self.embedding = Embedding(config.vocab_size, config.d_model, padding_idx=pad_id, rng=rng)
        self.positional = PositionalEncoding(config.d_model, max_len=config.max_len)
        self.blocks = TransformerEncoder(
            config.decoder_layers, config.d_model, config.num_heads, config.d_ff,
            dropout=config.dropout, rng=rng,
        )
        self.output_proj = Linear(config.d_model, config.vocab_size, rng=rng)
        self._embed_scale = config.d_model**0.5

    def forward(self, token_ids: np.ndarray) -> Tensor:
        """Next-token logits for every position: (batch, seq, vocab)."""
        token_ids = np.asarray(token_ids)
        seq_len = token_ids.shape[1]
        mask = causal_mask(seq_len) | padding_mask(token_ids, self.pad_id)
        hidden = self.blocks(
            self.positional(self.embedding(token_ids) * self._embed_scale), mask=mask
        )
        return self.output_proj(hidden)

    def loss(self, token_ids: np.ndarray) -> tuple[Tensor, int]:
        """Causal LM loss: predict position t+1 from positions <= t."""
        token_ids = np.asarray(token_ids)
        logits = self.forward(token_ids[:, :-1])
        return sequence_cross_entropy(logits, token_ids[:, 1:], self.pad_id)

    def generate(
        self,
        prefix_ids: list[int],
        max_new_tokens: int,
        stop_ids: set[int],
        rng: np.random.Generator | None = None,
        top_n: int = 5,
        forbid_ids: set[int] | None = None,
    ) -> list[int]:
        """Top-n sample a continuation until a stop token or the budget.

        Returns only the newly generated ids (stop token excluded).  The
        prompt is encoded once to prime per-layer self-attention K/V
        caches; each subsequent step feeds only the newest token through
        the block stack (O(prefix) instead of the seed's O(prefix²)
        full re-encode).  A step whose legal pool is empty (every
        unblocked token at ``-inf``) stops generation gracefully instead
        of crashing on NaN sampling probabilities, and consumes no
        randomness.
        """
        from repro.decoding.topn import sample_top_n_pools

        rng = rng or np.random.default_rng()
        forbid_ids = forbid_ids or set()
        generated: list[int] = []
        context = list(prefix_ids)
        prompt = np.array([context])
        seq_len = prompt.shape[1]
        mask = causal_mask(seq_len) | padding_mask(prompt, self.pad_id)
        with no_grad():
            hidden, caches = self.blocks.forward_and_cache(
                self.positional(self.embedding(prompt) * self._embed_scale), mask=mask
            )
            logits = self.output_proj(hidden[:, -1, :]).data[0]
        for _ in range(max_new_tokens):
            if len(context) >= self.config.max_len:
                break
            logits = logits.copy()
            logits[self.pad_id] = -np.inf
            for banned in forbid_ids:
                logits[banned] = -np.inf
            choices, legal = sample_top_n_pools(rng, logits[None, :], top_n)
            if not legal[0]:
                break
            token = int(choices[0])
            if token in stop_ids:
                break
            generated.append(token)
            context.append(token)
            if len(context) >= self.config.max_len:
                break
            with no_grad():
                x = self.positional(
                    self.embedding(np.array([[token]])) * self._embed_scale,
                    offset=len(context) - 1,
                )
                key_mask = (np.array([context]) == self.pad_id)[:, None, None, :]
                hidden, caches = self.blocks.step(x, caches, key_mask=key_mask)
                logits = self.output_proj(hidden[:, 0, :]).data[0]
        return generated

    def generate_batch(
        self,
        prefixes: list[list[int]],
        max_new_tokens: int,
        stop_ids: set[int],
        rng: np.random.Generator | None = None,
        top_n: int = 5,
        forbid_ids: set[int] | None = None,
    ) -> list[list[int]]:
        """Top-n sample continuations for many prefixes at once.

        Each step runs one batched forward pass over the still-active
        rows (right-padded; the causal+padding mask keeps each row's
        next-token logits a function of its own prefix only), then samples
        per row.  Semantics per row match :meth:`generate`; returns one
        id list per prefix, in input order.
        """
        rng = rng or np.random.default_rng()
        forbid_ids = forbid_ids or set()
        contexts = [list(p) for p in prefixes]
        generated: list[list[int]] = [[] for _ in prefixes]
        active = [bool(p) for p in prefixes]
        for _ in range(max_new_tokens):
            rows = [
                i for i, ctx in enumerate(contexts)
                if active[i] and len(ctx) < self.config.max_len
            ]
            if not rows:
                break
            width = max(len(contexts[i]) for i in rows)
            batch = np.full((len(rows), width), self.pad_id, dtype=np.int64)
            for j, i in enumerate(rows):
                batch[j, : len(contexts[i])] = contexts[i]
            with no_grad():
                logits_all = self.forward(batch).data
            for j, i in enumerate(rows):
                logits = logits_all[j, len(contexts[i]) - 1].copy()
                logits[self.pad_id] = -np.inf
                for banned in forbid_ids:
                    logits[banned] = -np.inf
                pool = np.argsort(-logits)[:top_n]
                pool_logits = logits[pool]
                if not np.isfinite(pool_logits[0]):
                    # Empty legal pool: every unblocked token is -inf.
                    # Retire the row without consuming randomness instead
                    # of renormalizing to NaN and crashing in rng.choice.
                    active[i] = False
                    continue
                probs = np.exp(pool_logits - pool_logits.max())
                probs /= probs.sum()
                token = int(pool[rng.choice(len(pool), p=probs)])
                if token in stop_ids:
                    active[i] = False
                else:
                    generated[i].append(token)
                    contexts[i].append(token)
        return generated
