"""Model checkpointing.

The paper's deployment precomputes rewrites offline with trained models;
persisting and reloading weights is the substrate for that workflow.
Checkpoints are plain ``.npz`` archives of the state dict — no pickling of
code, so they are safe to share and stable across refactors that keep
parameter names.
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.nn.module import Module


def save_weights(model: Module, path: str | pathlib.Path) -> None:
    """Write the model's parameters to an ``.npz`` checkpoint."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **model.state_dict())


def load_weights(model: Module, path: str | pathlib.Path) -> None:
    """Load an ``.npz`` checkpoint into an already-constructed model.

    The model must have the same architecture (parameter names and shapes)
    as the one that produced the checkpoint; mismatches raise.
    """
    with np.load(pathlib.Path(path)) as archive:
        state = {name: archive[name] for name in archive.files}
    model.load_state_dict(state)
